#![warn(missing_docs)]
//! # pcsi-store — the replicated state substrate
//!
//! The paper's state layer (§3.2–3.3) promises a universal storage
//! interface with a two-item consistency menu and mutability-aware
//! implementation freedom. This crate is that implementation for the
//! simulated cloud:
//!
//! * [`engine::StorageEngine`] — a per-node object store with media tiers
//!   (DRAM / NVMe / disk) whose access times are charged to virtual time,
//! * [`replica::ReplicaNode`] — the storage service bound on each storage
//!   node, speaking a compact binary protocol ([`wire`]) over the fabric,
//! * [`placement::Placement`] — rendezvous-hashed replica sets spread
//!   across racks (fault domains),
//! * [`store::ReplicatedStore`] — the client facade: mutations are
//!   serialized by each object's primary and replicated synchronously to a
//!   majority (linearizable) or asynchronously (eventual); linearizable
//!   reads are **one fabric round trip** — the read fans to all replicas
//!   and the newest tag among the first majority of replies wins (sound
//!   because write- and read-majorities intersect), with payloads above
//!   [`store::StoreConfig::inline_read_max`] falling back to a tag quorum
//!   plus a directed read; quorum reads that observe divergent tags
//!   **read-repair** the stale replicas in the background; eventual reads
//!   hit the closest replica,
//! * [`cache::ObjectCache`] — node-local caching integrated into every
//!   [`store::StoreClient`] read, exploiting the Figure-1 mutability
//!   lattice: `IMMUTABLE` objects cache whole, `APPEND_ONLY` objects
//!   cache their stable prefix, mutable objects don't cache; hits are
//!   served at DRAM cost with zero fabric traffic
//!   ([`store::CacheStats`] aggregates the counters),
//! * [`gc::mark`] + [`gc::sweep`] — reachability garbage collection over the reference
//!   graph (unreachable objects are reclaimed, §3.2),
//! * [`version`] — write tags and version vectors for ordering and
//!   anti-entropy.
//!
//! Failure handling scope: replica crashes and partitions are tolerated on
//! the read path (any majority / any replica) and masked on the write path
//! by the client-side fault-recovery layer ([`retry`]): per-attempt
//! deadlines, bounded seeded-jitter retries, and failover of the
//! coordination to the next replica in placement order (safe because
//! coordinations are deduplicated by `req_id` and stale-tag applies are
//! rejected, so any write majority still enforces a single order). Writes
//! fail only when no majority is reachable for the whole retry budget.

pub mod cache;
pub mod engine;
pub mod gc;
pub mod placement;
pub mod replica;
pub mod retry;
pub mod store;
pub mod version;
pub mod wire;

pub use engine::{MediaTier, StorageEngine, StoredObject};
pub use placement::Placement;
pub use replica::ReplicaNode;
pub use retry::{RetryPolicy, RetryStats};
pub use store::{CacheStats, HistoryTap, ReplicatedStore, StoreClient, StoreConfig, TapEvent};
pub use version::{Tag, VersionVector};
