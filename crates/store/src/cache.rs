//! Mutability-aware node-local object caching.
//!
//! The Figure-1 lattice exists to make caching sound by construction
//! (§3.3): an `IMMUTABLE` object can be cached anywhere forever; once
//! written, the prefix of an `APPEND_ONLY` object is equally stable;
//! `MUTABLE`/`FIXED_SIZE` objects are never cached here because any copy
//! may be invalidated by a remote write. The cache needs no invalidation
//! protocol at all — that is the paper's point.
//!
//! Entries remember the [`Tag`] the bytes were served under, so cached
//! reads report the same version information a replica read would.

use fxhash::FxHashMap;

use bytes::Bytes;
use pcsi_core::{Mutability, ObjectId};
use pcsi_metrics::{Counter, Metrics};

use crate::version::Tag;

/// What the cache remembers about one object.
#[derive(Debug, Clone)]
enum Entry {
    /// The complete, immutable contents.
    Full {
        /// The bytes.
        data: Bytes,
        /// Tag the contents were served under.
        tag: Tag,
    },
    /// The stable prefix of an append-only object.
    Prefix {
        /// The stable bytes.
        data: Bytes,
        /// Tag the prefix was served under.
        tag: Tag,
    },
}

impl Entry {
    fn data(&self) -> &Bytes {
        match self {
            Entry::Full { data, .. } | Entry::Prefix { data, .. } => data,
        }
    }

    fn tag(&self) -> Tag {
        match self {
            Entry::Full { tag, .. } | Entry::Prefix { tag, .. } => *tag,
        }
    }
}

/// An LRU byte-budgeted cache for one node.
#[derive(Debug, Default)]
pub struct ObjectCache {
    capacity_bytes: usize,
    used_bytes: usize,
    entries: FxHashMap<ObjectId, (Entry, u64)>,
    clock: u64,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ObjectCache {
    /// A cache holding at most `capacity_bytes` of payload.
    pub fn new(capacity_bytes: usize) -> Self {
        ObjectCache {
            capacity_bytes,
            ..ObjectCache::default()
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries evicted to stay within budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Publishes this cache's counters as per-node series on `metrics`.
    /// The registry binds the very cells the accessors above read, so
    /// the snapshot and `cache_stats()` can never disagree.
    pub(crate) fn publish_metrics(&self, metrics: &Metrics, node: &str) {
        let labels = [("node", node)];
        metrics.bind_counter("store.cache.hits", &labels, &self.hits);
        metrics.bind_counter("store.cache.misses", &labels, &self.misses);
        metrics.bind_counter("store.cache.evictions", &labels, &self.evictions);
    }

    /// Serves `[offset, offset + len)` if the cached bytes cover it,
    /// together with the tag the bytes were cached under.
    ///
    /// For a `Full` entry any in-bounds range is servable (out-of-bounds
    /// reads clamp like the store does). For a `Prefix` entry only ranges
    /// that end inside the stable prefix are servable — a read past the
    /// prefix might observe newer appends, so it must go to a replica.
    pub fn get(&mut self, id: ObjectId, offset: u64, len: u64) -> Option<(Tag, Bytes)> {
        self.clock += 1;
        let clock = self.clock;
        let result = match self.entries.get_mut(&id) {
            Some((entry, stamp)) => {
                *stamp = clock;
                let data = entry.data();
                let end = offset.saturating_add(len);
                let served = match entry {
                    Entry::Full { .. } => {
                        let size = data.len() as u64;
                        let start = offset.min(size) as usize;
                        let stop = end.min(size) as usize;
                        Some(data.slice(start..stop))
                    }
                    Entry::Prefix { .. } => {
                        if end <= data.len() as u64 {
                            Some(data.slice(offset as usize..end as usize))
                        } else {
                            None
                        }
                    }
                };
                served.map(|b| (entry.tag(), b))
            }
            None => None,
        };
        match result {
            Some(hit) => {
                self.hits.incr();
                Some(hit)
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Offers fetched data (served under `tag`) to the cache.
    ///
    /// * `Immutable` + full contents → cached whole.
    /// * `AppendOnly` + a prefix of known-stable length → cached as a
    ///   prefix; a longer stable prefix replaces a shorter one.
    /// * Anything else → ignored.
    ///
    /// `data` must start at offset 0 (partial-range fills are not cached —
    /// keeping the index simple is worth more than partial hits here).
    pub fn admit(&mut self, id: ObjectId, mutability: Mutability, tag: Tag, data: Bytes) {
        let entry = match mutability {
            Mutability::Immutable => Entry::Full { data, tag },
            Mutability::AppendOnly => {
                // Keep the longer stable prefix.
                if let Some((Entry::Prefix { data: existing, .. }, _)) = self.entries.get(&id) {
                    if existing.len() >= data.len() {
                        return;
                    }
                }
                Entry::Prefix { data, tag }
            }
            Mutability::Mutable | Mutability::FixedSize => return,
        };
        let new_len = entry.data().len();
        if new_len > self.capacity_bytes {
            return; // Larger than the whole cache.
        }
        if let Some((old, _)) = self.entries.remove(&id) {
            self.used_bytes -= old.data().len();
        }
        self.used_bytes += new_len;
        self.clock += 1;
        self.entries.insert(id, (entry, self.clock));
        self.evict_to_fit();
    }

    /// Drops an object (used when a deletion is observed).
    pub fn invalidate(&mut self, id: ObjectId) {
        if let Some((old, _)) = self.entries.remove(&id) {
            self.used_bytes -= old.data().len();
        }
    }

    fn evict_to_fit(&mut self) {
        while self.used_bytes > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(id, _)| *id)
                .expect("over budget implies non-empty");
            self.invalidate(victim);
            self.evictions.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(6, n)
    }

    fn tag(seq: u64) -> Tag {
        Tag { seq, writer: 0 }
    }

    #[test]
    fn immutable_objects_cache_and_hit() {
        let mut c = ObjectCache::new(1024);
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"payload"),
        );
        let (t, data) = c.get(oid(1), 0, 7).unwrap();
        assert_eq!(&data[..], b"payload");
        assert_eq!(t, tag(1));
        assert_eq!(&c.get(oid(1), 3, 10).unwrap().1[..], b"load"); // Clamped.
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn mutable_objects_never_cache() {
        let mut c = ObjectCache::new(1024);
        c.admit(
            oid(1),
            Mutability::Mutable,
            tag(1),
            Bytes::from_static(b"x"),
        );
        c.admit(
            oid(2),
            Mutability::FixedSize,
            tag(1),
            Bytes::from_static(b"y"),
        );
        assert!(c.get(oid(1), 0, 1).is_none());
        assert!(c.get(oid(2), 0, 1).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn append_only_prefix_semantics() {
        let mut c = ObjectCache::new(1024);
        c.admit(
            oid(1),
            Mutability::AppendOnly,
            tag(1),
            Bytes::from_static(b"12345"),
        );
        // Inside the stable prefix: hit.
        assert_eq!(&c.get(oid(1), 1, 3).unwrap().1[..], b"234");
        // Past the prefix: must miss (appends may have happened).
        assert!(c.get(oid(1), 3, 10).is_none());
        // A longer prefix replaces, a shorter one is ignored.
        c.admit(
            oid(1),
            Mutability::AppendOnly,
            tag(2),
            Bytes::from_static(b"1234567890"),
        );
        let (t, data) = c.get(oid(1), 5, 5).unwrap();
        assert_eq!(&data[..], b"67890");
        assert_eq!(t, tag(2));
        c.admit(
            oid(1),
            Mutability::AppendOnly,
            tag(3),
            Bytes::from_static(b"12"),
        );
        assert_eq!(&c.get(oid(1), 5, 5).unwrap().1[..], b"67890");
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let mut c = ObjectCache::new(10);
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"aaaa"),
        );
        c.admit(
            oid(2),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"bbbb"),
        );
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(oid(1), 0, 1).is_some());
        c.admit(
            oid(3),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"cccc"),
        );
        assert!(c.used_bytes() <= 10);
        assert!(c.get(oid(2), 0, 1).is_none(), "LRU entry should be gone");
        assert!(c.get(oid(1), 0, 1).is_some());
        assert!(c.get(oid(3), 0, 1).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn oversized_objects_bypass() {
        let mut c = ObjectCache::new(4);
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"too big"),
        );
        assert_eq!(c.used_bytes(), 0);
        assert!(c.get(oid(1), 0, 1).is_none());
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = ObjectCache::new(64);
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"gone"),
        );
        c.invalidate(oid(1));
        assert!(c.get(oid(1), 0, 1).is_none());
        assert_eq!(c.used_bytes(), 0);
        // Invalidating a missing id is a no-op.
        c.invalidate(oid(9));
    }

    #[test]
    fn growth_past_cached_prefix_hits_then_misses() {
        let mut c = ObjectCache::new(1024);
        // A 4-byte stable prefix is cached; the object then grows to 8
        // bytes remotely. Reads ending inside the cached prefix still
        // hit; reads into the grown tail must miss (the cache has no
        // idea the appends happened) until the longer prefix is
        // re-admitted.
        c.admit(
            oid(1),
            Mutability::AppendOnly,
            tag(1),
            Bytes::from_static(b"abcd"),
        );
        assert_eq!(&c.get(oid(1), 0, 4).unwrap().1[..], b"abcd");
        assert!(c.get(oid(1), 0, 8).is_none(), "past the cached prefix");
        assert!(c.get(oid(1), 4, 4).is_none(), "entirely in the grown tail");
        c.admit(
            oid(1),
            Mutability::AppendOnly,
            tag(2),
            Bytes::from_static(b"abcdefgh"),
        );
        assert_eq!(&c.get(oid(1), 0, 8).unwrap().1[..], b"abcdefgh");
        assert_eq!(&c.get(oid(1), 4, 4).unwrap().1[..], b"efgh");
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn zero_length_prefix_serves_only_empty_reads() {
        let mut c = ObjectCache::new(64);
        c.admit(oid(1), Mutability::AppendOnly, tag(1), Bytes::new());
        assert_eq!(c.used_bytes(), 0);
        // A zero-length read inside the (empty) prefix is a hit; any
        // non-empty read must go to a replica.
        let (t, data) = c.get(oid(1), 0, 0).unwrap();
        assert_eq!(t, tag(1));
        assert!(data.is_empty());
        assert!(c.get(oid(1), 0, 1).is_none());
        // An empty prefix never replaces a longer cached one.
        c.admit(
            oid(1),
            Mutability::AppendOnly,
            tag(2),
            Bytes::from_static(b"xy"),
        );
        c.admit(oid(1), Mutability::AppendOnly, tag(3), Bytes::new());
        assert_eq!(&c.get(oid(1), 0, 2).unwrap().1[..], b"xy");
    }

    #[test]
    fn eviction_counter_counts_exactly_the_evicted_entries() {
        let mut c = ObjectCache::new(10);
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"aaaa"),
        );
        c.admit(
            oid(2),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"bbbb"),
        );
        assert_eq!(c.evictions(), 0);
        // An 8-byte admit must evict *both* residents (one would leave
        // the cache at 12/10), and the counter must say exactly 2.
        c.admit(
            oid(3),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"cccccccc"),
        );
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.used_bytes(), 8);
        // Replacing an entry in place is not an eviction...
        c.admit(
            oid(3),
            Mutability::Immutable,
            tag(2),
            Bytes::from_static(b"cc"),
        );
        // ...and neither is refusing an oversized object.
        c.admit(
            oid(4),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"far too big to fit"),
        );
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn readmitting_same_id_replaces_bytes_accounting() {
        let mut c = ObjectCache::new(64);
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(1),
            Bytes::from_static(b"aaaa"),
        );
        c.admit(
            oid(1),
            Mutability::Immutable,
            tag(2),
            Bytes::from_static(b"bb"),
        );
        assert_eq!(c.used_bytes(), 2);
    }
}
