//! Replica placement: rendezvous hashing across fault domains.
//!
//! Each object's replica set is derived deterministically from its id with
//! highest-random-weight (rendezvous) hashing, preferring distinct racks
//! so a rack failure cannot take out a whole replica set. The first
//! replica in the set is the object's *primary* (the mutation serializer).

use std::cell::RefCell;

use fxhash::FxHashMap;
use pcsi_core::ObjectId;
use pcsi_net::{NodeId, Topology};

/// Upper bound on memoized replica sets; the cache resets when full so a
/// scan over a huge keyspace cannot grow it without bound.
const CACHE_MAX: usize = 4096;

/// Deterministic replica-set computation.
#[derive(Debug, Clone)]
pub struct Placement {
    storage_nodes: Vec<(NodeId, u32)>, // (node, rack)
    n_replicas: usize,
    // Replica sets are a pure function of (storage_nodes, n_replicas, id)
    // and both inputs are fixed at construction, so memoizing per object
    // is invisible to callers. It turns the per-op rendezvous sort into a
    // hash lookup on the quorum hot path.
    cache: RefCell<FxHashMap<ObjectId, Vec<NodeId>>>,
}

impl Placement {
    /// Creates a placement over `storage_nodes` with `n_replicas` copies.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero or exceeds the node count.
    pub fn new(topology: &Topology, storage_nodes: Vec<NodeId>, n_replicas: usize) -> Self {
        assert!(n_replicas >= 1, "need at least one replica");
        assert!(
            n_replicas <= storage_nodes.len(),
            "n_replicas {} exceeds {} storage nodes",
            n_replicas,
            storage_nodes.len()
        );
        let storage_nodes = storage_nodes
            .into_iter()
            .map(|n| (n, topology.spec(n).rack))
            .collect();
        Placement {
            storage_nodes,
            n_replicas,
            cache: RefCell::new(FxHashMap::default()),
        }
    }

    /// Replication factor.
    pub fn replication_factor(&self) -> usize {
        self.n_replicas
    }

    /// Majority quorum size (`floor(n/2) + 1`).
    pub fn majority(&self) -> usize {
        self.n_replicas / 2 + 1
    }

    /// The storage nodes participating in placement.
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        self.storage_nodes.iter().map(|(n, _)| *n).collect()
    }

    /// The replica set for an object, primary first.
    ///
    /// Rack-aware: replicas are drawn from distinct racks while distinct
    /// racks remain, then filled from the remaining highest-weight nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcsi_net::Topology;
    /// use pcsi_store::Placement;
    /// use pcsi_core::ObjectId;
    ///
    /// let topo = Topology::uniform(3, 2);
    /// let p = Placement::new(&topo, topo.node_ids(), 3);
    /// let set = p.replicas(ObjectId::from_parts(1, 42));
    /// assert_eq!(set.len(), 3);
    /// // Deterministic:
    /// assert_eq!(set, p.replicas(ObjectId::from_parts(1, 42)));
    /// ```
    pub fn replicas(&self, id: ObjectId) -> Vec<NodeId> {
        self.with_replicas(id, <[NodeId]>::to_vec)
    }

    /// Runs `f` on the (memoized) replica set without cloning it.
    fn with_replicas<R>(&self, id: ObjectId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        if let Some(set) = self.cache.borrow().get(&id) {
            return f(set);
        }
        let chosen = self.compute_replicas(id);
        let out = f(&chosen);
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= CACHE_MAX {
            cache.clear();
        }
        cache.insert(id, chosen);
        out
    }

    fn compute_replicas(&self, id: ObjectId) -> Vec<NodeId> {
        let mut scored: Vec<(u64, NodeId, u32)> = self
            .storage_nodes
            .iter()
            .map(|&(n, rack)| (weight(id, n), n, rack))
            .collect();
        // Highest weight first; NodeId tiebreak for full determinism.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut chosen: Vec<NodeId> = Vec::with_capacity(self.n_replicas);
        let mut used_racks: Vec<u32> = Vec::new();
        // Pass 1: distinct racks.
        for &(_, n, rack) in &scored {
            if chosen.len() == self.n_replicas {
                break;
            }
            if !used_racks.contains(&rack) {
                chosen.push(n);
                used_racks.push(rack);
            }
        }
        // Pass 2: fill from the remainder.
        for &(_, n, _) in &scored {
            if chosen.len() == self.n_replicas {
                break;
            }
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
        chosen
    }

    /// The primary (mutation serializer) for an object.
    pub fn primary(&self, id: ObjectId) -> NodeId {
        self.with_replicas(id, |set| set[0])
    }

    /// The replica of `id` closest to `from` (used by eventual reads).
    pub fn closest_replica(&self, topology: &Topology, id: ObjectId, from: NodeId) -> NodeId {
        self.with_replicas(id, |set| {
            *set.iter()
                .min_by_key(|&&r| (topology.hop_class(from, r), r))
                .expect("replica set non-empty")
        })
    }
}

/// Rendezvous weight of `(object, node)`.
fn weight(id: ObjectId, node: NodeId) -> u64 {
    let mut x = (id.as_u128() as u64)
        ^ ((id.as_u128() >> 64) as u64)
        ^ (u64::from(node.0).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(4, n)
    }

    #[test]
    fn replica_sets_are_deterministic_and_distinct() {
        let topo = Topology::uniform(4, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        for i in 0..100 {
            let set = p.replicas(oid(i));
            assert_eq!(set.len(), 3);
            let mut dedup = set.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "duplicate replica in {set:?}");
            assert_eq!(set, p.replicas(oid(i)));
        }
    }

    #[test]
    fn replicas_span_racks() {
        let topo = Topology::uniform(4, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        for i in 0..100 {
            let set = p.replicas(oid(i));
            let mut racks: Vec<u32> = set.iter().map(|&n| topo.spec(n).rack).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "replicas share a rack: {set:?}");
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let topo = Topology::uniform(2, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        let mut primary_counts = vec![0u32; topo.len()];
        for i in 0..2_000 {
            primary_counts[p.primary(oid(i)).0 as usize] += 1;
        }
        let min = *primary_counts.iter().min().unwrap();
        let max = *primary_counts.iter().max().unwrap();
        assert!(min > 0, "some node never primary: {primary_counts:?}");
        assert!(
            f64::from(max) / f64::from(min) < 2.0,
            "unbalanced: {primary_counts:?}"
        );
    }

    #[test]
    fn memoized_sets_match_fresh_computation() {
        let topo = Topology::uniform(4, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        // Overflow the cache so both the hit path and the reset path run.
        for round in 0..2 {
            for i in 0..(CACHE_MAX as u64 + 10) {
                assert_eq!(
                    p.replicas(oid(i)),
                    p.compute_replicas(oid(i)),
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn majority_math() {
        let topo = Topology::uniform(2, 3);
        for (n, maj) in [(1, 1), (2, 2), (3, 2), (5, 3)] {
            let p = Placement::new(&topo, topo.node_ids(), n);
            assert_eq!(p.majority(), maj, "n = {n}");
        }
    }

    #[test]
    fn closest_replica_prefers_locality() {
        let topo = Topology::uniform(3, 3);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        for i in 0..50 {
            let id = oid(i);
            let set = p.replicas(id);
            // Asking from a replica node returns that node itself.
            let from = set[1];
            assert_eq!(p.closest_replica(&topo, id, from), from);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_replicas_rejected() {
        let topo = Topology::uniform(1, 2);
        let _ = Placement::new(&topo, topo.node_ids(), 3);
    }
}
