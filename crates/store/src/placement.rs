//! Replica placement: consistent hashing over virtual nodes.
//!
//! Each ring member contributes [`VNODES_PER_NODE`] points on a 64-bit
//! hash ring. An object's candidate order is the distinct-node order of a
//! clockwise walk from the object's own hash point; the replica set is
//! drawn from that order preferring distinct racks, so a rack failure
//! cannot take out a whole replica set. The first replica in the set is
//! the object's *primary* (the mutation serializer).
//!
//! Unlike the seed's static rendezvous placement, the ring is **mutable**:
//! [`Placement::begin_join`] / [`Placement::begin_leave`] change the
//! membership, bump the topology *epoch*, and pin every object whose
//! replica set changed to its old owners until a background migration
//! calls [`Placement::complete_move`]. All clones of a `Placement` share
//! one ring (`Rc` inner), so replicas, clients, and the kernel observe a
//! topology change at the same instant; the memo cache is epoch-tagged so
//! a stale entry can never be served across a change.

use std::cell::RefCell;
use std::rc::Rc;

use fxhash::FxHashMap;
use pcsi_core::ObjectId;
use pcsi_net::{NodeId, Topology};

/// Virtual nodes contributed to the ring by each member.
pub const VNODES_PER_NODE: u32 = 64;

/// Upper bound on memoized replica sets; the cache resets when full so a
/// scan over a huge keyspace cannot grow it without bound.
const CACHE_MAX: usize = 4096;

/// An object pinned to its pre-change replica set while data moves.
#[derive(Debug, Clone)]
struct MoveState {
    /// The replica set that owns the data until the move completes.
    old: Vec<NodeId>,
    /// While frozen, replicas reject coordinate/apply for the object so
    /// the migration snapshot cannot race a committing write.
    frozen: bool,
}

#[derive(Debug)]
struct RingState {
    /// Monotonic topology epoch; bumped by every join/leave.
    epoch: u64,
    /// Current ring members with their racks, sorted by node id.
    members: Vec<(NodeId, u32)>,
    /// Sorted vnode points: (point, node, rack).
    ring: Vec<(u64, NodeId, u32)>,
    /// Epoch-tagged memo of ring-derived replica sets. Entries from an
    /// older epoch are ignored (and overwritten), so a topology change
    /// invalidates the cache without touching every entry.
    cache: FxHashMap<ObjectId, (u64, Vec<NodeId>)>,
    /// In-flight migrations: object -> pinned old owners.
    moves: FxHashMap<ObjectId, MoveState>,
}

impl RingState {
    fn rebuild_ring(&mut self) {
        self.ring.clear();
        for &(n, rack) in &self.members {
            for v in 0..VNODES_PER_NODE {
                self.ring.push((vnode_point(n, v), n, rack));
            }
        }
        // NodeId tiebreak on equal points for full determinism.
        self.ring.sort_unstable_by_key(|a| (a.0, a.1));
    }

    /// The ring-derived replica set (ignores move pins).
    fn select(&self, id: ObjectId, n_replicas: usize) -> Vec<NodeId> {
        debug_assert!(n_replicas <= self.members.len());
        let len = self.ring.len();
        let h = object_point(id);
        let start = self.ring.partition_point(|&(p, _, _)| p < h) % len;
        // Candidate nodes in clockwise first-appearance order.
        let mut cands: Vec<(NodeId, u32)> = Vec::with_capacity(self.members.len());
        let mut i = start;
        while cands.len() < self.members.len() {
            let (_, n, rack) = self.ring[i];
            if !cands.iter().any(|&(c, _)| c == n) {
                cands.push((n, rack));
            }
            i = (i + 1) % len;
        }

        let mut chosen: Vec<NodeId> = Vec::with_capacity(n_replicas);
        let mut used_racks: Vec<u32> = Vec::new();
        // Pass 1: distinct racks in candidate order.
        for &(n, rack) in &cands {
            if chosen.len() == n_replicas {
                break;
            }
            if !used_racks.contains(&rack) {
                chosen.push(n);
                used_racks.push(rack);
            }
        }
        // Pass 2: fill from the remainder.
        for &(n, _) in &cands {
            if chosen.len() == n_replicas {
                break;
            }
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
        chosen
    }
}

#[derive(Debug)]
struct PlacementInner {
    n_replicas: usize,
    state: RefCell<RingState>,
}

/// Deterministic, shared, epoch-versioned replica-set computation.
///
/// Cloning is cheap and **shares** the ring: a topology change through any
/// clone is visible to all of them.
#[derive(Debug, Clone)]
pub struct Placement {
    inner: Rc<PlacementInner>,
}

impl Placement {
    /// Creates a placement over `storage_nodes` with `n_replicas` copies.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero or exceeds the node count.
    pub fn new(topology: &Topology, storage_nodes: Vec<NodeId>, n_replicas: usize) -> Self {
        assert!(n_replicas >= 1, "need at least one replica");
        assert!(
            n_replicas <= storage_nodes.len(),
            "n_replicas {} exceeds {} storage nodes",
            n_replicas,
            storage_nodes.len()
        );
        let mut members: Vec<(NodeId, u32)> = storage_nodes
            .into_iter()
            .map(|n| (n, topology.spec(n).rack))
            .collect();
        members.sort_unstable_by_key(|&(n, _)| n);
        let mut state = RingState {
            epoch: 1,
            members,
            ring: Vec::new(),
            cache: FxHashMap::default(),
            moves: FxHashMap::default(),
        };
        state.rebuild_ring();
        Placement {
            inner: Rc::new(PlacementInner {
                n_replicas,
                state: RefCell::new(state),
            }),
        }
    }

    /// Replication factor.
    pub fn replication_factor(&self) -> usize {
        self.inner.n_replicas
    }

    /// Majority quorum size (`floor(n/2) + 1`).
    pub fn majority(&self) -> usize {
        self.inner.n_replicas / 2 + 1
    }

    /// The current ring members.
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        let st = self.inner.state.borrow();
        st.members.iter().map(|(n, _)| *n).collect()
    }

    /// True if `node` is a current ring member.
    pub fn is_member(&self, node: NodeId) -> bool {
        let st = self.inner.state.borrow();
        st.members.iter().any(|&(n, _)| n == node)
    }

    /// The current topology epoch (starts at 1, bumped by join/leave).
    pub fn epoch(&self) -> u64 {
        self.inner.state.borrow().epoch
    }

    /// The *effective* replica set for an object, primary first.
    ///
    /// Rack-aware: replicas are drawn from distinct racks while distinct
    /// racks remain, then filled from the remaining ring-order candidates.
    /// An object mid-migration stays pinned to its old owners until
    /// [`Placement::complete_move`].
    ///
    /// # Examples
    ///
    /// ```
    /// use pcsi_net::Topology;
    /// use pcsi_store::Placement;
    /// use pcsi_core::ObjectId;
    ///
    /// let topo = Topology::uniform(3, 2);
    /// let p = Placement::new(&topo, topo.node_ids(), 3);
    /// let set = p.replicas(ObjectId::from_parts(1, 42));
    /// assert_eq!(set.len(), 3);
    /// // Deterministic:
    /// assert_eq!(set, p.replicas(ObjectId::from_parts(1, 42)));
    /// ```
    pub fn replicas(&self, id: ObjectId) -> Vec<NodeId> {
        self.with_replicas(id, <[NodeId]>::to_vec)
    }

    /// Runs `f` on the (memoized) effective replica set without cloning it.
    fn with_replicas<R>(&self, id: ObjectId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        {
            let st = self.inner.state.borrow();
            if let Some(mv) = st.moves.get(&id) {
                return f(&mv.old);
            }
            if let Some((epoch, set)) = st.cache.get(&id) {
                if *epoch == st.epoch {
                    return f(set);
                }
            }
        }
        let chosen = {
            let mut st = self.inner.state.borrow_mut();
            let chosen = st.select(id, self.inner.n_replicas);
            if st.cache.len() >= CACHE_MAX {
                st.cache.clear();
            }
            let epoch = st.epoch;
            st.cache.insert(id, (epoch, chosen.clone()));
            chosen
        };
        f(&chosen)
    }

    /// The ring-derived *target* replica set, ignoring move pins.
    ///
    /// During a migration this is where the data is headed; once
    /// [`Placement::complete_move`] runs it coincides with
    /// [`Placement::replicas`].
    pub fn ring_replicas(&self, id: ObjectId) -> Vec<NodeId> {
        let st = self.inner.state.borrow();
        st.select(id, self.inner.n_replicas)
    }

    /// True when `node` is in the effective replica set of `id` (no
    /// clone; replica-side membership checks run per request).
    pub fn is_replica(&self, id: ObjectId, node: NodeId) -> bool {
        self.with_replicas(id, |set| set.contains(&node))
    }

    /// The primary (mutation serializer) for an object.
    pub fn primary(&self, id: ObjectId) -> NodeId {
        self.with_replicas(id, |set| set[0])
    }

    /// The replica of `id` closest to `from` (used by eventual reads).
    pub fn closest_replica(&self, topology: &Topology, id: ObjectId, from: NodeId) -> NodeId {
        self.with_replicas(id, |set| {
            *set.iter()
                .min_by_key(|&&r| (topology.hop_class(from, r), r))
                .expect("replica set non-empty")
        })
    }

    /// Adds `node` to the ring, bumps the epoch, and pins every object in
    /// `objects` whose replica set changed to its old owners. Returns the
    /// newly pinned objects (sorted); [`Placement::pending_moves`] holds
    /// the full migration queue, including pins from earlier changes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already a ring member.
    pub fn begin_join(
        &self,
        topology: &Topology,
        node: NodeId,
        objects: &[ObjectId],
    ) -> Vec<ObjectId> {
        let rack = topology.spec(node).rack;
        let mut st = self.inner.state.borrow_mut();
        assert!(
            !st.members.iter().any(|&(n, _)| n == node),
            "node {node:?} already in ring"
        );
        let n_replicas = self.inner.n_replicas;
        let old_sets: Vec<(ObjectId, Vec<NodeId>)> = objects
            .iter()
            .map(|&id| (id, st.select(id, n_replicas)))
            .collect();
        st.members.push((node, rack));
        st.members.sort_unstable_by_key(|&(n, _)| n);
        st.rebuild_ring();
        st.epoch += 1;
        st.cache.clear();
        Self::pin_changed(&mut st, old_sets, n_replicas)
    }

    /// Removes `node` from the ring, bumps the epoch, and pins every
    /// object in `objects` whose replica set changed to its old owners
    /// (which may include the departing node — it keeps serving until the
    /// data moves). Returns the newly pinned objects (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member or removal would leave fewer
    /// members than the replication factor.
    pub fn begin_leave(&self, node: NodeId, objects: &[ObjectId]) -> Vec<ObjectId> {
        let mut st = self.inner.state.borrow_mut();
        let n_replicas = self.inner.n_replicas;
        assert!(
            st.members.iter().any(|&(n, _)| n == node),
            "node {node:?} not in ring"
        );
        assert!(
            st.members.len() > n_replicas,
            "removing {node:?} leaves fewer members than the replication factor"
        );
        let old_sets: Vec<(ObjectId, Vec<NodeId>)> = objects
            .iter()
            .map(|&id| (id, st.select(id, n_replicas)))
            .collect();
        st.members.retain(|&(n, _)| n != node);
        st.rebuild_ring();
        st.epoch += 1;
        st.cache.clear();
        Self::pin_changed(&mut st, old_sets, n_replicas)
    }

    fn pin_changed(
        st: &mut RingState,
        old_sets: Vec<(ObjectId, Vec<NodeId>)>,
        n_replicas: usize,
    ) -> Vec<ObjectId> {
        let mut pinned = Vec::new();
        for (id, old) in old_sets {
            // An object already mid-move keeps its original pin: the data
            // still lives on those owners, only the target changed.
            if st.moves.contains_key(&id) {
                continue;
            }
            if st.select(id, n_replicas) != old {
                st.moves.insert(id, MoveState { old, frozen: false });
                pinned.push(id);
            }
        }
        pinned.sort_unstable();
        pinned
    }

    /// Objects pinned to old owners, awaiting migration (sorted).
    pub fn pending_moves(&self) -> Vec<ObjectId> {
        let st = self.inner.state.borrow();
        let mut ids: Vec<ObjectId> = st.moves.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The pinned old replica set of an object mid-migration.
    pub fn move_old_set(&self, id: ObjectId) -> Option<Vec<NodeId>> {
        let st = self.inner.state.borrow();
        st.moves.get(&id).map(|mv| mv.old.clone())
    }

    /// Blocks coordinate/apply for a mid-move object while its state is
    /// snapshotted and installed on the new owners.
    ///
    /// # Panics
    ///
    /// Panics if the object has no pending move.
    pub fn freeze(&self, id: ObjectId) {
        let mut st = self.inner.state.borrow_mut();
        st.moves
            .get_mut(&id)
            .expect("freeze without a pending move")
            .frozen = true;
    }

    /// Re-admits writes for a mid-move object (no-op if the move is gone).
    pub fn unfreeze(&self, id: ObjectId) {
        let mut st = self.inner.state.borrow_mut();
        if let Some(mv) = st.moves.get_mut(&id) {
            mv.frozen = false;
        }
    }

    /// True while a migration holds the object's write path shut.
    pub fn is_frozen(&self, id: ObjectId) -> bool {
        let st = self.inner.state.borrow();
        st.moves.get(&id).is_some_and(|mv| mv.frozen)
    }

    /// Flips an object to its ring-derived owners: drops the pin (and any
    /// freeze) installed by `begin_join`/`begin_leave`.
    pub fn complete_move(&self, id: ObjectId) {
        let mut st = self.inner.state.borrow_mut();
        st.moves.remove(&id);
    }
}

/// Ring point of a vnode.
fn vnode_point(node: NodeId, vnode: u32) -> u64 {
    splitmix((u64::from(node.0) << 32) | u64::from(vnode))
}

/// Ring point of an object.
fn object_point(id: ObjectId) -> u64 {
    splitmix((id.as_u128() as u64) ^ ((id.as_u128() >> 64) as u64))
}

/// SplitMix64 finalizer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(4, n)
    }

    #[test]
    fn replica_sets_are_deterministic_and_distinct() {
        let topo = Topology::uniform(4, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        for i in 0..100 {
            let set = p.replicas(oid(i));
            assert_eq!(set.len(), 3);
            let mut dedup = set.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "duplicate replica in {set:?}");
            assert_eq!(set, p.replicas(oid(i)));
        }
    }

    #[test]
    fn replicas_span_racks() {
        let topo = Topology::uniform(4, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        for i in 0..100 {
            let set = p.replicas(oid(i));
            let mut racks: Vec<u32> = set.iter().map(|&n| topo.spec(n).rack).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "replicas share a rack: {set:?}");
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let topo = Topology::uniform(2, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        let mut primary_counts = vec![0u32; topo.len()];
        for i in 0..2_000 {
            primary_counts[p.primary(oid(i)).0 as usize] += 1;
        }
        let min = *primary_counts.iter().min().unwrap();
        let max = *primary_counts.iter().max().unwrap();
        assert!(min > 0, "some node never primary: {primary_counts:?}");
        assert!(
            f64::from(max) / f64::from(min) < 2.0,
            "unbalanced: {primary_counts:?}"
        );
    }

    #[test]
    fn memoized_sets_match_fresh_computation() {
        let topo = Topology::uniform(4, 4);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        // Overflow the cache so both the hit path and the reset path run.
        for round in 0..2 {
            for i in 0..(CACHE_MAX as u64 + 10) {
                assert_eq!(p.replicas(oid(i)), p.ring_replicas(oid(i)), "round {round}");
            }
        }
    }

    #[test]
    fn majority_math() {
        let topo = Topology::uniform(2, 3);
        for (n, maj) in [(1, 1), (2, 2), (3, 2), (5, 3)] {
            let p = Placement::new(&topo, topo.node_ids(), n);
            assert_eq!(p.majority(), maj, "n = {n}");
        }
    }

    #[test]
    fn closest_replica_prefers_locality() {
        let topo = Topology::uniform(3, 3);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        for i in 0..50 {
            let id = oid(i);
            let set = p.replicas(id);
            // Asking from a replica node returns that node itself.
            let from = set[1];
            assert_eq!(p.closest_replica(&topo, id, from), from);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_replicas_rejected() {
        let topo = Topology::uniform(1, 2);
        let _ = Placement::new(&topo, topo.node_ids(), 3);
    }

    #[test]
    fn clones_share_the_ring() {
        let topo = Topology::uniform(4, 3);
        let nodes = topo.node_ids();
        let p = Placement::new(&topo, nodes[..11].to_vec(), 3);
        let clone = p.clone();
        assert_eq!(clone.epoch(), 1);
        let moved = p.begin_join(&topo, nodes[11], &[]);
        assert!(moved.is_empty());
        assert_eq!(clone.epoch(), 2);
        assert!(clone.is_member(nodes[11]));
    }

    /// Regression: a replica set memoized before a join must not be served
    /// afterwards — the epoch tag invalidates it, pins route to the old
    /// owners mid-move, and completion routes to the new owner set.
    #[test]
    fn memo_cache_invalidated_on_join() {
        let topo = Topology::uniform(4, 3);
        let nodes = topo.node_ids();
        let p = Placement::new(&topo, nodes[..11].to_vec(), 3);
        let clone = p.clone();
        let ids: Vec<ObjectId> = (0..500).map(oid).collect();
        // Warm the clone's memo cache with pre-join replica sets.
        let before: Vec<Vec<NodeId>> = ids.iter().map(|&id| clone.replicas(id)).collect();
        let moved = p.begin_join(&topo, nodes[11], &ids);
        assert!(!moved.is_empty(), "join relocated nothing");
        for (i, &id) in ids.iter().enumerate() {
            if moved.contains(&id) {
                // Pinned: still the old owners (data has not moved yet).
                assert_eq!(clone.replicas(id), before[i]);
                assert_eq!(p.move_old_set(id).unwrap(), before[i]);
                p.complete_move(id);
                // Flipped: the stale memo entry must not resurface.
                assert_eq!(clone.replicas(id), p.ring_replicas(id));
                assert_ne!(clone.replicas(id), before[i]);
            } else {
                assert_eq!(clone.replicas(id), before[i], "unpinned set changed");
            }
        }
        // At least one relocated object now routes to the joined node.
        assert!(moved
            .iter()
            .any(|&id| clone.replicas(id).contains(&nodes[11])));
        assert!(p.pending_moves().is_empty());
    }

    #[test]
    fn join_pins_only_changed_sets_and_leave_restores() {
        let topo = Topology::uniform(4, 3);
        let nodes = topo.node_ids();
        let p = Placement::new(&topo, nodes[..11].to_vec(), 3);
        let ids: Vec<ObjectId> = (0..300).map(oid).collect();
        let before: Vec<Vec<NodeId>> = ids.iter().map(|&id| p.ring_replicas(id)).collect();
        let joined = p.begin_join(&topo, nodes[11], &ids);
        // Minimal movement: every changed set involves the joined node.
        for &id in &joined {
            assert!(p.ring_replicas(id).contains(&nodes[11]), "{id:?}");
            p.complete_move(id);
        }
        let left = p.begin_leave(nodes[11], &ids);
        assert_eq!(left, joined, "leave must relocate exactly the joined keys");
        for &id in &left {
            p.complete_move(id);
        }
        // Ring is a pure function of membership: sets are fully restored.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.ring_replicas(id), before[i]);
        }
        assert_eq!(p.epoch(), 3);
    }

    #[test]
    fn freeze_unfreeze_lifecycle() {
        let topo = Topology::uniform(4, 3);
        let nodes = topo.node_ids();
        let p = Placement::new(&topo, nodes[..11].to_vec(), 3);
        let ids: Vec<ObjectId> = (0..100).map(oid).collect();
        let moved = p.begin_join(&topo, nodes[11], &ids);
        let id = moved[0];
        assert!(!p.is_frozen(id));
        p.freeze(id);
        assert!(p.is_frozen(id));
        p.unfreeze(id);
        assert!(!p.is_frozen(id));
        p.freeze(id);
        p.complete_move(id);
        // Completion clears the freeze along with the pin.
        assert!(!p.is_frozen(id));
    }

    #[test]
    #[should_panic(expected = "already in ring")]
    fn double_join_rejected() {
        let topo = Topology::uniform(2, 2);
        let p = Placement::new(&topo, topo.node_ids(), 2);
        let _ = p.begin_join(&topo, topo.node_ids()[0], &[]);
    }

    #[test]
    #[should_panic(expected = "fewer members")]
    fn leave_below_replication_factor_rejected() {
        let topo = Topology::uniform(1, 3);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        let _ = p.begin_leave(topo.node_ids()[0], &[]);
    }
}
