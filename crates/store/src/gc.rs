//! Reachability garbage collection.
//!
//! §3.2: "PCSI makes object reachability explicit. An object is only
//! accessible by functions that hold a reference to it or to a namespace
//! containing it. ... Another benefit is automated resource reclamation
//! for unreachable objects."
//!
//! The collector is a classic mark-and-sweep over the object graph:
//! *roots* are the objects named by live kernel references and tenant
//! namespace roots; *edges* are directory entries (a directory reaches
//! every object it names). The kernel supplies both; this module supplies
//! the algorithm and the sweep.

use fxhash::FxHashSet;

use pcsi_core::ObjectId;

use crate::store::ReplicatedStore;

/// Computes the unreachable subset of `all_objects`.
///
/// `edges(id)` returns the ids directly reachable from `id` (directory
/// entries; empty for leaf objects). The result is sorted for
/// deterministic sweeps.
///
/// # Examples
///
/// ```
/// use pcsi_core::ObjectId;
/// use pcsi_store::gc::mark;
///
/// let a = ObjectId::from_parts(1, 1);
/// let b = ObjectId::from_parts(1, 2);
/// let orphan = ObjectId::from_parts(1, 3);
/// // a -> b, orphan unreferenced.
/// let unreachable = mark(
///     [a],
///     |id| if id == a { vec![b] } else { vec![] },
///     vec![a, b, orphan],
/// );
/// assert_eq!(unreachable, vec![orphan]);
/// ```
pub fn mark(
    roots: impl IntoIterator<Item = ObjectId>,
    edges: impl Fn(ObjectId) -> Vec<ObjectId>,
    all_objects: Vec<ObjectId>,
) -> Vec<ObjectId> {
    let mut live: FxHashSet<ObjectId> = FxHashSet::default();
    let mut stack: Vec<ObjectId> = roots.into_iter().collect();
    while let Some(id) = stack.pop() {
        if live.insert(id) {
            stack.extend(edges(id));
        }
    }
    let mut dead: Vec<ObjectId> = all_objects
        .into_iter()
        .filter(|id| !live.contains(id))
        .collect();
    dead.sort_unstable();
    dead.dedup();
    dead
}

/// Removes `unreachable` objects from every replica engine.
///
/// Returns the number of `(object, replica)` evictions performed. Sweeping
/// goes straight to the engines (no replication protocol round): GC is a
/// provider-internal activity, and tombstone bookkeeping is unnecessary
/// because unreachable objects can never be named again.
pub fn sweep(store: &ReplicatedStore, unreachable: &[ObjectId]) -> usize {
    let mut evictions = 0;
    for replica in store.replicas() {
        replica.with_engine(|engine| {
            for &id in unreachable {
                if engine.get(id).is_some() {
                    engine.evict(id);
                    evictions += 1;
                }
            }
        });
    }
    evictions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(7, n)
    }

    #[test]
    fn empty_roots_kill_everything() {
        let all = vec![oid(1), oid(2)];
        let dead = mark(Vec::<ObjectId>::new(), |_| vec![], all.clone());
        let mut expected = all;
        expected.sort_unstable(); // `mark` returns sorted ids.
        assert_eq!(dead, expected);
    }

    #[test]
    fn chains_and_cycles_stay_live() {
        // 1 -> 2 -> 3 -> 1 (cycle), root at 1; 4 dangles.
        let edges = |id: ObjectId| -> Vec<ObjectId> {
            if id == oid(1) {
                vec![oid(2)]
            } else if id == oid(2) {
                vec![oid(3)]
            } else if id == oid(3) {
                vec![oid(1)]
            } else {
                vec![]
            }
        };
        let dead = mark([oid(1)], edges, vec![oid(1), oid(2), oid(3), oid(4)]);
        assert_eq!(dead, vec![oid(4)]);
    }

    #[test]
    fn multiple_roots_union() {
        let dead = mark([oid(1), oid(5)], |_| vec![], vec![oid(1), oid(2), oid(5)]);
        assert_eq!(dead, vec![oid(2)]);
    }

    #[test]
    fn roots_not_in_object_list_are_harmless() {
        // A root can be a kernel-held reference to an already-swept id.
        let dead = mark([oid(9)], |_| vec![], vec![oid(1)]);
        assert_eq!(dead, vec![oid(1)]);
    }
}
