//! The per-node storage engine with media tiers.
//!
//! §3.2: "the cloud provider may use any type of underlying storage
//! medium, or a combination of several of them, to meet target
//! performance, cost, and availability criteria." The engine stores
//! objects in memory (this is a simulation) but charges each access the
//! latency and bandwidth of a configured [`MediaTier`], so experiments see
//! DRAM-vs-NVMe-vs-disk effects.

use fxhash::FxHashMap;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::{Mutability, ObjectId, PcsiError};

use crate::version::Tag;

/// Storage media with distinct latency/bandwidth envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaTier {
    /// DRAM-resident (memcached-class): ~100 ns access.
    Dram,
    /// NVMe flash: ~20 µs access, ~2 GB/s.
    Nvme,
    /// Spinning disk: ~4 ms access, ~200 MB/s.
    Hdd,
}

impl MediaTier {
    /// Fixed per-operation access latency.
    pub fn access_latency(self) -> Duration {
        match self {
            MediaTier::Dram => Duration::from_nanos(100),
            MediaTier::Nvme => Duration::from_micros(20),
            MediaTier::Hdd => Duration::from_millis(4),
        }
    }

    /// Sustained bandwidth in bytes/second.
    pub fn bandwidth_bps(self) -> u64 {
        match self {
            MediaTier::Dram => 50_000_000_000,
            MediaTier::Nvme => 2_000_000_000,
            MediaTier::Hdd => 200_000_000,
        }
    }

    /// Total time to move `bytes` through this tier once.
    pub fn io_time(self, bytes: usize) -> Duration {
        self.access_latency()
            + Duration::from_nanos(
                (bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bps(),
            )
    }
}

/// One stored object replica: bytes plus ordering/mutability metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    /// Object contents.
    pub data: Bytes,
    /// Tag of the last applied mutation.
    pub tag: Tag,
    /// Mutability level (replicated with the data so every replica can
    /// enforce it).
    pub mutability: Mutability,
    /// For `APPEND_ONLY`: length of the prefix known stable at the last
    /// mutation (equals `data.len()`; kept explicit for cache contracts).
    pub stable_len: u64,
}

impl StoredObject {
    /// A fresh object.
    pub fn new(data: Bytes, tag: Tag, mutability: Mutability) -> Self {
        let stable_len = data.len() as u64;
        StoredObject {
            data,
            tag,
            mutability,
            stable_len,
        }
    }
}

/// The mutations replicas apply. Produced by the primary, shipped to
/// secondaries, so every replica applies the identical deterministic op.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Replace the whole value (also used for create).
    PutFull {
        /// New contents.
        data: Bytes,
        /// Mutability of the object after the put.
        mutability: Mutability,
    },
    /// Overwrite a range in place.
    WriteAt {
        /// Byte offset.
        offset: u64,
        /// Bytes to splice in.
        data: Bytes,
    },
    /// Append bytes at the end.
    Append {
        /// Bytes to add.
        data: Bytes,
    },
    /// Apply a Figure-1 mutability transition.
    SetMutability {
        /// Target level.
        to: Mutability,
    },
    /// Remove the object.
    Delete,
}

/// Upper bound on a single object's size. Writes that would grow an
/// object past this are rejected before the engine tries to allocate, so
/// a hostile `WriteAt` offset cannot turn into a multi-gigabyte resize.
pub const MAX_OBJECT_BYTES: u64 = 1 << 32;

/// A node-local object store; all methods are synchronous state changes,
/// timing is charged by the caller via [`MediaTier::io_time`].
#[derive(Debug)]
pub struct StorageEngine {
    tier: MediaTier,
    objects: FxHashMap<ObjectId, StoredObject>,
    /// Tombstones: tag at which each object was deleted. Mutations and
    /// anti-entropy pulls at or below the tombstone tag are ignored, so a
    /// straggling replica cannot resurrect a deleted object here.
    tombstones: FxHashMap<ObjectId, Tag>,
    bytes_stored: u64,
}

impl StorageEngine {
    /// An empty engine on the given tier.
    pub fn new(tier: MediaTier) -> Self {
        StorageEngine {
            tier,
            objects: FxHashMap::default(),
            tombstones: FxHashMap::default(),
            bytes_stored: 0,
        }
    }

    /// The engine's media tier.
    pub fn tier(&self) -> MediaTier {
        self.tier
    }

    /// Number of objects held.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total payload bytes held.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Returns the full stored object, if present.
    pub fn get(&self, id: ObjectId) -> Option<&StoredObject> {
        self.objects.get(&id)
    }

    /// Reads `len` bytes at `offset`, clamped to the object's size.
    pub fn read(&self, id: ObjectId, offset: u64, len: u64) -> Result<Bytes, PcsiError> {
        let obj = self.objects.get(&id).ok_or(PcsiError::NotFound(id))?;
        let size = obj.data.len() as u64;
        let start = offset.min(size) as usize;
        let end = offset.saturating_add(len).min(size) as usize;
        Ok(obj.data.slice(start..end))
    }

    /// The tag of the newest applied mutation ([`Tag::ZERO`] if never
    /// written). Deleted objects report their tombstone tag, so version
    /// quorums order the delete after the states it superseded and a
    /// recreate gets a tag above the tombstone instead of being silently
    /// swallowed by it.
    pub fn tag_of(&self, id: ObjectId) -> Tag {
        let live = self.objects.get(&id).map(|o| o.tag).unwrap_or(Tag::ZERO);
        let dead = self.tombstones.get(&id).copied().unwrap_or(Tag::ZERO);
        live.max(dead)
    }

    /// Applies `mutation` under `tag`, enforcing mutability rules.
    ///
    /// Applying is idempotent by tag: a mutation at or below the stored
    /// tag is ignored (duplicate delivery during retries/anti-entropy).
    pub fn apply(&mut self, id: ObjectId, tag: Tag, mutation: &Mutation) -> Result<(), PcsiError> {
        if let Some(existing) = self.objects.get(&id) {
            if tag <= existing.tag {
                return Ok(()); // Stale or duplicate.
            }
        }
        if let Some(&death) = self.tombstones.get(&id) {
            if tag <= death {
                return Ok(()); // Mutation from before the delete.
            }
        }
        match mutation {
            Mutation::PutFull { data, mutability } => {
                // Replacing an existing object wholesale is a write: an
                // immutable or append-only object cannot be overwritten
                // by a later put (clients cache immutable bytes on the
                // strength of this).
                if let Some(existing) = self.objects.get(&id) {
                    if !existing.mutability.allows_write() {
                        return Err(PcsiError::MutabilityViolation {
                            id,
                            level: existing.mutability,
                            op: "write",
                        });
                    }
                }
                self.account_remove(id);
                self.bytes_stored += data.len() as u64;
                self.objects
                    .insert(id, StoredObject::new(data.clone(), tag, *mutability));
                Ok(())
            }
            Mutation::WriteAt { offset, data } => {
                let obj = self.objects.get_mut(&id).ok_or(PcsiError::NotFound(id))?;
                if !obj.mutability.allows_write() {
                    return Err(PcsiError::MutabilityViolation {
                        id,
                        level: obj.mutability,
                        op: "write",
                    });
                }
                let end = offset.checked_add(data.len() as u64).ok_or_else(|| {
                    PcsiError::BadPayload(format!("write range overflows at offset {offset}"))
                })?;
                if end > MAX_OBJECT_BYTES {
                    return Err(PcsiError::BadPayload(format!(
                        "write to offset {offset} would grow object past {MAX_OBJECT_BYTES} bytes"
                    )));
                }
                if end > obj.data.len() as u64 && !obj.mutability.allows_resize() {
                    return Err(PcsiError::MutabilityViolation {
                        id,
                        level: obj.mutability,
                        op: "resize",
                    });
                }
                let mut buf = obj.data.to_vec();
                if end as usize > buf.len() {
                    self.bytes_stored += end - buf.len() as u64;
                    buf.resize(end as usize, 0);
                }
                buf[*offset as usize..end as usize].copy_from_slice(data);
                obj.data = Bytes::from(buf);
                obj.tag = tag;
                obj.stable_len = obj.data.len() as u64;
                Ok(())
            }
            Mutation::Append { data } => {
                let obj = self.objects.get_mut(&id).ok_or(PcsiError::NotFound(id))?;
                if !obj.mutability.allows_append() {
                    return Err(PcsiError::MutabilityViolation {
                        id,
                        level: obj.mutability,
                        op: "append",
                    });
                }
                if obj.data.len() as u64 + data.len() as u64 > MAX_OBJECT_BYTES {
                    return Err(PcsiError::BadPayload(format!(
                        "append would grow object past {MAX_OBJECT_BYTES} bytes"
                    )));
                }
                let mut buf = obj.data.to_vec();
                buf.extend_from_slice(data);
                self.bytes_stored += data.len() as u64;
                obj.data = Bytes::from(buf);
                obj.tag = tag;
                obj.stable_len = obj.data.len() as u64;
                Ok(())
            }
            Mutation::SetMutability { to } => {
                let obj = self.objects.get_mut(&id).ok_or(PcsiError::NotFound(id))?;
                obj.mutability = obj.mutability.transition_to(*to)?;
                obj.tag = tag;
                Ok(())
            }
            Mutation::Delete => {
                self.account_remove(id);
                self.objects.remove(&id);
                self.tombstones.insert(id, tag);
                Ok(())
            }
        }
    }

    /// Removes an object without tag checks (GC path).
    pub fn evict(&mut self, id: ObjectId) {
        self.account_remove(id);
        self.objects.remove(&id);
    }

    /// Installs a full replica state (anti-entropy pull), keeping the
    /// newest tag. Returns whether the incoming state was installed —
    /// callers tracking per-object request ledgers must swap theirs in
    /// exactly when the state they describe is.
    pub fn sync_in(&mut self, id: ObjectId, incoming: StoredObject) -> bool {
        if let Some(&death) = self.tombstones.get(&id) {
            if incoming.tag <= death {
                return false;
            }
        }
        match self.objects.get(&id) {
            Some(existing) if existing.tag >= incoming.tag => false,
            _ => {
                self.account_remove(id);
                self.bytes_stored += incoming.data.len() as u64;
                self.objects.insert(id, incoming);
                true
            }
        }
    }

    /// Iterates `(id, tag)` pairs (anti-entropy inventory).
    pub fn inventory(&self) -> Vec<(ObjectId, Tag)> {
        let mut v: Vec<_> = self.objects.iter().map(|(id, o)| (*id, o.tag)).collect();
        v.sort_unstable();
        v
    }

    /// All object ids present (GC sweep input).
    pub fn ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<_> = self.objects.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn account_remove(&mut self, id: ObjectId) {
        if let Some(o) = self.objects.get(&id) {
            self.bytes_stored -= o.data.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId::from_parts(1, n)
    }

    fn put(e: &mut StorageEngine, n: u64, data: &'static [u8], m: Mutability) -> Tag {
        let tag = Tag { seq: 1, writer: 0 };
        e.apply(
            id(n),
            tag,
            &Mutation::PutFull {
                data: Bytes::from_static(data),
                mutability: m,
            },
        )
        .unwrap();
        tag
    }

    #[test]
    fn media_tier_ordering() {
        assert!(MediaTier::Dram.io_time(1024) < MediaTier::Nvme.io_time(1024));
        assert!(MediaTier::Nvme.io_time(1024) < MediaTier::Hdd.io_time(1024));
        // Large transfers are bandwidth-bound.
        let big = 1 << 30;
        assert!(MediaTier::Nvme.io_time(big) > Duration::from_millis(400));
    }

    #[test]
    fn put_read_roundtrip_with_clamping() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"hello world", Mutability::Mutable);
        assert_eq!(&e.read(id(1), 0, 5).unwrap()[..], b"hello");
        assert_eq!(&e.read(id(1), 6, 100).unwrap()[..], b"world");
        assert_eq!(e.read(id(1), 50, 10).unwrap().len(), 0);
        assert!(e.read(id(2), 0, 1).is_err());
        assert_eq!(e.bytes_stored(), 11);
    }

    #[test]
    fn write_at_respects_mutability() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"aaaa", Mutability::FixedSize);
        let t2 = Tag { seq: 2, writer: 0 };
        e.apply(
            id(1),
            t2,
            &Mutation::WriteAt {
                offset: 1,
                data: Bytes::from_static(b"bb"),
            },
        )
        .unwrap();
        assert_eq!(&e.read(id(1), 0, 10).unwrap()[..], b"abba");
        // Growing a FIXED_SIZE object is a resize violation.
        let err = e
            .apply(
                id(1),
                Tag { seq: 3, writer: 0 },
                &Mutation::WriteAt {
                    offset: 3,
                    data: Bytes::from_static(b"ccc"),
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            PcsiError::MutabilityViolation { op: "resize", .. }
        ));
    }

    #[test]
    fn append_only_rejects_overwrite_allows_append() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"log:", Mutability::AppendOnly);
        let err = e
            .apply(
                id(1),
                Tag { seq: 2, writer: 0 },
                &Mutation::WriteAt {
                    offset: 0,
                    data: Bytes::from_static(b"x"),
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            PcsiError::MutabilityViolation { op: "write", .. }
        ));
        e.apply(
            id(1),
            Tag { seq: 2, writer: 0 },
            &Mutation::Append {
                data: Bytes::from_static(b"entry"),
            },
        )
        .unwrap();
        assert_eq!(&e.read(id(1), 0, 100).unwrap()[..], b"log:entry");
        assert_eq!(e.get(id(1)).unwrap().stable_len, 9);
    }

    #[test]
    fn immutable_rejects_everything_but_survives_reads() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"frozen", Mutability::Immutable);
        for (mutation, _op) in [
            (
                Mutation::WriteAt {
                    offset: 0,
                    data: Bytes::from_static(b"x"),
                },
                "write",
            ),
            (
                Mutation::Append {
                    data: Bytes::from_static(b"x"),
                },
                "append",
            ),
        ] {
            assert!(e
                .apply(id(1), Tag { seq: 9, writer: 0 }, &mutation)
                .is_err());
        }
        assert_eq!(&e.read(id(1), 0, 6).unwrap()[..], b"frozen");
    }

    #[test]
    fn mutability_transition_enforced_by_engine() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"x", Mutability::Mutable);
        e.apply(
            id(1),
            Tag { seq: 2, writer: 0 },
            &Mutation::SetMutability {
                to: Mutability::AppendOnly,
            },
        )
        .unwrap();
        let err = e
            .apply(
                id(1),
                Tag { seq: 3, writer: 0 },
                &Mutation::SetMutability {
                    to: Mutability::Mutable,
                },
            )
            .unwrap_err();
        assert!(matches!(err, PcsiError::InvalidMutabilityTransition { .. }));
    }

    #[test]
    fn stale_and_duplicate_tags_ignored() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"v1", Mutability::Mutable);
        // Duplicate tag: ignored.
        e.apply(
            id(1),
            Tag { seq: 1, writer: 0 },
            &Mutation::PutFull {
                data: Bytes::from_static(b"dup"),
                mutability: Mutability::Mutable,
            },
        )
        .unwrap();
        assert_eq!(&e.read(id(1), 0, 10).unwrap()[..], b"v1");
        // Newer tag applies.
        e.apply(
            id(1),
            Tag { seq: 2, writer: 0 },
            &Mutation::PutFull {
                data: Bytes::from_static(b"v2"),
                mutability: Mutability::Mutable,
            },
        )
        .unwrap();
        assert_eq!(&e.read(id(1), 0, 10).unwrap()[..], b"v2");
    }

    #[test]
    fn delete_and_accounting() {
        let mut e = StorageEngine::new(MediaTier::Nvme);
        put(&mut e, 1, b"12345678", Mutability::Mutable);
        put(&mut e, 2, b"abc", Mutability::Mutable);
        assert_eq!(e.bytes_stored(), 11);
        e.apply(id(1), Tag { seq: 2, writer: 0 }, &Mutation::Delete)
            .unwrap();
        assert_eq!(e.bytes_stored(), 3);
        assert_eq!(e.object_count(), 1);
        assert!(e.read(id(1), 0, 1).is_err());
    }

    #[test]
    fn sync_in_keeps_newest() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"old", Mutability::Mutable);
        e.sync_in(
            id(1),
            StoredObject::new(
                Bytes::from_static(b"newer"),
                Tag { seq: 5, writer: 2 },
                Mutability::Mutable,
            ),
        );
        assert_eq!(&e.read(id(1), 0, 10).unwrap()[..], b"newer");
        // An older incoming state is ignored.
        e.sync_in(
            id(1),
            StoredObject::new(
                Bytes::from_static(b"ancient"),
                Tag { seq: 2, writer: 9 },
                Mutability::Mutable,
            ),
        );
        assert_eq!(&e.read(id(1), 0, 10).unwrap()[..], b"newer");
        assert_eq!(e.bytes_stored(), 5);
    }

    #[test]
    fn tombstones_block_resurrection() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"alive", Mutability::Mutable);
        e.apply(id(1), Tag { seq: 5, writer: 0 }, &Mutation::Delete)
            .unwrap();
        // A straggling pre-delete mutation must not bring it back.
        e.apply(
            id(1),
            Tag { seq: 3, writer: 1 },
            &Mutation::PutFull {
                data: Bytes::from_static(b"zombie"),
                mutability: Mutability::Mutable,
            },
        )
        .unwrap();
        assert!(e.read(id(1), 0, 10).is_err());
        // Neither may anti-entropy with an old tag.
        e.sync_in(
            id(1),
            StoredObject::new(
                Bytes::from_static(b"zombie"),
                Tag { seq: 4, writer: 2 },
                Mutability::Mutable,
            ),
        );
        assert!(e.get(id(1)).is_none());
    }

    #[test]
    fn read_with_extreme_offset_and_len_clamps() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"hello world", Mutability::Mutable);
        // `len == u64::MAX` is the read-everything idiom; the sum with
        // any offset must clamp, never wrap.
        assert_eq!(&e.read(id(1), 0, u64::MAX).unwrap()[..], b"hello world");
        assert_eq!(&e.read(id(1), 6, u64::MAX).unwrap()[..], b"world");
        assert_eq!(e.read(id(1), u64::MAX, u64::MAX).unwrap().len(), 0);
        assert_eq!(e.read(id(1), u64::MAX, 1).unwrap().len(), 0);
    }

    #[test]
    fn write_at_rejects_overflowing_and_oversized_ranges() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"x", Mutability::Mutable);
        // offset + len wraps u64: rejected, not silently misplaced.
        let err = e
            .apply(
                id(1),
                Tag { seq: 2, writer: 0 },
                &Mutation::WriteAt {
                    offset: u64::MAX,
                    data: Bytes::from_static(b"yz"),
                },
            )
            .unwrap_err();
        assert!(matches!(err, PcsiError::BadPayload(_)));
        // A huge (but non-wrapping) offset would force an absurd resize:
        // rejected before any allocation happens.
        let err = e
            .apply(
                id(1),
                Tag { seq: 2, writer: 0 },
                &Mutation::WriteAt {
                    offset: MAX_OBJECT_BYTES,
                    data: Bytes::from_static(b"y"),
                },
            )
            .unwrap_err();
        assert!(matches!(err, PcsiError::BadPayload(_)));
        // The object is untouched.
        assert_eq!(&e.read(id(1), 0, u64::MAX).unwrap()[..], b"x");
        assert_eq!(e.bytes_stored(), 1);
    }

    #[test]
    fn put_full_cannot_replace_unwritable_objects() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"frozen", Mutability::Immutable);
        let err = e
            .apply(
                id(1),
                Tag { seq: 2, writer: 0 },
                &Mutation::PutFull {
                    data: Bytes::from_static(b"thawed"),
                    mutability: Mutability::Mutable,
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            PcsiError::MutabilityViolation { op: "write", .. }
        ));
        assert_eq!(&e.read(id(1), 0, u64::MAX).unwrap()[..], b"frozen");
    }

    #[test]
    fn tombstone_tag_reported_and_recreate_outranks_it() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 1, b"alive", Mutability::Mutable);
        e.apply(id(1), Tag { seq: 5, writer: 0 }, &Mutation::Delete)
            .unwrap();
        // The delete stays visible to version quorums.
        assert_eq!(e.tag_of(id(1)), Tag { seq: 5, writer: 0 });
        // A recreate ordered after the tombstone takes effect.
        e.apply(
            id(1),
            Tag { seq: 6, writer: 1 },
            &Mutation::PutFull {
                data: Bytes::from_static(b"reborn"),
                mutability: Mutability::Mutable,
            },
        )
        .unwrap();
        assert_eq!(&e.read(id(1), 0, u64::MAX).unwrap()[..], b"reborn");
        assert_eq!(e.tag_of(id(1)), Tag { seq: 6, writer: 1 });
    }

    #[test]
    fn inventory_sorted_and_complete() {
        let mut e = StorageEngine::new(MediaTier::Dram);
        put(&mut e, 3, b"c", Mutability::Mutable);
        put(&mut e, 1, b"a", Mutability::Mutable);
        let inv = e.inventory();
        assert_eq!(inv.len(), 2);
        assert!(inv.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(e.tag_of(id(3)).seq, 1);
        assert_eq!(e.tag_of(id(99)), Tag::ZERO);
    }
}
