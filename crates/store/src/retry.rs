//! Client-side fault recovery policy: deadlines, bounded retries with
//! seeded-jitter backoff, and primary failover.
//!
//! A single dropped message must not fail an operation while a write
//! majority is alive — the provider's job is to hide infrastructure
//! faults behind the interface. The [`RetryPolicy`] bounds how hard the
//! client tries before surfacing an error:
//!
//! * every RPC attempt races a **per-attempt deadline** (surfacing as
//!   [`pcsi_core::PcsiError::Timeout`]);
//! * failed attempts are retried after **exponential backoff** whose
//!   jitter is drawn from the dedicated `"store-retry"` RNG stream, so
//!   the same seed reproduces the same retry schedule;
//! * once the per-target attempt budget is exhausted the client **fails
//!   over** to the next replica in placement order — safe because every
//!   retry carries the same `req_id` and coordinators deduplicate on it;
//! * an overall **operation deadline** bounds the total time spent.
//!
//! All jitter draws happen only when a retry actually sleeps: a healthy
//! run makes zero draws and zero extra awaits, so fault-free latency and
//! determinism fingerprints are unchanged by the default policy.

use std::time::Duration;

use pcsi_sim::rng::DetRng;

/// Name of the RNG stream backoff jitter is drawn from. A dedicated
/// stream keeps retry scheduling from perturbing every other seeded
/// decision in the simulation.
pub const RETRY_RNG_STREAM: &str = "store-retry";

/// Bounds on the client's fault-recovery effort.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Deadline raced against each individual RPC attempt; `None`
    /// disables per-attempt deadlines (the attempt then runs until the
    /// transport itself gives up).
    pub attempt_timeout: Option<Duration>,
    /// Overall budget for one client operation across all attempts and
    /// failovers; `None` disables the overall deadline.
    pub op_deadline: Option<Duration>,
    /// Attempts against each target before failing over (minimum 1).
    pub attempts_per_target: u32,
    /// Whether mutations may fail over to the next replica in placement
    /// order after the per-target budget is exhausted (reads always
    /// retry; this additionally rotates the eventual-read target).
    pub failover: bool,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: the actual sleep is drawn uniformly
    /// from `[d * (1 - jitter), d]` where `d` is the capped exponential
    /// delay.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Generous production defaults: deadlines far above healthy-path
        // latencies (so they never fire outside fault injection), three
        // attempts per target, failover on.
        RetryPolicy {
            attempt_timeout: Some(Duration::from_millis(250)),
            op_deadline: Some(Duration::from_secs(2)),
            attempts_per_target: 3,
            failover: true,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Single-shot policy: no deadline, no retry, no failover. Restores
    /// the pre-recovery behavior for tests that assert on raw transport
    /// failures.
    pub fn none() -> Self {
        RetryPolicy {
            attempt_timeout: None,
            op_deadline: None,
            attempts_per_target: 1,
            failover: false,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Total attempt budget for an operation against `n_targets`
    /// failover candidates.
    pub fn max_attempts(&self, n_targets: usize) -> usize {
        let per = self.attempts_per_target.max(1) as usize;
        if self.failover {
            per * n_targets.max(1)
        } else {
            per
        }
    }

    /// The capped exponential delay before retry number `retry`
    /// (0-based), without jitter.
    pub fn backoff_cap(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }

    /// The jittered sleep before retry number `retry` (0-based), drawn
    /// uniformly from `[cap * (1 - jitter), cap]` using `rng`.
    pub fn backoff(&self, retry: u32, rng: &DetRng) -> Duration {
        let cap = self.backoff_cap(retry);
        if cap.is_zero() || self.jitter <= 0.0 {
            return cap;
        }
        let scale = 1.0 - self.jitter.min(1.0) * rng.f64();
        cap.mul_f64(scale)
    }

    /// Operation budget left after `elapsed` time spent; `None` when no
    /// overall deadline is configured, `Some(ZERO)` when exhausted.
    pub fn remaining_budget(&self, elapsed: Duration) -> Option<Duration> {
        self.op_deadline.map(|b| b.saturating_sub(elapsed))
    }

    /// The deadline to race the next attempt against: the per-attempt
    /// timeout clamped to the remaining operation budget. Without the
    /// clamp, an attempt started just inside the budget could overrun
    /// `op_deadline` by nearly a full `attempt_timeout`.
    pub fn attempt_deadline(&self, remaining: Option<Duration>) -> Option<Duration> {
        match (self.attempt_timeout, remaining) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (Some(a), None) => Some(a),
            (None, r) => r,
        }
    }
}

/// Aggregated fault-recovery counters across all clients of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts re-sent after a retryable failure (failover attempts
    /// included).
    pub retries: u64,
    /// Operations that moved past the first-choice target to another
    /// replica.
    pub failovers: u64,
    /// Attempts abandoned by a deadline (per-attempt or operation-wide).
    pub timeouts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(500),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_cap(0), Duration::from_micros(100));
        assert_eq!(p.backoff_cap(1), Duration::from_micros(200));
        assert_eq!(p.backoff_cap(2), Duration::from_micros(400));
        assert_eq!(p.backoff_cap(3), Duration::from_micros(500));
        assert_eq!(p.backoff_cap(60), Duration::from_micros(500));
    }

    #[test]
    fn jitter_stays_in_range() {
        let p = RetryPolicy {
            base_backoff: Duration::from_micros(1000),
            max_backoff: Duration::from_millis(10),
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let rng = DetRng::seeded(7);
        for retry in 0..8 {
            let cap = p.backoff_cap(retry);
            let lo = cap.mul_f64(1.0 - p.jitter);
            for _ in 0..100 {
                let d = p.backoff(retry, &rng);
                assert!(d >= lo && d <= cap, "{d:?} outside [{lo:?}, {cap:?}]");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let a: Vec<Duration> = {
            let rng = DetRng::seeded(99);
            (0..16).map(|i| p.backoff(i, &rng)).collect()
        };
        let b: Vec<Duration> = {
            let rng = DetRng::seeded(99);
            (0..16).map(|i| p.backoff(i, &rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn none_policy_is_single_shot() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts(3), 1);
        assert_eq!(p.attempt_timeout, None);
        assert_eq!(p.op_deadline, None);
        let rng = DetRng::seeded(0);
        assert_eq!(p.backoff(0, &rng), Duration::ZERO);
    }

    #[test]
    fn attempt_deadline_clamps_to_remaining_budget() {
        let p = RetryPolicy {
            attempt_timeout: Some(Duration::from_millis(250)),
            op_deadline: Some(Duration::from_secs(2)),
            ..RetryPolicy::default()
        };
        // Plenty of budget: the per-attempt timeout governs.
        let rem = p.remaining_budget(Duration::from_millis(100));
        assert_eq!(rem, Some(Duration::from_millis(1900)));
        assert_eq!(p.attempt_deadline(rem), Some(Duration::from_millis(250)));
        // Less budget than one attempt: the remainder governs.
        let rem = p.remaining_budget(Duration::from_millis(1900));
        assert_eq!(p.attempt_deadline(rem), Some(Duration::from_millis(100)));
        // Budget exhausted (or overrun): zero, never negative.
        let rem = p.remaining_budget(Duration::from_secs(5));
        assert_eq!(rem, Some(Duration::ZERO));
        assert_eq!(p.attempt_deadline(rem), Some(Duration::ZERO));
    }

    #[test]
    fn attempt_deadline_without_either_bound() {
        let p = RetryPolicy {
            attempt_timeout: None,
            op_deadline: Some(Duration::from_secs(1)),
            ..RetryPolicy::default()
        };
        // No per-attempt timeout: attempts still race the remaining
        // operation budget.
        let rem = p.remaining_budget(Duration::from_millis(400));
        assert_eq!(p.attempt_deadline(rem), Some(Duration::from_millis(600)));
        let none = RetryPolicy::none();
        assert_eq!(none.remaining_budget(Duration::from_secs(9)), None);
        assert_eq!(none.attempt_deadline(None), None);
    }

    #[test]
    fn attempt_budget_scales_with_failover_targets() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts(3), 9);
        let no_failover = RetryPolicy {
            failover: false,
            ..RetryPolicy::default()
        };
        assert_eq!(no_failover.max_attempts(3), 3);
    }
}
