//! The storage replication protocol codec.
//!
//! Replica traffic is encoded with a compact hand-rolled binary format
//! (fixed-width ids and tags, varint-free u32 lengths) rather than the
//! JSON/HTTP stack — this *is* the "non-REST implementation of existing
//! APIs" the paper says providers need at minimum (§2.1). Keeping it
//! byte-accurate also makes message sizes feed the fabric's bandwidth
//! model honestly.

use std::fmt;

use bytes::{Bytes, BytesMut};
use pcsi_core::{Mutability, ObjectId, PcsiError};
use pcsi_trace::TraceContext;

use crate::engine::{Mutation, StoredObject};
use crate::version::Tag;

/// Requests understood by a replica node.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Client → primary: order and replicate a mutation.
    ///
    /// `sync_replicas` is how many replicas (including the primary) must
    /// have applied the mutation before the primary acknowledges:
    /// majority for linearizable objects, 1 for eventual objects.
    Coordinate {
        /// Target object.
        id: ObjectId,
        /// The mutation to order.
        mutation: Mutation,
        /// Acks required before success is reported.
        sync_replicas: u32,
        /// Store-unique request id. The network is at-least-once (the
        /// fabric can duplicate messages), so the primary deduplicates on
        /// this id and replays the recorded response instead of ordering
        /// the mutation twice.
        req_id: u64,
        /// Absolute virtual-time expiry of this *attempt* in
        /// nanoseconds, or 0 for "never". Set from the client's
        /// per-attempt deadline: past it the client has provably
        /// abandoned the attempt, so the coordinator must not order the
        /// mutation at a fresh tag — a slow coordination that mints
        /// after the client already succeeded through another
        /// coordinator would resurrect the mutation on top of later
        /// acknowledged writes.
        expires_ns: u64,
    },
    /// Primary → secondary: apply an ordered mutation.
    Apply {
        /// Target object.
        id: ObjectId,
        /// Tag assigned by the primary.
        tag: Tag,
        /// The mutation.
        mutation: Mutation,
        /// `req_id` of the coordination that ordered this mutation, or
        /// `0` for internal traffic with no client request behind it.
        /// Secondaries record it so a failed-over retry of the same
        /// client request replays instead of re-ordering.
        req_id: u64,
    },
    /// Read a byte range.
    Read {
        /// Target object.
        id: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Max bytes to return.
        len: u64,
    },
    /// Report the newest tag held for an object (version quorum).
    TagOf {
        /// Target object.
        id: ObjectId,
    },
    /// Fetch the full replica state of an object (anti-entropy pull,
    /// read repair).
    Fetch {
        /// Target object.
        id: ObjectId,
    },
    /// List `(id, tag)` inventory (anti-entropy exchange).
    Inventory,
    /// One-RTT quorum read: report the newest local tag and, when the
    /// requested range fits `inline_limit`, the bytes themselves. A
    /// reply above the limit degrades to [`Response::TagIs`] and the
    /// client falls back to a directed [`Request::Read`].
    ReadWithTag {
        /// Target object.
        id: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Max bytes to return.
        len: u64,
        /// Largest payload the replica may inline into the reply.
        inline_limit: u64,
    },
    /// Install a full object state (read repair push). The receiver
    /// keeps whichever tag is newest, exactly like an anti-entropy pull,
    /// so stale or duplicate pushes are harmless.
    Push {
        /// Target object.
        id: ObjectId,
        /// The state to install.
        object: StoredObject,
        /// The sender's request ledger for the object: `(req_id, tag)`
        /// of every client request contained in `object`'s history.
        /// Installed alongside the state so exactly-once dedup survives
        /// state transfer.
        reqs: Vec<(u64, Tag)>,
    },
    /// Migration driver → new owner: install a frozen object snapshot as
    /// part of a shard move. Semantically a [`Request::Push`] (newest tag
    /// wins, ledger installed alongside), but tagged with the topology
    /// epoch the driver computed the target set under: a receiver on a
    /// different epoch rejects with [`Response::WrongEpoch`] so a stale
    /// driver can never install state under an outdated ring.
    Migrate {
        /// Topology epoch the sender routed under.
        epoch: u64,
        /// Target object.
        id: ObjectId,
        /// The sealed snapshot to install.
        object: StoredObject,
        /// The old owners' request ledger for the object (see
        /// [`Request::Push::reqs`]).
        reqs: Vec<(u64, Tag)>,
        /// The move found a committed delete newer than any live state:
        /// install a tombstone at `object.tag` (whose `data` is empty)
        /// instead of live state, so stale old owners cannot resurrect
        /// the object after the flip.
        tombstone: bool,
    },
}

/// Replies from a replica node.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Mutation ordered and durably applied at the required replicas.
    Coordinated {
        /// The tag the mutation received.
        tag: Tag,
    },
    /// Mutation applied locally.
    Applied,
    /// Read result.
    Data {
        /// Tag of the state served.
        tag: Tag,
        /// Mutability level of the object — lets clients decide whether
        /// the bytes are safe to cache node-locally.
        mutability: Mutability,
        /// Stable-prefix length. The engine keeps this equal to the full
        /// object size after every mutation, so clients can both detect
        /// complete reads and bound append-only prefix caching.
        stable_len: u64,
        /// The bytes.
        data: Bytes,
    },
    /// Tag report.
    TagIs {
        /// Newest local tag ([`Tag::ZERO`] when absent).
        tag: Tag,
    },
    /// Full object state.
    Object {
        /// The replica state.
        object: StoredObject,
        /// The sender's request ledger for the object (see
        /// [`Request::Push::reqs`]). A receiver installing `object` must
        /// install these too, or a later failed-over retry of a request
        /// contained in the state would be re-applied.
        reqs: Vec<(u64, Tag)>,
    },
    /// The object is not present on this replica.
    Absent,
    /// Inventory listing.
    InventoryIs {
        /// Sorted `(id, tag)` pairs.
        entries: Vec<(ObjectId, Tag)>,
    },
    /// The receiver already holds state at least as new as the tag the
    /// sender tried to apply. Not an ack: a coordinator collecting
    /// replication acks must treat this as evidence it ordered at a
    /// stale tag (e.g. a restarted primary that missed failover writes)
    /// and catch up before retrying.
    Stale {
        /// The receiver's newest local tag.
        newest: Tag,
    },
    /// The receiver's current state already contains the request the
    /// sender tried to apply (matched by `req_id` in its ledger), so it
    /// was not applied again. Counts as a replication ack: the peer
    /// provably holds the mutation, exactly once.
    AlreadyApplied {
        /// The tag the receiver recorded the request at (may differ
        /// from the sender's tag after a failover re-order).
        tag: Tag,
    },
    /// The sender's [`Request::Migrate`] carried a topology epoch that
    /// does not match the receiver's ring. The install was refused; the
    /// driver must recompute the target set under the current epoch.
    WrongEpoch {
        /// The receiver's current topology epoch.
        current: u64,
    },
    /// A PCSI-level error.
    Err(WireError),
}

/// Errors carried across the wire with enough structure to reconstruct
/// the interesting [`PcsiError`] variants.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Object unknown.
    NotFound(ObjectId),
    /// Mutation violates the object's mutability level.
    MutabilityViolation {
        /// Target object.
        id: ObjectId,
        /// Current level.
        level: Mutability,
        /// Rejected operation.
        op: String,
    },
    /// Figure-1 transition rejected.
    InvalidTransition {
        /// Current level.
        from: Mutability,
        /// Requested level.
        to: Mutability,
    },
    /// Not enough replicas reachable.
    QuorumUnavailable {
        /// Acks needed.
        needed: u32,
        /// Acks obtained.
        got: u32,
    },
    /// Anything else.
    Other(String),
}

impl WireError {
    /// Converts a [`PcsiError`] for transmission.
    pub fn from_pcsi(e: &PcsiError) -> WireError {
        match e {
            PcsiError::NotFound(id) => WireError::NotFound(*id),
            PcsiError::MutabilityViolation { id, level, op } => WireError::MutabilityViolation {
                id: *id,
                level: *level,
                op: (*op).to_owned(),
            },
            PcsiError::InvalidMutabilityTransition { from, to } => WireError::InvalidTransition {
                from: *from,
                to: *to,
            },
            PcsiError::QuorumUnavailable { needed, got } => WireError::QuorumUnavailable {
                needed: *needed as u32,
                got: *got as u32,
            },
            other => WireError::Other(other.to_string()),
        }
    }

    /// Reconstructs a [`PcsiError`] on the client side.
    pub fn into_pcsi(self) -> PcsiError {
        match self {
            WireError::NotFound(id) => PcsiError::NotFound(id),
            WireError::MutabilityViolation { id, level, op } => PcsiError::MutabilityViolation {
                id,
                level,
                op: leak_op(&op),
            },
            WireError::InvalidTransition { from, to } => {
                PcsiError::InvalidMutabilityTransition { from, to }
            }
            WireError::QuorumUnavailable { needed, got } => PcsiError::QuorumUnavailable {
                needed: needed as usize,
                got: got as usize,
            },
            WireError::Other(msg) => PcsiError::Fault(msg),
        }
    }
}

/// Maps known operation names back to the `'static` strings
/// [`PcsiError::MutabilityViolation`] carries.
fn leak_op(op: &str) -> &'static str {
    match op {
        "write" => "write",
        "append" => "append",
        "resize" => "resize",
        _ => "mutate",
    }
}

/// Codec failure (corrupt or truncated message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage wire codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

// ---- primitive writers/readers ------------------------------------------

struct Writer {
    buf: BytesMut,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: BytesMut::with_capacity(64),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn id(&mut self, id: ObjectId) {
        self.buf.extend_from_slice(&id.as_u128().to_le_bytes());
    }

    fn tag(&mut self, t: Tag) {
        self.u64(t.seq);
        self.u32(t.writer);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    fn reqs(&mut self, reqs: &[(u64, Tag)]) {
        self.u32(reqs.len() as u32);
        for &(req_id, tag) in reqs {
            self.u64(req_id);
            self.tag(tag);
        }
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn mutability(&mut self, m: Mutability) {
        self.u8(match m {
            Mutability::Mutable => 0,
            Mutability::FixedSize => 1,
            Mutability::AppendOnly => 2,
            Mutability::Immutable => 3,
        });
    }

    fn mutation(&mut self, m: &Mutation) {
        match m {
            Mutation::PutFull { data, mutability } => {
                self.u8(0);
                self.mutability(*mutability);
                self.bytes(data);
            }
            Mutation::WriteAt { offset, data } => {
                self.u8(1);
                self.u64(*offset);
                self.bytes(data);
            }
            Mutation::Append { data } => {
                self.u8(2);
                self.bytes(data);
            }
            Mutation::SetMutability { to } => {
                self.u8(3);
                self.mutability(*to);
            }
            Mutation::Delete => self.u8(4),
        }
    }

    fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Borrowing decoder over a received frame.
///
/// Holds the frame as `&Bytes` (not `&[u8]`) so that payload fields can
/// be returned as zero-copy [`Bytes::slice`] views sharing the frame's
/// backing buffer: decoding a 1 MiB `PutFull` moves no payload bytes.
struct Reader<'a> {
    frame: &'a Bytes,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(frame: &'a Bytes) -> Self {
        Reader { frame, pos: 0 }
    }

    fn err(&self, what: &str) -> CodecError {
        CodecError(format!("truncated {what} at offset {}", self.pos))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if self.frame.len() - self.pos < n {
            return Err(self.err(what));
        }
        let s = &self.frame[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    fn id(&mut self) -> Result<ObjectId, CodecError> {
        Ok(ObjectId::from_u128(u128::from_le_bytes(
            self.take(16, "object id")?.try_into().unwrap(),
        )))
    }

    fn tag(&mut self) -> Result<Tag, CodecError> {
        Ok(Tag {
            seq: self.u64()?,
            writer: self.u32()?,
        })
    }

    fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        if self.frame.len() - self.pos < len {
            return Err(self.err("bytes"));
        }
        // Zero-copy: a view into the received frame, not a fresh
        // allocation. The payload keeps the frame's backing buffer
        // alive, which is the right trade in a simulator where frames
        // are dropped as soon as the request completes.
        let view = self.frame.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(view)
    }

    fn reqs(&mut self) -> Result<Vec<(u64, Tag)>, CodecError> {
        let n = self.u32()? as usize;
        let mut reqs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            reqs.push((self.u64()?, self.tag()?));
        }
        Ok(reqs)
    }

    fn str(&mut self) -> Result<String, CodecError> {
        // Straight from the borrowed frame bytes to the owned String —
        // the old path went frame -> Bytes -> Vec -> String, copying
        // the text twice.
        let len = self.u32()? as usize;
        let raw = self.take(len, "string")?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError("bad utf8".into()))
    }

    fn mutability(&mut self) -> Result<Mutability, CodecError> {
        Ok(match self.u8()? {
            0 => Mutability::Mutable,
            1 => Mutability::FixedSize,
            2 => Mutability::AppendOnly,
            3 => Mutability::Immutable,
            b => return Err(CodecError(format!("bad mutability byte {b}"))),
        })
    }

    fn mutation(&mut self) -> Result<Mutation, CodecError> {
        Ok(match self.u8()? {
            0 => {
                let mutability = self.mutability()?;
                Mutation::PutFull {
                    data: self.bytes()?,
                    mutability,
                }
            }
            1 => Mutation::WriteAt {
                offset: self.u64()?,
                data: self.bytes()?,
            },
            2 => Mutation::Append {
                data: self.bytes()?,
            },
            3 => Mutation::SetMutability {
                to: self.mutability()?,
            },
            4 => Mutation::Delete,
            b => return Err(CodecError(format!("bad mutation kind {b}"))),
        })
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.frame.len() {
            Ok(())
        } else {
            Err(CodecError(format!(
                "{} trailing bytes",
                self.frame.len() - self.pos
            )))
        }
    }
}

// ---- request ----

/// Flag byte introducing the optional trailing [`TraceContext`]
/// extension on an encoded request. Exactly one value is valid, so a
/// stray trailing byte still fails decoding.
const TRACE_EXT_FLAG: u8 = 1;

/// Encodes a request.
pub fn encode_request(req: &Request) -> Bytes {
    let mut w = Writer::new();
    write_request(&mut w, req);
    w.finish()
}

/// Encodes a request with an optional trailing trace-context extension:
/// `[flag = 1][trace id u64][parent span u64]`, 17 bytes. Absent
/// context encodes exactly like [`encode_request`], so old-format
/// frames and untraced frames are the same bytes — and a traced frame
/// honestly pays its extra wire bytes in virtual time.
pub fn encode_request_traced(req: &Request, ctx: Option<TraceContext>) -> Bytes {
    let mut w = Writer::new();
    write_request(&mut w, req);
    if let Some(ctx) = ctx {
        w.u8(TRACE_EXT_FLAG);
        w.buf.extend_from_slice(&ctx.encode());
    }
    w.finish()
}

fn write_request(w: &mut Writer, req: &Request) {
    match req {
        Request::Coordinate {
            id,
            mutation,
            sync_replicas,
            req_id,
            expires_ns,
        } => {
            w.u8(0);
            w.id(*id);
            w.u32(*sync_replicas);
            w.u64(*req_id);
            w.u64(*expires_ns);
            w.mutation(mutation);
        }
        Request::Apply {
            id,
            tag,
            mutation,
            req_id,
        } => {
            w.u8(1);
            w.id(*id);
            w.tag(*tag);
            w.u64(*req_id);
            w.mutation(mutation);
        }
        Request::Read { id, offset, len } => {
            w.u8(2);
            w.id(*id);
            w.u64(*offset);
            w.u64(*len);
        }
        Request::TagOf { id } => {
            w.u8(3);
            w.id(*id);
        }
        Request::Fetch { id } => {
            w.u8(4);
            w.id(*id);
        }
        Request::Inventory => w.u8(5),
        Request::ReadWithTag {
            id,
            offset,
            len,
            inline_limit,
        } => {
            w.u8(6);
            w.id(*id);
            w.u64(*offset);
            w.u64(*len);
            w.u64(*inline_limit);
        }
        Request::Push { id, object, reqs } => {
            w.u8(7);
            w.id(*id);
            w.tag(object.tag);
            w.mutability(object.mutability);
            w.u64(object.stable_len);
            w.bytes(&object.data);
            w.reqs(reqs);
        }
        Request::Migrate {
            epoch,
            id,
            object,
            reqs,
            tombstone,
        } => {
            w.u8(8);
            w.u64(*epoch);
            w.u8(u8::from(*tombstone));
            w.id(*id);
            w.tag(object.tag);
            w.mutability(object.mutability);
            w.u64(object.stable_len);
            w.bytes(&object.data);
            w.reqs(reqs);
        }
    }
}

/// Decodes a request. Payload fields come back as zero-copy views of
/// `buf`'s backing buffer.
pub fn decode_request(buf: &Bytes) -> Result<Request, CodecError> {
    let mut r = Reader::new(buf);
    let req = read_request(&mut r)?;
    r.done()?;
    Ok(req)
}

/// Decodes a request plus its optional trailing trace context. Frames
/// without the extension (including every pre-extension frame) decode
/// with `None`; a present extension must be exactly
/// `[1][16 context bytes]` or the frame is rejected.
pub fn decode_request_traced(buf: &Bytes) -> Result<(Request, Option<TraceContext>), CodecError> {
    let mut r = Reader::new(buf);
    let req = read_request(&mut r)?;
    if r.pos == r.frame.len() {
        return Ok((req, None));
    }
    match r.u8()? {
        TRACE_EXT_FLAG => {}
        b => return Err(CodecError(format!("bad trace extension flag {b}"))),
    }
    let raw = r.take(TraceContext::WIRE_LEN, "trace context")?;
    let ctx =
        TraceContext::decode(raw).ok_or_else(|| CodecError("short trace extension".to_string()))?;
    r.done()?;
    Ok((req, Some(ctx)))
}

fn read_request(r: &mut Reader) -> Result<Request, CodecError> {
    let req = match r.u8()? {
        0 => {
            let id = r.id()?;
            let sync_replicas = r.u32()?;
            let req_id = r.u64()?;
            let expires_ns = r.u64()?;
            Request::Coordinate {
                id,
                mutation: r.mutation()?,
                sync_replicas,
                req_id,
                expires_ns,
            }
        }
        1 => Request::Apply {
            id: r.id()?,
            tag: r.tag()?,
            req_id: r.u64()?,
            mutation: r.mutation()?,
        },
        2 => Request::Read {
            id: r.id()?,
            offset: r.u64()?,
            len: r.u64()?,
        },
        3 => Request::TagOf { id: r.id()? },
        4 => Request::Fetch { id: r.id()? },
        5 => Request::Inventory,
        6 => Request::ReadWithTag {
            id: r.id()?,
            offset: r.u64()?,
            len: r.u64()?,
            inline_limit: r.u64()?,
        },
        7 => {
            let id = r.id()?;
            let tag = r.tag()?;
            let mutability = r.mutability()?;
            let stable_len = r.u64()?;
            let data = r.bytes()?;
            let reqs = r.reqs()?;
            Request::Push {
                id,
                object: StoredObject {
                    data,
                    tag,
                    mutability,
                    stable_len,
                },
                reqs,
            }
        }
        8 => {
            let epoch = r.u64()?;
            let tombstone = match r.u8()? {
                0 => false,
                1 => true,
                b => return Err(CodecError(format!("bad tombstone flag {b}"))),
            };
            let id = r.id()?;
            let tag = r.tag()?;
            let mutability = r.mutability()?;
            let stable_len = r.u64()?;
            let data = r.bytes()?;
            let reqs = r.reqs()?;
            Request::Migrate {
                epoch,
                id,
                object: StoredObject {
                    data,
                    tag,
                    mutability,
                    stable_len,
                },
                reqs,
                tombstone,
            }
        }
        b => return Err(CodecError(format!("bad request op {b}"))),
    };
    Ok(req)
}

// ---- response ----

/// Encodes a response.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut w = Writer::new();
    match resp {
        Response::Coordinated { tag } => {
            w.u8(0);
            w.tag(*tag);
        }
        Response::Applied => w.u8(1),
        Response::Data {
            tag,
            mutability,
            stable_len,
            data,
        } => {
            w.u8(2);
            w.tag(*tag);
            w.mutability(*mutability);
            w.u64(*stable_len);
            w.bytes(data);
        }
        Response::TagIs { tag } => {
            w.u8(3);
            w.tag(*tag);
        }
        Response::Object { object, reqs } => {
            w.u8(4);
            w.tag(object.tag);
            w.mutability(object.mutability);
            w.u64(object.stable_len);
            w.bytes(&object.data);
            w.reqs(reqs);
        }
        Response::Absent => w.u8(5),
        Response::InventoryIs { entries } => {
            w.u8(6);
            w.u32(entries.len() as u32);
            for (id, tag) in entries {
                w.id(*id);
                w.tag(*tag);
            }
        }
        Response::Stale { newest } => {
            w.u8(8);
            w.tag(*newest);
        }
        Response::AlreadyApplied { tag } => {
            w.u8(9);
            w.tag(*tag);
        }
        Response::WrongEpoch { current } => {
            w.u8(10);
            w.u64(*current);
        }
        Response::Err(e) => {
            w.u8(7);
            write_wire_error(&mut w, e);
        }
    }
    w.finish()
}

fn write_wire_error(w: &mut Writer, e: &WireError) {
    match e {
        WireError::NotFound(id) => {
            w.u8(0);
            w.id(*id);
        }
        WireError::MutabilityViolation { id, level, op } => {
            w.u8(1);
            w.id(*id);
            w.mutability(*level);
            w.str(op);
        }
        WireError::InvalidTransition { from, to } => {
            w.u8(2);
            w.mutability(*from);
            w.mutability(*to);
        }
        WireError::QuorumUnavailable { needed, got } => {
            w.u8(3);
            w.u32(*needed);
            w.u32(*got);
        }
        WireError::Other(msg) => {
            w.u8(4);
            w.str(msg);
        }
    }
}

fn read_wire_error(r: &mut Reader) -> Result<WireError, CodecError> {
    Ok(match r.u8()? {
        0 => WireError::NotFound(r.id()?),
        1 => WireError::MutabilityViolation {
            id: r.id()?,
            level: r.mutability()?,
            op: r.str()?,
        },
        2 => WireError::InvalidTransition {
            from: r.mutability()?,
            to: r.mutability()?,
        },
        3 => WireError::QuorumUnavailable {
            needed: r.u32()?,
            got: r.u32()?,
        },
        4 => WireError::Other(r.str()?),
        b => return Err(CodecError(format!("bad error code {b}"))),
    })
}

/// Decodes a response. Payload fields come back as zero-copy views of
/// `buf`'s backing buffer.
pub fn decode_response(buf: &Bytes) -> Result<Response, CodecError> {
    let mut r = Reader::new(buf);
    let resp = match r.u8()? {
        0 => Response::Coordinated { tag: r.tag()? },
        1 => Response::Applied,
        2 => Response::Data {
            tag: r.tag()?,
            mutability: r.mutability()?,
            stable_len: r.u64()?,
            data: r.bytes()?,
        },
        3 => Response::TagIs { tag: r.tag()? },
        4 => {
            let tag = r.tag()?;
            let mutability = r.mutability()?;
            let stable_len = r.u64()?;
            let data = r.bytes()?;
            let reqs = r.reqs()?;
            Response::Object {
                object: StoredObject {
                    data,
                    tag,
                    mutability,
                    stable_len,
                },
                reqs,
            }
        }
        5 => Response::Absent,
        6 => {
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                entries.push((r.id()?, r.tag()?));
            }
            Response::InventoryIs { entries }
        }
        7 => Response::Err(read_wire_error(&mut r)?),
        8 => Response::Stale { newest: r.tag()? },
        9 => Response::AlreadyApplied { tag: r.tag()? },
        10 => Response::WrongEpoch { current: r.u64()? },
        b => return Err(CodecError(format!("bad response op {b}"))),
    };
    r.done()?;
    Ok(resp)
}

// ---- streaming subscription frames --------------------------------------

/// Why a subscription ended, carried in [`StreamFrame::Close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The subscriber cancelled voluntarily.
    Cancelled,
    /// The streamed object was closed or deleted at the owner.
    ObjectClosed,
    /// The owner gave up on an unreachable subscriber.
    SubscriberLost,
}

/// Frames of the cross-node subscription protocol (PCSI streaming).
///
/// These share the store codec's writer/reader (and therefore the
/// pooled `BytesMut` buffers and zero-copy payload views) but travel on
/// their own fabric services, so their op-code space is independent of
/// [`Request`]/[`Response`].
///
/// [`StreamFrame::Push`] deliberately does **not** carry a subscription
/// id: per-subscription routing rides the fabric service name, so one
/// encoded push frame is byte-identical for every subscriber of the
/// same event and fan-out is `Bytes::clone` per peer, not re-encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// Consumer → owner: open a subscription on a FIFO/socket object.
    Subscribe {
        /// The streamed object.
        id: ObjectId,
        /// Subscription id, allocated by the consumer (unique per
        /// consumer node).
        sub: u64,
        /// Initial credit window: the owner may push this many frames
        /// before stalling for a [`StreamFrame::Grant`].
        window: u32,
    },
    /// Consumer → owner: report consumption, replenishing credits.
    ///
    /// Carries the **cumulative** consumed count rather than an
    /// increment, so a grant retransmitted after a dropped reply (or
    /// fault-duplicated in flight) is idempotent: the owner takes the
    /// max, and credits can never inflate past what the consumer
    /// actually drained. Incremental grants double-apply under exactly
    /// those faults and let the owner overrun the consumer's buffer.
    Grant {
        /// Target subscription.
        sub: u64,
        /// Total frames the consumer has consumed since subscribing.
        consumed: u64,
    },
    /// Owner → consumer: one streamed event.
    Push {
        /// Event sequence number (contiguous per subscription).
        seq: u64,
        /// Virtual-time nanoseconds when the producer appended the
        /// event — the consumer derives per-frame latency from it.
        ts_ns: u64,
        /// The event payload.
        payload: Bytes,
    },
    /// Either direction: the subscription is over.
    Close {
        /// Target subscription.
        sub: u64,
        /// Why it ended.
        reason: CloseReason,
    },
}

/// Acknowledgement for subscribe/grant/push/close deliveries.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamReply {
    /// Accepted.
    Ok,
    /// Rejected (unknown object, wrong kind, unknown subscription...).
    Err(WireError),
}

/// Encodes a stream frame.
pub fn encode_stream_frame(frame: &StreamFrame) -> Bytes {
    let mut w = Writer::new();
    match frame {
        StreamFrame::Subscribe { id, sub, window } => {
            w.u8(0);
            w.id(*id);
            w.u64(*sub);
            w.u32(*window);
        }
        StreamFrame::Grant { sub, consumed } => {
            w.u8(1);
            w.u64(*sub);
            w.u64(*consumed);
        }
        StreamFrame::Push {
            seq,
            ts_ns,
            payload,
        } => {
            w.u8(2);
            w.u64(*seq);
            w.u64(*ts_ns);
            w.bytes(payload);
        }
        StreamFrame::Close { sub, reason } => {
            w.u8(3);
            w.u64(*sub);
            w.u8(match reason {
                CloseReason::Cancelled => 0,
                CloseReason::ObjectClosed => 1,
                CloseReason::SubscriberLost => 2,
            });
        }
    }
    w.finish()
}

/// Decodes a stream frame. The push payload comes back as a zero-copy
/// view of `buf`'s backing buffer.
pub fn decode_stream_frame(buf: &Bytes) -> Result<StreamFrame, CodecError> {
    let mut r = Reader::new(buf);
    let frame = match r.u8()? {
        0 => StreamFrame::Subscribe {
            id: r.id()?,
            sub: r.u64()?,
            window: r.u32()?,
        },
        1 => StreamFrame::Grant {
            sub: r.u64()?,
            consumed: r.u64()?,
        },
        2 => StreamFrame::Push {
            seq: r.u64()?,
            ts_ns: r.u64()?,
            payload: r.bytes()?,
        },
        3 => StreamFrame::Close {
            sub: r.u64()?,
            reason: match r.u8()? {
                0 => CloseReason::Cancelled,
                1 => CloseReason::ObjectClosed,
                2 => CloseReason::SubscriberLost,
                b => return Err(CodecError(format!("bad close reason {b}"))),
            },
        },
        b => return Err(CodecError(format!("bad stream frame op {b}"))),
    };
    r.done()?;
    Ok(frame)
}

/// Encodes a stream reply.
pub fn encode_stream_reply(reply: &StreamReply) -> Bytes {
    let mut w = Writer::new();
    match reply {
        StreamReply::Ok => w.u8(0),
        StreamReply::Err(e) => {
            w.u8(1);
            write_wire_error(&mut w, e);
        }
    }
    w.finish()
}

/// Decodes a stream reply.
pub fn decode_stream_reply(buf: &Bytes) -> Result<StreamReply, CodecError> {
    let mut r = Reader::new(buf);
    let reply = match r.u8()? {
        0 => StreamReply::Ok,
        1 => StreamReply::Err(read_wire_error(&mut r)?),
        b => return Err(CodecError(format!("bad stream reply op {b}"))),
    };
    r.done()?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(2, n)
    }

    #[test]
    fn traced_requests_roundtrip_and_untraced_frames_still_decode() {
        use pcsi_trace::{SpanId, TraceId};

        let req = Request::Read {
            id: oid(7),
            offset: 8,
            len: 16,
        };
        let ctx = TraceContext {
            trace: TraceId(0xDEAD_BEEF),
            parent: SpanId(0x1234_5678),
        };

        // Traced frame round-trips both halves.
        let traced = encode_request_traced(&req, Some(ctx));
        assert_eq!(
            traced.len(),
            encode_request(&req).len() + 1 + TraceContext::WIRE_LEN
        );
        assert_eq!(
            decode_request_traced(&traced).unwrap(),
            (req.clone(), Some(ctx))
        );

        // Untraced encoding is byte-identical to the pre-extension
        // format, and both decoders accept it.
        let plain = encode_request_traced(&req, None);
        assert_eq!(plain, encode_request(&req));
        assert_eq!(decode_request_traced(&plain).unwrap(), (req.clone(), None));
        assert_eq!(decode_request(&plain).unwrap(), req);

        // The strict decoder rejects the extension as trailing bytes.
        assert!(decode_request(&traced).is_err());

        // A bad flag byte or short context is rejected.
        let mut bad_flag = plain.to_vec();
        bad_flag.push(2);
        assert!(decode_request_traced(&Bytes::from(bad_flag)).is_err());
        let mut short = plain.to_vec();
        short.extend_from_slice(&[TRACE_EXT_FLAG, 0, 0, 0]);
        assert!(decode_request_traced(&Bytes::from(short)).is_err());
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Coordinate {
                id: oid(1),
                mutation: Mutation::PutFull {
                    data: Bytes::from_static(b"hello"),
                    mutability: Mutability::AppendOnly,
                },
                sync_replicas: 2,
                req_id: 1,
                expires_ns: 0,
            },
            Request::Apply {
                id: oid(2),
                tag: Tag { seq: 9, writer: 3 },
                mutation: Mutation::WriteAt {
                    offset: 4,
                    data: Bytes::from_static(b"x"),
                },
                req_id: 42,
            },
            Request::Read {
                id: oid(3),
                offset: 0,
                len: 1024,
            },
            Request::TagOf { id: oid(4) },
            Request::Fetch { id: oid(5) },
            Request::Inventory,
            Request::Coordinate {
                id: oid(6),
                mutation: Mutation::Delete,
                sync_replicas: 3,
                req_id: u64::MAX,
                expires_ns: u64::MAX,
            },
            Request::Apply {
                id: oid(7),
                tag: Tag { seq: 1, writer: 0 },
                mutation: Mutation::SetMutability {
                    to: Mutability::Immutable,
                },
                req_id: 0,
            },
            Request::Apply {
                id: oid(8),
                tag: Tag { seq: 2, writer: 1 },
                mutation: Mutation::Append {
                    data: Bytes::from_static(b"entry"),
                },
                req_id: u64::MAX,
            },
            Request::ReadWithTag {
                id: oid(9),
                offset: 16,
                len: u64::MAX,
                inline_limit: 64 * 1024,
            },
            Request::Push {
                id: oid(10),
                object: StoredObject {
                    data: Bytes::from_static(b"repaired"),
                    tag: Tag { seq: 11, writer: 2 },
                    mutability: Mutability::AppendOnly,
                    stable_len: 8,
                },
                reqs: vec![
                    (7, Tag { seq: 10, writer: 1 }),
                    (9, Tag { seq: 11, writer: 2 }),
                ],
            },
            Request::Push {
                id: oid(11),
                object: StoredObject {
                    data: Bytes::new(),
                    tag: Tag { seq: 1, writer: 0 },
                    mutability: Mutability::Mutable,
                    stable_len: 0,
                },
                reqs: vec![],
            },
        ];
        for req in reqs {
            let wire = encode_request(&req);
            assert_eq!(decode_request(&wire).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Coordinated {
                tag: Tag { seq: 7, writer: 1 },
            },
            Response::Applied,
            Response::Data {
                tag: Tag { seq: 1, writer: 2 },
                mutability: Mutability::Immutable,
                stable_len: 8,
                data: Bytes::from_static(b"\x00\x01binary"),
            },
            Response::TagIs { tag: Tag::ZERO },
            Response::Object {
                object: StoredObject {
                    data: Bytes::from_static(b"state"),
                    tag: Tag { seq: 3, writer: 1 },
                    mutability: Mutability::FixedSize,
                    stable_len: 5,
                },
                reqs: vec![(3, Tag { seq: 3, writer: 1 })],
            },
            Response::Absent,
            Response::InventoryIs {
                entries: vec![
                    (oid(1), Tag { seq: 1, writer: 0 }),
                    (oid(2), Tag { seq: 4, writer: 2 }),
                ],
            },
            Response::Err(WireError::NotFound(oid(9))),
            Response::Err(WireError::MutabilityViolation {
                id: oid(10),
                level: Mutability::Immutable,
                op: "write".into(),
            }),
            Response::Err(WireError::InvalidTransition {
                from: Mutability::Immutable,
                to: Mutability::Mutable,
            }),
            Response::Err(WireError::QuorumUnavailable { needed: 2, got: 1 }),
            Response::Err(WireError::Other("boom".into())),
            Response::Stale {
                newest: Tag { seq: 12, writer: 4 },
            },
            Response::AlreadyApplied {
                tag: Tag { seq: 6, writer: 2 },
            },
        ];
        for resp in resps {
            let wire = encode_response(&resp);
            assert_eq!(decode_response(&wire).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn truncation_detected() {
        let reqs = [
            Request::Read {
                id: oid(1),
                offset: 5,
                len: 10,
            },
            Request::ReadWithTag {
                id: oid(1),
                offset: 5,
                len: 10,
                inline_limit: 100,
            },
            Request::Push {
                id: oid(2),
                object: StoredObject {
                    data: Bytes::from_static(b"abc"),
                    tag: Tag { seq: 4, writer: 1 },
                    mutability: Mutability::Mutable,
                    stable_len: 3,
                },
                reqs: vec![(5, Tag { seq: 4, writer: 1 })],
            },
        ];
        for req in &reqs {
            let wire = encode_request(req);
            for cut in 0..wire.len() {
                assert!(
                    decode_request(&wire.slice(..cut)).is_err(),
                    "{req:?} cut {cut}"
                );
            }
        }
        let resps = [
            encode_response(&Response::Data {
                tag: Tag { seq: 4, writer: 1 },
                mutability: Mutability::AppendOnly,
                stable_len: 3,
                data: Bytes::from_static(b"abc"),
            }),
            encode_response(&Response::Stale {
                newest: Tag { seq: 4, writer: 1 },
            }),
        ];
        for resp in &resps {
            for cut in 0..resp.len() {
                assert!(
                    decode_response(&resp.slice(..cut)).is_err(),
                    "response cut {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut wire = encode_request(&Request::Inventory).to_vec();
        wire.push(0);
        assert!(decode_request(&Bytes::from(wire)).is_err());
    }

    #[test]
    fn pcsi_error_conversion_roundtrip() {
        let errors = vec![
            PcsiError::NotFound(oid(1)),
            PcsiError::MutabilityViolation {
                id: oid(2),
                level: Mutability::AppendOnly,
                op: "write",
            },
            PcsiError::InvalidMutabilityTransition {
                from: Mutability::FixedSize,
                to: Mutability::AppendOnly,
            },
            PcsiError::QuorumUnavailable { needed: 3, got: 1 },
        ];
        for e in errors {
            let back = WireError::from_pcsi(&e).into_pcsi();
            assert_eq!(back, e, "{e:?}");
        }
        // Unstructured errors degrade to Fault with the message preserved.
        let misc = PcsiError::Timeout;
        assert_eq!(
            WireError::from_pcsi(&misc).into_pcsi(),
            PcsiError::Fault("operation timed out".into())
        );
    }

    #[test]
    fn bad_bytes_rejected() {
        assert!(decode_request(&Bytes::from_static(&[99])).is_err());
        assert!(decode_response(&Bytes::from_static(&[99])).is_err());
        assert!(decode_response(&Bytes::new()).is_err());
    }

    #[test]
    fn stream_frames_roundtrip() {
        let frames = vec![
            StreamFrame::Subscribe {
                id: oid(7),
                sub: 0x0001_0000_0000_002a,
                window: 16,
            },
            StreamFrame::Grant {
                sub: 9,
                consumed: 8,
            },
            StreamFrame::Push {
                seq: 41,
                ts_ns: 123_456_789,
                payload: Bytes::from_static(b"2026-08-08 event"),
            },
            StreamFrame::Push {
                seq: 0,
                ts_ns: 0,
                payload: Bytes::new(),
            },
            StreamFrame::Close {
                sub: 9,
                reason: CloseReason::Cancelled,
            },
            StreamFrame::Close {
                sub: 10,
                reason: CloseReason::ObjectClosed,
            },
            StreamFrame::Close {
                sub: 11,
                reason: CloseReason::SubscriberLost,
            },
        ];
        for f in frames {
            let wire = encode_stream_frame(&f);
            assert_eq!(decode_stream_frame(&wire).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn stream_replies_roundtrip() {
        let replies = vec![
            StreamReply::Ok,
            StreamReply::Err(WireError::NotFound(oid(3))),
            StreamReply::Err(WireError::Other("no such subscription".into())),
        ];
        for rep in replies {
            let wire = encode_stream_reply(&rep);
            assert_eq!(decode_stream_reply(&wire).unwrap(), rep, "{rep:?}");
        }
    }

    #[test]
    fn stream_frame_truncation_detected() {
        let frames = vec![
            StreamFrame::Subscribe {
                id: oid(7),
                sub: 1,
                window: 4,
            },
            StreamFrame::Push {
                seq: 2,
                ts_ns: 3,
                payload: Bytes::from_static(b"payload"),
            },
            StreamFrame::Close {
                sub: 1,
                reason: CloseReason::SubscriberLost,
            },
        ];
        for f in frames {
            let wire = encode_stream_frame(&f);
            for cut in 0..wire.len() {
                assert!(
                    decode_stream_frame(&wire.slice(..cut)).is_err(),
                    "{f:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn stream_frame_junk_rejected() {
        // Unknown frame op.
        assert!(decode_stream_frame(&Bytes::from_static(&[99])).is_err());
        // Unknown close reason.
        let mut close = encode_stream_frame(&StreamFrame::Close {
            sub: 1,
            reason: CloseReason::Cancelled,
        })
        .to_vec();
        *close.last_mut().unwrap() = 77;
        assert!(decode_stream_frame(&Bytes::from(close)).is_err());
        // Trailing bytes.
        let mut wire = encode_stream_frame(&StreamFrame::Grant {
            sub: 1,
            consumed: 1,
        })
        .to_vec();
        wire.push(0);
        assert!(decode_stream_frame(&Bytes::from(wire)).is_err());
        // Replies: bad op and trailing bytes.
        assert!(decode_stream_reply(&Bytes::from_static(&[9])).is_err());
        let mut rep = encode_stream_reply(&StreamReply::Ok).to_vec();
        rep.push(0);
        assert!(decode_stream_reply(&Bytes::from(rep)).is_err());
    }

    #[test]
    fn push_payload_is_zero_copy() {
        let wire = encode_stream_frame(&StreamFrame::Push {
            seq: 1,
            ts_ns: 2,
            payload: Bytes::from_static(b"shared-view"),
        });
        let StreamFrame::Push { payload, .. } = decode_stream_frame(&wire).unwrap() else {
            panic!("wrong frame");
        };
        // The decoded payload must view the wire buffer, not copy it.
        let wire_ptr = wire.as_ptr() as usize;
        let payload_ptr = payload.as_ptr() as usize;
        assert!(payload_ptr >= wire_ptr && payload_ptr < wire_ptr + wire.len());
    }
}
