//! The client-facing replicated store.
//!
//! [`ReplicatedStore`] launches one [`ReplicaNode`] per storage node and
//! hands out per-origin [`StoreClient`]s. A client maps the PCSI
//! consistency menu onto the replication machinery:
//!
//! | operation            | `Linearizable`                        | `Eventual`              |
//! |----------------------|---------------------------------------|-------------------------|
//! | mutation             | primary + sync majority               | primary only, async rest|
//! | read                 | majority tag quorum, read from newest | closest replica         |
//!
//! Mutations always pass through the object's primary, which gives every
//! object a total mutation order regardless of consistency level (the
//! menu controls *acknowledgement* and *read* behaviour, not ordering).

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::{Consistency, Mutability, ObjectId, PcsiError};
use pcsi_net::fabric::NetError;
use pcsi_net::{Fabric, NodeId};
use pcsi_sim::sync::mpsc;

use crate::engine::{MediaTier, Mutation};
use crate::placement::Placement;
use crate::replica::{ReplicaNode, STORE_SERVICE, STORE_TRANSPORT};
use crate::version::Tag;
use crate::wire::{self, Request, Response};

/// Store deployment configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Copies per object.
    pub n_replicas: usize,
    /// Media tier of every replica engine.
    pub tier: MediaTier,
    /// Anti-entropy period; `None` disables the background task (tests
    /// drive rounds manually).
    pub anti_entropy: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            n_replicas: 3,
            tier: MediaTier::Nvme,
            anti_entropy: Some(Duration::from_millis(100)),
        }
    }
}

/// The deployed storage system.
#[derive(Clone)]
pub struct ReplicatedStore {
    inner: Rc<StoreInner>,
}

struct StoreInner {
    fabric: Fabric,
    placement: Placement,
    replicas: Vec<ReplicaNode>,
}

impl ReplicatedStore {
    /// Launches replicas on `storage_nodes` and returns the store.
    pub fn launch(fabric: Fabric, storage_nodes: Vec<NodeId>, config: StoreConfig) -> Self {
        let placement = Placement::new(fabric.topology(), storage_nodes.clone(), config.n_replicas);
        let replicas: Vec<ReplicaNode> = storage_nodes
            .iter()
            .map(|&node| ReplicaNode::start(fabric.clone(), placement.clone(), node, config.tier))
            .collect();
        if let Some(interval) = config.anti_entropy {
            for r in &replicas {
                r.start_anti_entropy(interval);
            }
        }
        ReplicatedStore {
            inner: Rc::new(StoreInner {
                fabric,
                placement,
                replicas,
            }),
        }
    }

    /// The placement function in force.
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// The replica running on `node`, if it is a storage node.
    pub fn replica_on(&self, node: NodeId) -> Option<&ReplicaNode> {
        self.inner.replicas.iter().find(|r| r.node() == node)
    }

    /// All replicas (GC sweeps, tests).
    pub fn replicas(&self) -> &[ReplicaNode] {
        &self.inner.replicas
    }

    /// A client whose operations originate from `node`.
    pub fn client(&self, node: NodeId) -> StoreClient {
        StoreClient {
            store: self.clone(),
            origin: node,
        }
    }
}

/// A store client bound to an origin node (the node whose network position
/// the operations are charged from).
#[derive(Clone)]
pub struct StoreClient {
    store: ReplicatedStore,
    origin: NodeId,
}

impl StoreClient {
    /// The origin node.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Creates or replaces an object.
    pub async fn put(
        &self,
        id: ObjectId,
        data: Bytes,
        mutability: Mutability,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::PutFull { data, mutability }, consistency)
            .await
    }

    /// Overwrites a byte range.
    pub async fn write_at(
        &self,
        id: ObjectId,
        offset: u64,
        data: Bytes,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::WriteAt { offset, data }, consistency)
            .await
    }

    /// Appends bytes.
    pub async fn append(
        &self,
        id: ObjectId,
        data: Bytes,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::Append { data }, consistency)
            .await
    }

    /// Applies a mutability transition.
    pub async fn set_mutability(
        &self,
        id: ObjectId,
        to: Mutability,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::SetMutability { to }, consistency)
            .await
    }

    /// Deletes an object. Deletes are always replicated synchronously to
    /// the full replica set that is reachable (tombstones guard the rest).
    pub async fn delete(&self, id: ObjectId) -> Result<Tag, PcsiError> {
        let n = self.store.placement().replication_factor() as u32;
        self.mutate_with_acks(id, Mutation::Delete, n).await
    }

    /// Routes a mutation through the object's primary.
    pub async fn mutate(
        &self,
        id: ObjectId,
        mutation: Mutation,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        let acks = match consistency {
            Consistency::Linearizable => self.store.placement().majority() as u32,
            Consistency::Eventual => 1,
        };
        self.mutate_with_acks(id, mutation, acks).await
    }

    async fn mutate_with_acks(
        &self,
        id: ObjectId,
        mutation: Mutation,
        sync_replicas: u32,
    ) -> Result<Tag, PcsiError> {
        let primary = self.store.placement().primary(id);
        let req = wire::encode_request(&Request::Coordinate {
            id,
            mutation,
            sync_replicas,
        });
        let raw = self
            .store
            .inner
            .fabric
            .call(self.origin, primary, STORE_SERVICE, STORE_TRANSPORT, req)
            .await
            .map_err(net_to_pcsi)?;
        match wire::decode_response(&raw) {
            Ok(Response::Coordinated { tag }) => Ok(tag),
            Ok(Response::Err(e)) => Err(e.into_pcsi()),
            Ok(other) => Err(PcsiError::Fault(format!("unexpected response {other:?}"))),
            Err(e) => Err(PcsiError::BadPayload(e.to_string())),
        }
    }

    /// Reads a byte range at the requested consistency level.
    ///
    /// Returns the served `(tag, data)`; the tag lets callers measure
    /// staleness (experiment E7).
    pub async fn read(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        consistency: Consistency,
    ) -> Result<(Tag, Bytes), PcsiError> {
        match consistency {
            Consistency::Eventual => {
                let replica = self.store.placement().closest_replica(
                    self.store.inner.fabric.topology(),
                    id,
                    self.origin,
                );
                self.read_from(replica, id, offset, len).await
            }
            Consistency::Linearizable => {
                let (newest_node, _tag) = self.tag_quorum(id).await?;
                self.read_from(newest_node, id, offset, len).await
            }
        }
    }

    /// Queries all replicas for their tag, waits for a majority, and
    /// returns the node holding the newest tag (and that tag).
    async fn tag_quorum(&self, id: ObjectId) -> Result<(NodeId, Tag), PcsiError> {
        let replicas = self.store.placement().replicas(id);
        let need = self.store.placement().majority();
        let total = replicas.len();
        let (tx, mut rx) = mpsc::channel::<Option<(NodeId, Tag)>>();
        for node in replicas {
            let tx = tx.clone();
            let fabric = self.store.inner.fabric.clone();
            let origin = self.origin;
            let req = wire::encode_request(&Request::TagOf { id });
            self.store.inner.fabric.handle().spawn(async move {
                let outcome = async {
                    let raw = fabric
                        .call(origin, node, STORE_SERVICE, STORE_TRANSPORT, req)
                        .await
                        .ok()?;
                    match wire::decode_response(&raw) {
                        Ok(Response::TagIs { tag }) => Some((node, tag)),
                        _ => None,
                    }
                }
                .await;
                let _ = tx.send(outcome);
            });
        }
        drop(tx);

        let mut best: Option<(NodeId, Tag)> = None;
        let mut ok = 0usize;
        let mut failed = 0usize;
        while ok < need {
            match rx.recv().await {
                Some(Some((node, tag))) => {
                    ok += 1;
                    if best.map(|(_, t)| tag > t).unwrap_or(true) {
                        best = Some((node, tag));
                    }
                }
                Some(None) => {
                    failed += 1;
                    if total - failed < need {
                        return Err(PcsiError::QuorumUnavailable {
                            needed: need,
                            got: ok,
                        });
                    }
                }
                None => {
                    return Err(PcsiError::QuorumUnavailable {
                        needed: need,
                        got: ok,
                    })
                }
            }
        }
        let (node, tag) = best.expect("quorum met implies at least one response");
        if tag == Tag::ZERO {
            return Err(PcsiError::NotFound(id));
        }
        Ok((node, tag))
    }

    async fn read_from(
        &self,
        replica: NodeId,
        id: ObjectId,
        offset: u64,
        len: u64,
    ) -> Result<(Tag, Bytes), PcsiError> {
        let req = wire::encode_request(&Request::Read { id, offset, len });
        let raw = self
            .store
            .inner
            .fabric
            .call(self.origin, replica, STORE_SERVICE, STORE_TRANSPORT, req)
            .await
            .map_err(net_to_pcsi)?;
        match wire::decode_response(&raw) {
            Ok(Response::Data { tag, data }) => Ok((tag, data)),
            Ok(Response::Err(e)) => Err(e.into_pcsi()),
            Ok(other) => Err(PcsiError::Fault(format!("unexpected response {other:?}"))),
            Err(e) => Err(PcsiError::BadPayload(e.to_string())),
        }
    }

    /// Fetches the whole object at the requested consistency.
    pub async fn read_all(
        &self,
        id: ObjectId,
        consistency: Consistency,
    ) -> Result<(Tag, Bytes), PcsiError> {
        self.read(id, 0, u64::MAX, consistency).await
    }
}

fn net_to_pcsi(e: NetError) -> PcsiError {
    match e {
        NetError::NodeDown(_) | NetError::Partitioned(_, _) => {
            PcsiError::QuorumUnavailable { needed: 1, got: 0 }
        }
        other => PcsiError::Fault(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcsi_net::{LatencyModel, NetworkGeneration, Topology};
    use pcsi_sim::Sim;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(5, n)
    }

    /// Builds a 9-node cluster (3 racks x 3) with a 3-replica store.
    fn deploy(sim: &Sim, anti_entropy: bool) -> (Fabric, ReplicatedStore) {
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: if anti_entropy {
                    Some(Duration::from_millis(50))
                } else {
                    None
                },
            },
        );
        (fabric, store)
    }

    #[test]
    fn put_then_linearizable_read_roundtrips() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        let out = sim.block_on(async move {
            let c = store.client(NodeId(0));
            c.put(
                oid(1),
                Bytes::from_static(b"hello"),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            c.read_all(oid(1), Consistency::Linearizable).await.unwrap()
        });
        assert_eq!(&out.1[..], b"hello");
        assert_eq!(out.0.seq, 1);
    }

    #[test]
    fn linearizable_read_sees_latest_write_from_any_node() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        sim.block_on(async move {
            let writer = store.client(NodeId(0));
            let reader = store.client(NodeId(8));
            for i in 0..10u8 {
                writer
                    .put(
                        oid(1),
                        Bytes::from(vec![i]),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                let (_, data) = reader
                    .read_all(oid(1), Consistency::Linearizable)
                    .await
                    .unwrap();
                assert_eq!(data[0], i, "stale linearizable read at i = {i}");
            }
        });
    }

    #[test]
    fn eventual_write_is_faster_than_linearizable() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let h = fabric.handle().clone();
        let (lin, ev) = sim.block_on(async move {
            // Same object both times so the placement (and therefore the
            // client -> primary distance) is identical; client is not a
            // replica so both consistency levels pay the same first hop.
            let id = oid(1);
            let replicas = store.placement().replicas(id);
            let client_node = fabric
                .topology()
                .node_ids()
                .into_iter()
                .find(|n| !replicas.contains(n))
                .unwrap();
            let c = store.client(client_node);
            let t0 = h.now();
            c.put(
                id,
                Bytes::from_static(b"a"),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            let lin = h.now() - t0;
            let t1 = h.now();
            c.put(
                id,
                Bytes::from_static(b"b"),
                Mutability::Mutable,
                Consistency::Eventual,
            )
            .await
            .unwrap();
            (lin, h.now() - t1)
        });
        assert!(
            lin.as_nanos() > ev.as_nanos() * 13 / 10,
            "linearizable {lin:?} vs eventual {ev:?}"
        );
    }

    #[test]
    fn eventual_read_can_be_stale_then_converges() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let h = fabric.handle().clone();
        sim.block_on({
            let store = store.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(7);
                c.put(
                    id,
                    Bytes::from_static(b"v1"),
                    Mutability::Mutable,
                    Consistency::Eventual,
                )
                .await
                .unwrap();
                c.put(
                    id,
                    Bytes::from_static(b"v2"),
                    Mutability::Mutable,
                    Consistency::Eventual,
                )
                .await
                .unwrap();
                // A reader sitting next to a secondary may see v1 or v2
                // immediately after the ack; after anti-entropy rounds it
                // must see v2 everywhere.
                for r in store.replicas() {
                    r.anti_entropy_once().await;
                }
                h.sleep(Duration::from_millis(5)).await;
                for node in [0u32, 3, 6, 8] {
                    let (tag, data) = store
                        .client(NodeId(node))
                        .read_all(id, Consistency::Eventual)
                        .await
                        .unwrap();
                    assert_eq!(&data[..], b"v2", "node {node} still stale");
                    assert_eq!(tag.seq, 2);
                }
            }
        });
    }

    #[test]
    fn linearizable_write_fails_without_majority() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let err = sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(3);
                let replicas = store.placement().replicas(id);
                // Crash both secondaries: majority (2 of 3) unreachable.
                fabric.set_node_down(replicas[1], true);
                fabric.set_node_down(replicas[2], true);
                store
                    .client(NodeId(0))
                    .put(
                        id,
                        Bytes::from_static(b"x"),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap_err()
            }
        });
        assert!(
            matches!(err, PcsiError::QuorumUnavailable { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn eventual_write_survives_secondary_crashes() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let ok = sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(4);
                let replicas = store.placement().replicas(id);
                fabric.set_node_down(replicas[1], true);
                fabric.set_node_down(replicas[2], true);
                store
                    .client(NodeId(0))
                    .put(
                        id,
                        Bytes::from_static(b"x"),
                        Mutability::Mutable,
                        Consistency::Eventual,
                    )
                    .await
                    .is_ok()
            }
        });
        assert!(ok);
    }

    #[test]
    fn linearizable_read_tolerates_one_crash() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let data = sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(5);
                store
                    .client(NodeId(0))
                    .put(
                        id,
                        Bytes::from_static(b"resilient"),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                let replicas = store.placement().replicas(id);
                fabric.set_node_down(replicas[0], true); // Even the primary.
                store
                    .client(NodeId(0))
                    .read_all(id, Consistency::Linearizable)
                    .await
                    .unwrap()
                    .1
            }
        });
        assert_eq!(&data[..], b"resilient");
    }

    #[test]
    fn missing_object_reported_not_found() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        let (lin, ev) = sim.block_on(async move {
            let c = store.client(NodeId(1));
            let lin = c.read_all(oid(99), Consistency::Linearizable).await;
            let ev = c.read_all(oid(99), Consistency::Eventual).await;
            (lin, ev)
        });
        assert!(matches!(lin, Err(PcsiError::NotFound(_))), "{lin:?}");
        assert!(matches!(ev, Err(PcsiError::NotFound(_))), "{ev:?}");
    }

    #[test]
    fn delete_propagates_and_tombstones() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, true);
        sim.block_on({
            let store = store.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(6);
                c.put(
                    id,
                    Bytes::from_static(b"temp"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                c.delete(id).await.unwrap();
                let r = c.read_all(id, Consistency::Linearizable).await;
                assert!(matches!(r, Err(PcsiError::NotFound(_))));
                // Anti-entropy must not resurrect it.
                for r in store.replicas() {
                    r.anti_entropy_once().await;
                }
                let r = c.read_all(id, Consistency::Eventual).await;
                assert!(matches!(r, Err(PcsiError::NotFound(_))));
            }
        });
    }

    #[test]
    fn append_only_workflow_through_store() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        sim.block_on(async move {
            let c = store.client(NodeId(2));
            let id = oid(8);
            c.put(
                id,
                Bytes::from_static(b""),
                Mutability::AppendOnly,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            c.append(id, Bytes::from_static(b"one,"), Consistency::Linearizable)
                .await
                .unwrap();
            c.append(id, Bytes::from_static(b"two"), Consistency::Linearizable)
                .await
                .unwrap();
            let err = c
                .write_at(id, 0, Bytes::from_static(b"X"), Consistency::Linearizable)
                .await
                .unwrap_err();
            assert!(matches!(err, PcsiError::MutabilityViolation { .. }));
            let (_, data) = c.read_all(id, Consistency::Linearizable).await.unwrap();
            assert_eq!(&data[..], b"one,two");
            // Seal it and verify writes of any kind now fail.
            c.set_mutability(id, Mutability::Immutable, Consistency::Linearizable)
                .await
                .unwrap();
            let err = c
                .append(id, Bytes::from_static(b"!"), Consistency::Linearizable)
                .await
                .unwrap_err();
            assert!(matches!(err, PcsiError::MutabilityViolation { .. }));
        });
    }

    #[test]
    fn partition_isolates_minority_and_heals() {
        let mut sim = Sim::new(43);
        let (fabric, store) = deploy(&sim, true);
        let h = fabric.handle().clone();
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(9);
                let replicas = store.placement().replicas(id);
                c.put(
                    id,
                    Bytes::from_static(b"v1"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // Partition one secondary away from everyone.
                let isolated = replicas[2];
                let others: Vec<NodeId> = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .filter(|&n| n != isolated)
                    .collect();
                fabric.partition(&[isolated], &others);
                // Majority writes still succeed.
                c.put(
                    id,
                    Bytes::from_static(b"v2"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // Heal; anti-entropy catches the straggler up.
                fabric.heal_partitions();
                h.sleep(Duration::from_millis(400)).await;
                let local = store
                    .replica_on(isolated)
                    .unwrap()
                    .with_engine(|e| e.read(id, 0, 100).map(|b| b.to_vec()));
                assert_eq!(local.unwrap(), b"v2");
            }
        });
    }
}
