//! The client-facing replicated store.
//!
//! [`ReplicatedStore`] launches one [`ReplicaNode`] per storage node and
//! hands out per-origin [`StoreClient`]s. A client maps the PCSI
//! consistency menu onto the replication machinery:
//!
//! | operation            | `Linearizable`                          | `Eventual`              |
//! |----------------------|-----------------------------------------|-------------------------|
//! | mutation             | primary + sync majority                 | primary only, async rest|
//! | read                 | one-RTT quorum read (newest of majority)| closest replica         |
//!
//! Mutations always pass through the object's primary, which gives every
//! object a total mutation order regardless of consistency level (the
//! menu controls *acknowledgement* and *read* behaviour, not ordering).
//!
//! Linearizable reads fan the read itself to every replica and take the
//! newest tag among the first majority of replies — one fabric round
//! trip, correct because any write-majority intersects any read-majority.
//! Payloads above [`StoreConfig::inline_read_max`] degrade to a tag
//! report plus a directed read (the former two-phase path). A quorum read
//! that observes divergent tags pushes the newest state to the stale
//! replicas in the background (read repair).
//!
//! Each client node also keeps a mutability-aware [`ObjectCache`]:
//! `IMMUTABLE` objects and the stable prefixes of `APPEND_ONLY` objects
//! are served node-locally at DRAM cost with zero fabric traffic.

use fxhash::FxHashMap;
use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::{Consistency, Mutability, ObjectId, PcsiError};
use pcsi_metrics::{Counter, Metrics};
use pcsi_net::fabric::NetError;
use pcsi_net::{Fabric, NodeId};
use pcsi_obs::{Journal, JournalExt};
use pcsi_sim::sync::mpsc;
use pcsi_sim::util::{join_all, Pacer};
use pcsi_sim::SimTime;
use pcsi_trace::{AttrValue, SpanHandle, TraceContext, Tracer};

use crate::cache::ObjectCache;
use crate::engine::{MediaTier, Mutation, StoredObject};
use crate::placement::Placement;
use crate::replica::{ReplicaNode, STORE_SERVICE, STORE_TRANSPORT};
use crate::retry::{RetryPolicy, RetryStats, RETRY_RNG_STREAM};
use crate::version::Tag;
use crate::wire::{self, Request, Response};

/// Store deployment configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Copies per object.
    pub n_replicas: usize,
    /// Media tier of every replica engine.
    pub tier: MediaTier,
    /// Anti-entropy period; `None` disables the background task (tests
    /// drive rounds manually).
    pub anti_entropy: Option<Duration>,
    /// Largest payload (bytes) replicas inline into a one-RTT quorum
    /// read reply. Larger objects fall back to the two-phase path (tag
    /// quorum, then a directed read from the newest replica). `0`
    /// disables the one-RTT path entirely and always uses two phases.
    pub inline_read_max: u64,
    /// Byte budget of each node-local client cache; `0` disables
    /// client-side caching.
    pub cache_bytes: usize,
    /// Client-side fault recovery: per-attempt deadlines, bounded
    /// seeded-jitter retries, and coordination failover.
    pub retry: RetryPolicy,
    /// Nodes initially in the placement ring. `None` (the default) puts
    /// every storage node in the ring. A subset leaves the rest running
    /// as warm standbys that hold no data until
    /// [`ReplicatedStore::join_node`] admits them — the elastic-scaling
    /// path.
    pub ring_nodes: Option<Vec<NodeId>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            n_replicas: 3,
            tier: MediaTier::Nvme,
            anti_entropy: Some(Duration::from_millis(100)),
            inline_read_max: 64 * 1024,
            cache_bytes: 256 * 1024 * 1024,
            retry: RetryPolicy::default(),
            ring_nodes: None,
        }
    }
}

/// Aggregated client-cache counters across all nodes of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from a node-local cache.
    pub hits: u64,
    /// Reads that had to go to the replicas.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
}

/// One client-side store operation as observed at its boundary: the
/// invocation and response instants in virtual time plus the outcome.
/// Emitted through the [`HistoryTap`] for consistency checking — the
/// chaos harness records these into a concurrent history and runs a
/// linearizability checker over it.
#[derive(Debug, Clone)]
pub enum TapEvent {
    /// A client read (cache hits included).
    Read {
        /// Node the operation originated from.
        origin: NodeId,
        /// Object read.
        id: ObjectId,
        /// Consistency level the read was issued at.
        consistency: Consistency,
        /// Range start.
        offset: u64,
        /// Range length.
        len: u64,
        /// Invocation instant.
        invoke: SimTime,
        /// Response instant.
        response: SimTime,
        /// Served `(tag, data)` or the error rendered as a string.
        outcome: Result<(Tag, Bytes), String>,
    },
    /// A client mutation routed through the object's primary.
    Mutate {
        /// Node the operation originated from.
        origin: NodeId,
        /// Object mutated.
        id: ObjectId,
        /// Mutation kind (`"put"`, `"write_at"`, `"append"`,
        /// `"set_mutability"`, `"delete"`).
        op: &'static str,
        /// Payload bytes of the mutation (empty for payload-free ops).
        payload: Bytes,
        /// Synchronous acknowledgements the mutation waited for.
        sync_replicas: u32,
        /// Invocation instant.
        invoke: SimTime,
        /// Response instant.
        response: SimTime,
        /// Acknowledged tag or the error rendered as a string.
        outcome: Result<Tag, String>,
    },
}

/// Observer invoked once per completed client operation.
pub type HistoryTap = Rc<dyn Fn(&TapEvent)>;

/// The deployed storage system.
#[derive(Clone)]
pub struct ReplicatedStore {
    inner: Rc<StoreInner>,
}

struct StoreInner {
    fabric: Fabric,
    placement: Placement,
    replicas: Vec<ReplicaNode>,
    config: StoreConfig,
    /// One mutability-aware cache per client node, created lazily.
    /// Clients are handed out per call, so the cache state lives here.
    caches: RefCell<FxHashMap<NodeId, ObjectCache>>,
    /// Optional per-operation observer (chaos harness history recording).
    tap: RefCell<Option<HistoryTap>>,
    /// Optional deterministic tracer. Client operations open spans here;
    /// the context rides the wire envelope so replica spans nest under
    /// the client attempt that caused them.
    tracer: RefCell<Option<Tracer>>,
    /// Store-unique [`Request::Coordinate`] id allocator. The fabric can
    /// duplicate messages and clients retry, so every coordination
    /// carries an id coordinators deduplicate on.
    next_req_id: Cell<u64>,
    /// Fault-recovery counters, aggregated across every client of this
    /// store.
    retry_counters: RetryCounters,
    /// Objects a migration driver is currently moving. A freeze window
    /// must belong to exactly one driver — a second drain unfreezing an
    /// object mid-snapshot would readmit writes the first driver's
    /// snapshot cannot see — so concurrent drains skip claimed objects.
    migrating: RefCell<BTreeSet<ObjectId>>,
    /// Optional metrics registry. When installed, the always-on cells
    /// above (and every lazily created cache's) are published as named
    /// series; nothing is double-counted.
    metrics: RefCell<Option<Metrics>>,
    /// Optional structured event journal. Failovers and object
    /// migrations append typed records; absent means disabled and the
    /// hooks cost one pointer check.
    journal: RefCell<Option<Journal>>,
}

#[derive(Default)]
struct RetryCounters {
    retries: Counter,
    failovers: Counter,
    timeouts: Counter,
}

impl RetryCounters {
    fn retry(&self) {
        self.retries.incr();
    }

    fn failover(&self) {
        self.failovers.incr();
    }

    fn timeout(&self) {
        self.timeouts.incr();
    }
}

impl ReplicatedStore {
    /// Launches replicas on `storage_nodes` and returns the store. The
    /// placement ring covers [`StoreConfig::ring_nodes`] when set (a
    /// subset of `storage_nodes`; the rest are warm standbys awaiting
    /// [`ReplicatedStore::join_node`]), else all of `storage_nodes`.
    pub fn launch(fabric: Fabric, storage_nodes: Vec<NodeId>, config: StoreConfig) -> Self {
        let ring = config
            .ring_nodes
            .clone()
            .unwrap_or_else(|| storage_nodes.clone());
        for n in &ring {
            assert!(
                storage_nodes.contains(n),
                "ring node {n:?} is not a storage node"
            );
        }
        let placement = Placement::new(fabric.topology(), ring, config.n_replicas);
        let replicas: Vec<ReplicaNode> = storage_nodes
            .iter()
            .map(|&node| ReplicaNode::start(fabric.clone(), placement.clone(), node, config.tier))
            .collect();
        if let Some(interval) = config.anti_entropy {
            for r in &replicas {
                r.start_anti_entropy(interval);
            }
        }
        ReplicatedStore {
            inner: Rc::new(StoreInner {
                fabric,
                placement,
                replicas,
                config,
                caches: RefCell::new(FxHashMap::default()),
                tap: RefCell::new(None),
                tracer: RefCell::new(None),
                next_req_id: Cell::new(0),
                retry_counters: RetryCounters::default(),
                migrating: RefCell::new(BTreeSet::new()),
                metrics: RefCell::new(None),
                journal: RefCell::new(None),
            }),
        }
    }

    /// Installs (or removes) the per-operation history tap. The tap sees
    /// every client read and mutation with its invoke/response interval;
    /// it must not issue store operations itself.
    pub fn set_history_tap(&self, tap: Option<HistoryTap>) {
        *self.inner.tap.borrow_mut() = tap;
    }

    /// Installs (or removes) the tracer. Client operations open spans on
    /// it, and every replica records server-side spans into the same
    /// sink, nested under the client attempt via the wire context.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        for r in &self.inner.replicas {
            r.set_tracer(tracer.clone());
        }
        *self.inner.tracer.borrow_mut() = tracer;
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.inner.tracer.borrow().clone()
    }

    /// Installs (or removes) the metrics registry. Installing binds the
    /// store's fault-recovery counters, every existing client cache's
    /// counters, and each replica's protocol counters as named series —
    /// the registry publishes the same cells the legacy accessors
    /// ([`ReplicatedStore::retry_stats`], [`ReplicatedStore::cache_stats`])
    /// read, so the two views agree by construction.
    pub fn set_metrics(&self, metrics: Option<Metrics>) {
        if let Some(m) = &metrics {
            let c = &self.inner.retry_counters;
            m.bind_counter("store.retries", &[], &c.retries);
            m.bind_counter("store.failovers", &[], &c.failovers);
            m.bind_counter("store.timeouts", &[], &c.timeouts);
            for (node, cache) in self.inner.caches.borrow().iter() {
                cache.publish_metrics(m, &node.0.to_string());
            }
        }
        for r in &self.inner.replicas {
            r.set_metrics(metrics.clone());
        }
        *self.inner.metrics.borrow_mut() = metrics;
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<Metrics> {
        self.inner.metrics.borrow().clone()
    }

    /// Installs (or removes) the structured event journal. Failovers
    /// and migrations record typed events into it.
    pub fn set_journal(&self, journal: Option<Journal>) {
        *self.inner.journal.borrow_mut() = journal;
    }

    /// The installed journal, if any.
    pub fn journal(&self) -> Option<Journal> {
        self.inner.journal.borrow().clone()
    }

    fn emit_tap(&self, make: impl FnOnce() -> TapEvent) {
        // Clone the Rc out of the cell first so the observer runs with
        // no borrow held.
        let tap = self.inner.tap.borrow().clone();
        if let Some(tap) = tap {
            tap(&make());
        }
    }

    /// The placement function in force.
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// The replica running on `node`, if it is a storage node.
    pub fn replica_on(&self, node: NodeId) -> Option<&ReplicaNode> {
        self.inner.replicas.iter().find(|r| r.node() == node)
    }

    /// All replicas (GC sweeps, tests).
    pub fn replicas(&self) -> &[ReplicaNode] {
        &self.inner.replicas
    }

    /// A client whose operations originate from `node`.
    pub fn client(&self, node: NodeId) -> StoreClient {
        StoreClient {
            store: self.clone(),
            origin: node,
            ctx: None,
        }
    }

    /// Drops `id` from every node-local client cache (deletes, GC).
    pub fn invalidate_cached(&self, id: ObjectId) {
        for cache in self.inner.caches.borrow_mut().values_mut() {
            cache.invalidate(id);
        }
    }

    /// Aggregated fault-recovery counters (retries, failovers, deadline
    /// expiries) across all clients of this store.
    pub fn retry_stats(&self) -> RetryStats {
        let c = &self.inner.retry_counters;
        RetryStats {
            retries: c.retries.get(),
            failovers: c.failovers.get(),
            timeouts: c.timeouts.get(),
        }
    }

    /// Aggregated client-cache counters across all nodes.
    pub fn cache_stats(&self) -> CacheStats {
        let caches = self.inner.caches.borrow();
        let mut stats = CacheStats::default();
        for cache in caches.values() {
            stats.hits += cache.hits();
            stats.misses += cache.misses();
            stats.evictions += cache.evictions();
        }
        stats
    }

    /// The cache for `node`, created (and published to the metrics
    /// registry when one is installed) on first touch.
    fn with_cache<T>(&self, node: NodeId, f: impl FnOnce(&mut ObjectCache) -> T) -> T {
        let capacity = self.inner.config.cache_bytes;
        let mut caches = self.inner.caches.borrow_mut();
        let cache = caches.entry(node).or_insert_with(|| {
            let cache = ObjectCache::new(capacity);
            if let Some(m) = self.inner.metrics.borrow().as_ref() {
                cache.publish_metrics(m, &node.0.to_string());
            }
            cache
        });
        f(cache)
    }

    fn cache_get(&self, node: NodeId, id: ObjectId, offset: u64, len: u64) -> Option<(Tag, Bytes)> {
        if self.inner.config.cache_bytes == 0 {
            return None;
        }
        self.with_cache(node, |cache| cache.get(id, offset, len))
    }

    fn cache_admit(&self, node: NodeId, id: ObjectId, served: &Served) {
        if self.inner.config.cache_bytes == 0 {
            return;
        }
        // Only whole-from-zero data is admissible. The engine keeps
        // `stable_len` equal to the full object size after every
        // mutation, so it doubles as a completeness check for clamped
        // `read_all`-style reads; an append-only prefix is cacheable even
        // when the read was truncated by `len`.
        let complete = served.data.len() as u64 == served.stable_len;
        match served.mutability {
            Mutability::Immutable if complete => {}
            Mutability::AppendOnly => {}
            _ => return,
        }
        self.with_cache(node, |cache| {
            cache.admit(id, served.mutability, served.tag, served.data.clone())
        });
    }

    // ---- live rebalancing ----------------------------------------------

    /// Every object id any replica engine currently stores (sorted,
    /// deduplicated) — the work list scanned at a topology change.
    pub fn all_object_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = Vec::new();
        for r in &self.inner.replicas {
            ids.extend(
                r.with_engine(|e| e.inventory())
                    .into_iter()
                    .map(|(id, _)| id),
            );
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Admits `node` into the placement ring and pins every object whose
    /// replica set changes to its old owners; returns the pinned ids.
    /// Reads and writes keep routing to the old owners until
    /// [`ReplicatedStore::drain_moves`] migrates the data. `node` must be
    /// a storage node (a warm standby launched outside the initial ring,
    /// see [`StoreConfig::ring_nodes`]).
    pub fn begin_join(&self, node: NodeId) -> Vec<ObjectId> {
        assert!(
            self.replica_on(node).is_some(),
            "cannot join {node:?}: no replica engine runs there"
        );
        let ids = self.all_object_ids();
        self.inner
            .placement
            .begin_join(self.inner.fabric.topology(), node, &ids)
    }

    /// Removes `node` from the placement ring and pins every object whose
    /// replica set changes; returns the pinned ids. The departing node
    /// keeps serving its pinned objects until they migrate, so call
    /// [`ReplicatedStore::drain_moves`] before taking it down.
    pub fn begin_decommission(&self, node: NodeId) -> Vec<ObjectId> {
        let ids = self.all_object_ids();
        self.inner.placement.begin_leave(node, &ids)
    }

    /// Joins `node` and migrates every affected object before returning
    /// the number of objects moved.
    pub async fn join_node(&self, node: NodeId) -> Result<usize, PcsiError> {
        self.begin_join(node);
        self.drain_moves(None).await
    }

    /// Decommissions `node` and migrates every affected object off it
    /// before returning the number of objects moved. The node is safe to
    /// take down once this returns.
    pub async fn decommission_node(&self, node: NodeId) -> Result<usize, PcsiError> {
        self.begin_decommission(node);
        self.drain_moves(None).await
    }

    /// Migrates every pending move to completion, optionally paced (one
    /// object per [`Pacer`] tick) so background data movement spreads
    /// over time instead of saturating the fabric. Failed moves retry on
    /// the next round; a round that makes no progress at all backs off,
    /// and [`MAX_STALLED_ROUNDS`] fruitless rounds in a row surface a
    /// retryable error (e.g. a quorum of old owners stayed unreachable).
    /// Returns the number of objects moved by *this* call.
    pub async fn drain_moves(&self, pacer: Option<&Pacer>) -> Result<usize, PcsiError> {
        let handle = self.inner.fabric.handle().clone();
        let mut moved = 0usize;
        let mut stalled_rounds = 0u32;
        loop {
            let pending = self.inner.placement.pending_moves();
            if pending.is_empty() {
                return Ok(moved);
            }
            let mut progressed = false;
            for id in pending {
                if let Some(p) = pacer {
                    p.tick().await;
                }
                match self.migrate_object(id).await {
                    Ok(true) => {
                        moved += 1;
                        progressed = true;
                    }
                    // Already moved (or claimed by a concurrent drain).
                    Ok(false) => {}
                    // Retryable: the next round tries again.
                    Err(_) => {}
                }
            }
            if progressed {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if stalled_rounds >= MAX_STALLED_ROUNDS {
                    return Err(PcsiError::Fault(format!(
                        "shard migration stalled: {} moves pending after {stalled_rounds} fruitless rounds",
                        self.inner.placement.pending_moves().len(),
                    )));
                }
                handle.sleep(DRAIN_RETRY_DELAY).await;
            }
        }
    }

    /// Migrates one pinned object: freezes writes, snapshots a majority
    /// of the old owners, installs a sealed copy on a majority of the
    /// new owners, and flips routing. `Ok(false)` when the object is not
    /// (or no longer) pinned, or another drain already claimed it. On
    /// error the freeze lifts and the pin stays — writes resume on the
    /// old owners and the move retries later.
    pub async fn migrate_object(&self, id: ObjectId) -> Result<bool, PcsiError> {
        // Claim before freezing (no await between): a second drain
        // unfreezing this object mid-snapshot would readmit writes the
        // first drain's snapshot cannot see.
        let Some(old) = self.inner.placement.move_old_set(id) else {
            return Ok(false);
        };
        if !self.inner.migrating.borrow_mut().insert(id) {
            return Ok(false);
        }
        self.inner.placement.freeze(id);
        let result = self.migrate_frozen(id, &old).await;
        match &result {
            Ok(()) => {
                self.inner.placement.complete_move(id);
                self.inner.journal.with(|j| {
                    j.append(
                        "store",
                        "migration",
                        format!("id={id:?} old_owners={}", old.len()),
                    );
                });
            }
            Err(_) => self.inner.placement.unfreeze(id),
        }
        self.inner.migrating.borrow_mut().remove(&id);
        result.map(|()| true)
    }

    /// The move itself, run with `id` frozen.
    ///
    /// Exactly-once survives the move because the request ledger travels
    /// with the bytes: a client retrying a pre-move write replays against
    /// the new owners and is answered `AlreadyApplied` at its recorded
    /// tag instead of being applied twice.
    ///
    /// The installed copy is *sealed* one sequence number above the
    /// newest tag any reachable old owner reported (writer `u32::MAX`
    /// wins ties), so an uncommitted line a failed coordination left
    /// behind orders below the moved state and anti-entropy cannot
    /// resurrect lost-race bytes over it. A receiver holding an even
    /// newer tag answers [`Response::Stale`] and the driver re-seals
    /// above that.
    ///
    /// A committed delete survives the move the same way: an old owner
    /// whose tombstone tag exceeds every live tag turns the move into a
    /// tombstone install, so the delete cannot be undone by a stale
    /// minority holder feeding anti-entropy after the flip.
    async fn migrate_frozen(&self, id: ObjectId, old: &[NodeId]) -> Result<(), PcsiError> {
        let majority = self.inner.placement.majority();
        // The object's first new owner pulls: the transfer is charged
        // from the network position of the node that will own the data.
        let from = self.inner.placement.ring_replicas(id)[0];
        let tag_frame = wire::encode_request(&Request::TagOf { id });
        let fetch_frame = wire::encode_request(&Request::Fetch { id });
        // Snapshot every reachable old owner — a majority must answer,
        // and asking all of them lets the seal cover zombie tags on
        // reachable minorities too. TagOf runs *before* Fetch on each
        // node so a `reported > live` surplus can only mean a tombstone
        // (writes are frozen; anti-entropy can only raise the live tag).
        let replies = join_all(old.iter().map(|&n| {
            let fabric = self.inner.fabric.clone();
            let tag_frame = tag_frame.clone();
            let fetch_frame = fetch_frame.clone();
            async move {
                let tag = call_store_raw(
                    fabric.clone(),
                    from,
                    n,
                    tag_frame,
                    Some(MIGRATE_RPC_TIMEOUT),
                )
                .await;
                let state =
                    call_store_raw(fabric, from, n, fetch_frame, Some(MIGRATE_RPC_TIMEOUT)).await;
                (tag, state)
            }
        }))
        .await;
        let mut heard = 0usize;
        let mut best: Option<(StoredObject, Vec<(u64, Tag)>)> = None;
        // Newest tag seen anywhere reachable (zombies and tombstones
        // included) — the seal floor.
        let mut max_seen = Tag::ZERO;
        // Newest committed-delete tag among the old owners.
        let mut tombstone = Tag::ZERO;
        for (tag, state) in replies {
            let reported = match tag {
                Ok(Response::TagIs { tag }) => tag,
                _ => continue,
            };
            let live = match state {
                Ok(Response::Object { object, reqs }) => {
                    let t = object.tag;
                    if best.as_ref().is_none_or(|(b, _)| t > b.tag) {
                        best = Some((object, reqs));
                    }
                    t
                }
                Ok(Response::Absent) => Tag::ZERO,
                _ => continue,
            };
            heard += 1;
            max_seen = max_seen.max(reported).max(live);
            if reported > live {
                tombstone = tombstone.max(reported);
            }
        }
        if heard < majority {
            return Err(PcsiError::QuorumUnavailable {
                needed: majority,
                got: heard,
            });
        }
        let best_tag = best.as_ref().map_or(Tag::ZERO, |(b, _)| b.tag);
        let deleted = tombstone > best_tag;
        if best.is_none() && !deleted {
            // Never written on any reachable old owner: nothing to move.
            return Ok(());
        }
        let (snapshot, reqs) = best.unwrap_or_else(|| {
            (
                StoredObject {
                    data: Bytes::new(),
                    tag: Tag::ZERO,
                    mutability: Mutability::Mutable,
                    stable_len: 0,
                },
                Vec::new(),
            )
        });
        let mut seal_seq = max_seen.seq + 1;
        for _ in 0..MAX_SEAL_ROUNDS {
            let epoch = self.inner.placement.epoch();
            let targets = self.inner.placement.ring_replicas(id);
            let sealed = StoredObject {
                data: if deleted {
                    Bytes::new()
                } else {
                    snapshot.data.clone()
                },
                tag: Tag {
                    seq: seal_seq,
                    writer: u32::MAX,
                },
                mutability: snapshot.mutability,
                stable_len: if deleted { 0 } else { snapshot.stable_len },
            };
            let frame = wire::encode_request(&Request::Migrate {
                epoch,
                id,
                object: sealed,
                reqs: reqs.clone(),
                tombstone: deleted,
            });
            let installs =
                join_all(targets.iter().map(|&n| {
                    let fabric = self.inner.fabric.clone();
                    let frame = frame.clone();
                    async move {
                        call_store_raw(fabric, from, n, frame, Some(MIGRATE_RPC_TIMEOUT)).await
                    }
                }))
                .await;
            let mut acks = 0usize;
            let mut newer: Option<Tag> = None;
            let mut raced_epoch = false;
            for reply in installs {
                match reply {
                    Ok(Response::Applied) => acks += 1,
                    Ok(Response::Stale { newest }) => {
                        newer = Some(newer.map_or(newest, |z| z.max(newest)));
                    }
                    Ok(Response::WrongEpoch { .. }) => raced_epoch = true,
                    _ => {}
                }
            }
            if acks >= majority {
                return Ok(());
            }
            if raced_epoch {
                // A further topology change landed mid-install; the
                // retry recomputes its targets under the new epoch.
                return Err(PcsiError::Fault(format!(
                    "migration of {id:?} raced a topology change"
                )));
            }
            match newer {
                Some(t) if t.seq >= seal_seq => seal_seq = t.seq + 1,
                _ => {
                    return Err(PcsiError::QuorumUnavailable {
                        needed: majority,
                        got: acks,
                    });
                }
            }
        }
        Err(PcsiError::Fault(format!(
            "migration of {id:?} kept losing seal races"
        )))
    }
}

/// Per-RPC deadline for migration traffic (snapshot fetches and sealed
/// installs). Short: a failed move just retries on the next drain round.
const MIGRATE_RPC_TIMEOUT: Duration = Duration::from_millis(20);

/// Seal-raise rounds per install attempt. Each round seals above the
/// newest tag any receiver reported, so two is enough for every
/// quiescent race; more only lose to a live writer, which means the
/// epoch raced anyway.
const MAX_SEAL_ROUNDS: u32 = 4;

/// Consecutive fruitless drain rounds tolerated before the drain reports
/// the migration stalled.
const MAX_STALLED_ROUNDS: u32 = 512;

/// Back-off between fruitless drain rounds.
const DRAIN_RETRY_DELAY: Duration = Duration::from_millis(2);

/// A read as served by a replica (or the cache): payload plus the
/// metadata that drives caching decisions.
struct Served {
    tag: Tag,
    mutability: Mutability,
    stable_len: u64,
    data: Bytes,
}

/// One reply in a one-RTT quorum read.
struct QuorumReply {
    node: NodeId,
    tag: Tag,
    /// `None` when the replica answered with a bare tag report (payload
    /// above the inline limit, or object absent).
    served: Option<Served>,
}

/// A store client bound to an origin node (the node whose network position
/// the operations are charged from).
#[derive(Clone)]
pub struct StoreClient {
    store: ReplicatedStore,
    origin: NodeId,
    /// Incoming trace context: operation spans become children of it.
    /// Without one (a bare client) each operation opens a root span.
    ctx: Option<TraceContext>,
}

impl StoreClient {
    /// The origin node.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Binds this client's operations to an incoming trace context, so
    /// store spans nest under the caller (e.g. a kernel op or a REST
    /// gateway request) instead of opening their own roots.
    pub fn traced(mut self, ctx: Option<TraceContext>) -> StoreClient {
        self.ctx = ctx;
        self
    }

    /// Opens the span for one client-facing store operation: a child of
    /// the bound context when one exists, else a fresh root (subject to
    /// sampling). Disabled (zero-cost) when no tracer is installed.
    fn op_span(&self, name: &'static str) -> SpanHandle {
        let tracer = self.store.inner.tracer.borrow();
        match (tracer.as_ref(), self.ctx) {
            (Some(t), Some(ctx)) => t.child(ctx, name),
            (Some(t), None) => t.root(name),
            (None, _) => SpanHandle::disabled(),
        }
    }

    /// Creates or replaces an object.
    pub async fn put(
        &self,
        id: ObjectId,
        data: Bytes,
        mutability: Mutability,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::PutFull { data, mutability }, consistency)
            .await
    }

    /// Overwrites a byte range.
    pub async fn write_at(
        &self,
        id: ObjectId,
        offset: u64,
        data: Bytes,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::WriteAt { offset, data }, consistency)
            .await
    }

    /// Appends bytes.
    pub async fn append(
        &self,
        id: ObjectId,
        data: Bytes,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::Append { data }, consistency)
            .await
    }

    /// Applies a mutability transition.
    pub async fn set_mutability(
        &self,
        id: ObjectId,
        to: Mutability,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        self.mutate(id, Mutation::SetMutability { to }, consistency)
            .await
    }

    /// Deletes an object. Deletes are always replicated synchronously to
    /// the full replica set that is reachable (tombstones guard the rest).
    pub async fn delete(&self, id: ObjectId) -> Result<Tag, PcsiError> {
        let n = self.store.placement().replication_factor() as u32;
        let result = self.mutate_with_acks(id, Mutation::Delete, n).await;
        // Invalidate caches on success — and on *ambiguous* failure: a
        // timeout or unreachable peer may hide a tombstone that was
        // applied server-side with the ack lost in flight, and a cache
        // still serving the deleted object's "immutable" bytes would
        // never learn otherwise. Only a definitive server-side rejection
        // proves the delete had no effect.
        let ambiguous = matches!(&result, Err(e) if e.is_retryable());
        if result.is_ok() || ambiguous {
            self.store.invalidate_cached(id);
        }
        result
    }

    /// Routes a mutation through the object's primary.
    pub async fn mutate(
        &self,
        id: ObjectId,
        mutation: Mutation,
        consistency: Consistency,
    ) -> Result<Tag, PcsiError> {
        let acks = match consistency {
            Consistency::Linearizable => self.store.placement().majority() as u32,
            Consistency::Eventual => 1,
        };
        self.mutate_with_acks(id, mutation, acks).await
    }

    /// Sends one typed request to a replica and decodes the reply,
    /// mapping transport failures and wire-level errors to [`PcsiError`].
    /// `ctx` (when sampled) rides the wire so replica spans nest under
    /// the client span that caused them.
    async fn call_store(
        &self,
        to: NodeId,
        req: &Request,
        ctx: Option<TraceContext>,
    ) -> Result<Response, PcsiError> {
        call_store_raw(
            self.store.inner.fabric.clone(),
            self.origin,
            to,
            wire::encode_request_traced(req, ctx),
            None,
        )
        .await
    }

    async fn mutate_with_acks(
        &self,
        id: ObjectId,
        mutation: Mutation,
        sync_replicas: u32,
    ) -> Result<Tag, PcsiError> {
        let (op, payload) = match &mutation {
            Mutation::PutFull { data, .. } => ("put", data.clone()),
            Mutation::WriteAt { data, .. } => ("write_at", data.clone()),
            Mutation::Append { data } => ("append", data.clone()),
            Mutation::SetMutability { .. } => ("set_mutability", Bytes::new()),
            Mutation::Delete => ("delete", Bytes::new()),
        };
        let invoke = self.store.inner.fabric.handle().now();
        let req_id = self.store.inner.next_req_id.get() + 1;
        self.store.inner.next_req_id.set(req_id);
        let req = Request::Coordinate {
            id,
            mutation,
            sync_replicas,
            req_id,
            // Stamped per attempt by `coordinate_with_recovery` when the
            // policy carries an attempt deadline.
            expires_ns: 0,
        };
        let mut span = self.op_span("store.mutate");
        span.attr("op", op);
        span.attr_with("object", || AttrValue::Text(format!("{id:?}")));
        span.attr("acks", u64::from(sync_replicas));
        let result = self.coordinate_with_recovery(id, &req, &span).await;
        if result.is_err() {
            span.attr("error", "true");
        }
        span.finish();
        self.store.emit_tap(|| TapEvent::Mutate {
            origin: self.origin,
            id,
            op,
            payload,
            sync_replicas,
            invoke,
            response: self.store.inner.fabric.handle().now(),
            outcome: result.as_ref().map(|&t| t).map_err(|e| e.to_string()),
        });
        result
    }

    /// Drives one coordination to completion under the configured
    /// [`RetryPolicy`]: every attempt races the per-attempt deadline,
    /// retryable failures are retried after seeded-jitter backoff, and
    /// once the per-target budget is exhausted the request fails over to
    /// the next replica in placement order (any replica may coordinate;
    /// `req_id` dedup and stale-tag rejection keep the order single).
    ///
    /// The error finally surfaced prefers a server-reported verdict
    /// (e.g. genuine [`PcsiError::QuorumUnavailable`]) over the
    /// transport-level `Unreachable`/`Timeout` noise of the last attempt.
    async fn coordinate_with_recovery(
        &self,
        id: ObjectId,
        req: &Request,
        parent: &SpanHandle,
    ) -> Result<Tag, PcsiError> {
        let policy = self.store.inner.config.retry.clone();
        let handle = self.store.inner.fabric.handle().clone();
        let start = handle.now();
        let per_target = policy.attempts_per_target.max(1);
        let rng = handle.rng().stream(RETRY_RNG_STREAM);
        let counters = &self.store.inner.retry_counters;

        let mut attempt_no = 0u32;
        let mut transport_err: Option<PcsiError> = None;
        let mut server_err: Option<PcsiError> = None;
        // When tracing is unsampled every attempt sends the identical
        // untraced frame, so encode it once and share it across retries
        // and failovers. Sampled attempts still encode per-span: their
        // trace context differs on every attempt.
        let mut untraced_frame: Option<Bytes> = None;
        let mut ti = 0usize;
        loop {
            // Re-resolve placement at every failover step: a topology
            // change (join/decommission) mid-operation must steer the
            // remaining attempts at the object's *current* owners, not
            // the set in force when the operation started.
            let replicas = self.store.placement().replicas(id);
            let n_targets = if policy.failover { replicas.len() } else { 1 };
            if ti >= n_targets {
                break;
            }
            let target = replicas[ti];
            if ti > 0 {
                counters.failover();
                self.store.inner.journal.with(|j| {
                    j.append("store", "failover", format!("id={id:?} target={ti}"));
                });
            }
            for _ in 0..per_target {
                if attempt_no > 0 {
                    counters.retry();
                    let mut delay = policy.backoff(attempt_no - 1, &rng);
                    if let Some(rem) = policy.remaining_budget(handle.now() - start) {
                        // Never sleep past the operation deadline.
                        delay = delay.min(rem);
                    }
                    if !delay.is_zero() {
                        let backoff_span = parent.span("store.backoff");
                        handle.sleep(delay).await;
                        backoff_span.finish();
                    }
                }
                // Check the budget before *every* attempt (the first
                // included) and clamp the attempt's deadline to what is
                // left: an exhausted budget must not buy one more full
                // attempt_timeout of overrun.
                let remaining = policy.remaining_budget(handle.now() - start);
                if remaining == Some(Duration::ZERO) {
                    counters.timeout();
                    return Err(server_err.or(transport_err).unwrap_or(PcsiError::Timeout));
                }
                attempt_no += 1;
                let mut att = parent.span("store.attempt");
                att.attr("target", u64::from(target.0));
                if ti > 0 {
                    att.attr("failover", ti as u64);
                }
                let deadline = policy.attempt_deadline(remaining);
                // Stamp the attempt's absolute expiry into the request:
                // the coordinator refuses to order past it, so an
                // abandoned attempt can never mint a fresh tag after
                // this client has moved on (and possibly acknowledged
                // the operation through another coordinator). The stamp
                // differs per attempt, so stamped frames bypass the
                // shared untraced-frame cache.
                let stamped = match (deadline, req) {
                    (
                        Some(d),
                        Request::Coordinate {
                            id,
                            mutation,
                            sync_replicas,
                            req_id,
                            ..
                        },
                    ) => Some(Request::Coordinate {
                        id: *id,
                        mutation: mutation.clone(),
                        sync_replicas: *sync_replicas,
                        req_id: *req_id,
                        expires_ns: (handle.now() + d).as_nanos(),
                    }),
                    _ => None,
                };
                let frame = match (&stamped, att.ctx()) {
                    (Some(s), ctx) => wire::encode_request_traced(s, ctx),
                    (None, ctx @ Some(_)) => wire::encode_request_traced(req, ctx),
                    (None, None) => untraced_frame
                        .get_or_insert_with(|| wire::encode_request(req))
                        .clone(),
                };
                let outcome = call_store_raw(
                    self.store.inner.fabric.clone(),
                    self.origin,
                    target,
                    frame,
                    deadline,
                )
                .await;
                if let Err(e) = &outcome {
                    att.attr_with("error", || AttrValue::Text(e.to_string()));
                }
                att.finish();
                match outcome {
                    Ok(Response::Coordinated { tag }) => return Ok(tag),
                    Ok(other) => {
                        return Err(PcsiError::Fault(format!("unexpected response {other:?}")))
                    }
                    Err(e) if !e.is_retryable() => return Err(e),
                    Err(e) => {
                        match &e {
                            PcsiError::Timeout => {
                                counters.timeout();
                                transport_err = Some(e);
                            }
                            PcsiError::Unreachable(_) | PcsiError::Fault(_) => {
                                transport_err = Some(e)
                            }
                            // Retryable verdicts computed *by* a replica
                            // (quorum math, admission control).
                            _ => server_err = Some(e),
                        }
                    }
                }
            }
            ti += 1;
        }
        Err(server_err.or(transport_err).unwrap_or(PcsiError::Timeout))
    }

    /// Reads a byte range at the requested consistency level.
    ///
    /// Returns the served `(tag, data)`; the tag lets callers measure
    /// staleness (experiment E7).
    ///
    /// The read first consults the origin node's mutability-aware cache:
    /// immutable bytes and stable append-only prefixes are served locally
    /// at DRAM cost with zero fabric traffic, which is sound at *any*
    /// consistency level because such bytes can never change.
    pub async fn read(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        consistency: Consistency,
    ) -> Result<(Tag, Bytes), PcsiError> {
        let invoke = self.store.inner.fabric.handle().now();
        let mut span = self.op_span("store.read");
        span.attr(
            "consistency",
            match consistency {
                Consistency::Linearizable => "linearizable",
                Consistency::Eventual => "eventual",
            },
        );
        span.attr_with("object", || AttrValue::Text(format!("{id:?}")));
        let result = self.read_inner(id, offset, len, consistency, &span).await;
        if result.is_err() {
            span.attr("error", "true");
        }
        span.finish();
        self.store.emit_tap(|| TapEvent::Read {
            origin: self.origin,
            id,
            consistency,
            offset,
            len,
            invoke,
            response: self.store.inner.fabric.handle().now(),
            outcome: match &result {
                Ok((tag, data)) => Ok((*tag, data.clone())),
                Err(e) => Err(e.to_string()),
            },
        });
        result
    }

    async fn read_inner(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        consistency: Consistency,
        parent: &SpanHandle,
    ) -> Result<(Tag, Bytes), PcsiError> {
        if let Some((tag, data)) = self.store.cache_get(self.origin, id, offset, len) {
            let mut cache_span = parent.span("store.cache");
            cache_span.attr("hit", "true");
            let t = MediaTier::Dram.io_time(data.len());
            self.store.inner.fabric.handle().sleep(t).await;
            cache_span.finish();
            return Ok((tag, data));
        }
        let served = self
            .read_with_recovery(id, offset, len, consistency, parent)
            .await?;
        if offset == 0 {
            self.store.cache_admit(self.origin, id, &served);
        }
        Ok((served.tag, served.data))
    }

    /// Drives read attempts under the configured [`RetryPolicy`]: each
    /// attempt races the per-attempt deadline, retryable failures back
    /// off with seeded jitter, and eventual reads rotate through the
    /// replica set so a crashed closest replica doesn't surface to the
    /// caller while any replica is alive. Reads are idempotent, so an
    /// abandoned attempt needs no further care.
    async fn read_with_recovery(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        consistency: Consistency,
        parent: &SpanHandle,
    ) -> Result<Served, PcsiError> {
        let policy = self.store.inner.config.retry.clone();
        let handle = self.store.inner.fabric.handle().clone();
        let start = handle.now();
        let n_targets = self.store.placement().replication_factor();
        let max_attempts = policy.max_attempts(n_targets);
        let rng = handle.rng().stream(RETRY_RNG_STREAM);
        let counters = &self.store.inner.retry_counters;

        let mut last_err: Option<PcsiError> = None;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                counters.retry();
                let mut delay = policy.backoff(attempt as u32 - 1, &rng);
                if let Some(rem) = policy.remaining_budget(handle.now() - start) {
                    // Never sleep past the operation deadline.
                    delay = delay.min(rem);
                }
                if !delay.is_zero() {
                    let backoff_span = parent.span("store.backoff");
                    handle.sleep(delay).await;
                    backoff_span.finish();
                }
            }
            // Same budget discipline as the write path: check before
            // every attempt, clamp each attempt to what is left.
            let remaining = policy.remaining_budget(handle.now() - start);
            if remaining == Some(Duration::ZERO) {
                counters.timeout();
                return Err(last_err.unwrap_or(PcsiError::Timeout));
            }
            let mut att = parent.span("store.attempt");
            att.attr("attempt", attempt as u64);
            let ctx = att.ctx();
            let result = match policy.attempt_deadline(remaining) {
                Some(d) => {
                    let client = self.clone();
                    let raced = pcsi_sim::util::deadline(&handle, d, async move {
                        client
                            .read_attempt(id, offset, len, consistency, attempt, ctx)
                            .await
                    })
                    .await;
                    match raced {
                        Some(r) => r,
                        None => {
                            counters.timeout();
                            Err(PcsiError::Timeout)
                        }
                    }
                }
                None => {
                    self.read_attempt(id, offset, len, consistency, attempt, ctx)
                        .await
                }
            };
            if let Err(e) = &result {
                att.attr_with("error", || AttrValue::Text(e.to_string()));
            }
            att.finish();
            match result {
                Ok(served) => return Ok(served),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(PcsiError::Timeout))
    }

    async fn read_attempt(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        consistency: Consistency,
        attempt: usize,
        ctx: Option<TraceContext>,
    ) -> Result<Served, PcsiError> {
        match consistency {
            Consistency::Eventual => {
                let replicas = self.store.placement().replicas(id);
                let closest = self.store.placement().closest_replica(
                    self.store.inner.fabric.topology(),
                    id,
                    self.origin,
                );
                // First try the closest replica; on retry rotate through
                // the rest of the set (any replica serves eventual reads).
                let target = if attempt == 0 || !self.store.inner.config.retry.failover {
                    closest
                } else {
                    let base = replicas.iter().position(|&n| n == closest).unwrap_or(0);
                    replicas[(base + attempt) % replicas.len()]
                };
                self.read_from(target, id, offset, len, ctx).await
            }
            Consistency::Linearizable => {
                let inline_limit = self.store.inner.config.inline_read_max;
                if inline_limit == 0 {
                    // Two-phase path: version quorum, then a directed
                    // read from the newest replica. Same write-back rule
                    // as the one-RTT path: a tag seen at fewer than a
                    // majority must be made durable before serving it.
                    let (replies, need) = self.tag_quorum(id, ctx).await?;
                    let &(newest_node, newest_tag) = replies
                        .iter()
                        .max_by_key(|(_, t)| *t)
                        .expect("quorum met implies at least one reply");
                    if newest_tag == Tag::ZERO {
                        return Err(PcsiError::NotFound(id));
                    }
                    let known: Vec<NodeId> = replies
                        .iter()
                        .filter(|(_, t)| *t == newest_tag)
                        .map(|(n, _)| *n)
                        .collect();
                    if known.len() < need {
                        self.write_back(id, newest_node, &known, need - known.len(), ctx)
                            .await?;
                    }
                    self.read_from(newest_node, id, offset, len, ctx).await
                } else {
                    self.read_one_rtt(id, offset, len, inline_limit, ctx).await
                }
            }
        }
    }

    /// One-RTT linearizable read: fan the read itself to every replica
    /// and take the newest tag among the first majority of replies. Any
    /// write-majority intersects any read-majority, so the newest tag
    /// seen is at least the last acknowledged write's. Replies above the
    /// inline limit degrade to a tag report, after which the newest
    /// replica is read directly (matching the old two-phase cost).
    ///
    /// When the quorum replies *disagree*, the newest value is known to
    /// be at fewer than a majority — a concurrent write may still be in
    /// flight. Returning it immediately would let a later read miss it
    /// (the classic regular-but-not-atomic register anomaly), so the
    /// read first **writes back**: it pushes the newest state until a
    /// majority durably holds it (ABD's second phase). The agreeing
    /// fast path stays one round trip.
    async fn read_one_rtt(
        &self,
        id: ObjectId,
        offset: u64,
        len: u64,
        inline_limit: u64,
        ctx: Option<TraceContext>,
    ) -> Result<Served, PcsiError> {
        let replicas = self.store.placement().replicas(id);
        let need = self.store.placement().majority();
        let total = replicas.len();
        let (tx, mut rx) = mpsc::channel::<Option<QuorumReply>>();
        // One encode for the whole quorum: every replica receives the
        // identical frame, so each send just bumps the refcount.
        let frame = wire::encode_request_traced(
            &Request::ReadWithTag {
                id,
                offset,
                len,
                inline_limit,
            },
            ctx,
        );
        for node in replicas {
            let tx = tx.clone();
            let fabric = self.store.inner.fabric.clone();
            let origin = self.origin;
            let req = frame.clone();
            self.store.inner.fabric.handle().spawn_detached(async move {
                let outcome = match call_store_raw(fabric, origin, node, req, None).await {
                    Ok(Response::Data {
                        tag,
                        mutability,
                        stable_len,
                        data,
                    }) => Some(QuorumReply {
                        node,
                        tag,
                        served: Some(Served {
                            tag,
                            mutability,
                            stable_len,
                            data,
                        }),
                    }),
                    Ok(Response::TagIs { tag }) => Some(QuorumReply {
                        node,
                        tag,
                        served: None,
                    }),
                    _ => None,
                };
                let _ = tx.send(outcome);
            });
        }
        drop(tx);

        let mut replies: Vec<QuorumReply> = Vec::with_capacity(total);
        let mut failed = 0usize;
        while replies.len() < need {
            match rx.recv().await {
                Some(Some(reply)) => replies.push(reply),
                Some(None) => {
                    failed += 1;
                    if total - failed < need {
                        return Err(PcsiError::QuorumUnavailable {
                            needed: need,
                            got: replies.len(),
                        });
                    }
                }
                None => {
                    return Err(PcsiError::QuorumUnavailable {
                        needed: need,
                        got: replies.len(),
                    });
                }
            }
        }

        // Newest tag wins; on a tie prefer a reply that carried bytes.
        let mut best = 0usize;
        for i in 1..replies.len() {
            let (a, b) = (&replies[best], &replies[i]);
            if b.tag > a.tag || (b.tag == a.tag && b.served.is_some() && a.served.is_none()) {
                best = i;
            }
        }
        let best_tag = replies[best].tag;
        if best_tag == Tag::ZERO {
            return Err(PcsiError::NotFound(id));
        }
        let holders = replies.iter().filter(|r| r.tag == best_tag).count();
        if holders < need {
            let known: Vec<NodeId> = replies
                .iter()
                .filter(|r| r.tag == best_tag)
                .map(|r| r.node)
                .collect();
            self.write_back(id, replies[best].node, &known, need - holders, ctx)
                .await?;
        }
        let best_node = replies[best].node;
        match replies.swap_remove(best).served {
            Some(served) => Ok(served),
            // Payload above the inline limit (or a tombstone): read the
            // newest replica directly.
            None => self.read_from(best_node, id, offset, len, ctx).await,
        }
    }

    /// ABD write-back (doubles as read repair): fetches the newest state
    /// from `source` and pushes it to every replica not already known to
    /// hold it, returning once `need_acks` pushes succeeded — at which
    /// point a majority durably holds the value and any later read
    /// quorum must observe it. `sync_in` tag checks on the receivers
    /// make stale or duplicate pushes harmless; the remaining pushes
    /// finish detached.
    async fn write_back(
        &self,
        id: ObjectId,
        source: NodeId,
        known: &[NodeId],
        need_acks: usize,
        ctx: Option<TraceContext>,
    ) -> Result<(), PcsiError> {
        let fetch = wire::encode_request_traced(&Request::Fetch { id }, ctx);
        let (object, reqs) = match call_store_raw(
            self.store.inner.fabric.clone(),
            self.origin,
            source,
            fetch,
            None,
        )
        .await
        {
            Ok(Response::Object { object, reqs }) => (object, reqs),
            // The object vanished between the read and the fetch —
            // a racing delete; surface it as such.
            Ok(Response::Absent) => return Err(PcsiError::NotFound(id)),
            _ => {
                return Err(PcsiError::QuorumUnavailable {
                    needed: need_acks,
                    got: 0,
                })
            }
        };
        let targets: Vec<NodeId> = self
            .store
            .placement()
            .replicas(id)
            .into_iter()
            .filter(|n| !known.contains(n))
            .collect();
        let total = targets.len();
        let (tx, mut rx) = mpsc::channel::<bool>();
        // Encode the push once — it embeds the full object payload, so
        // re-encoding (and deep-cloning the object) per peer would cost
        // O(replicas × object size).
        let frame = wire::encode_request_traced(&Request::Push { id, object, reqs }, ctx);
        for node in targets {
            let tx = tx.clone();
            let fabric = self.store.inner.fabric.clone();
            let origin = self.origin;
            let push = frame.clone();
            self.store.inner.fabric.handle().spawn_detached(async move {
                let ok = matches!(
                    call_store_raw(fabric, origin, node, push, None).await,
                    Ok(Response::Applied)
                );
                let _ = tx.send(ok);
            });
        }
        drop(tx);
        let mut ok = 0usize;
        let mut failed = 0usize;
        while ok < need_acks {
            match rx.recv().await {
                Some(true) => ok += 1,
                Some(false) => {
                    failed += 1;
                    if total - failed < need_acks {
                        return Err(PcsiError::QuorumUnavailable {
                            needed: need_acks,
                            got: ok,
                        });
                    }
                }
                None => {
                    return Err(PcsiError::QuorumUnavailable {
                        needed: need_acks,
                        got: ok,
                    });
                }
            }
        }
        Ok(())
    }

    /// Queries all replicas for their tag and returns the first majority
    /// of `(node, tag)` replies plus the majority size.
    async fn tag_quorum(
        &self,
        id: ObjectId,
        ctx: Option<TraceContext>,
    ) -> Result<(Vec<(NodeId, Tag)>, usize), PcsiError> {
        let replicas = self.store.placement().replicas(id);
        let need = self.store.placement().majority();
        let total = replicas.len();
        let (tx, mut rx) = mpsc::channel::<Option<(NodeId, Tag)>>();
        let frame = wire::encode_request_traced(&Request::TagOf { id }, ctx);
        for node in replicas {
            let tx = tx.clone();
            let fabric = self.store.inner.fabric.clone();
            let origin = self.origin;
            let req = frame.clone();
            self.store.inner.fabric.handle().spawn_detached(async move {
                let outcome = match call_store_raw(fabric, origin, node, req, None).await {
                    Ok(Response::TagIs { tag }) => Some((node, tag)),
                    _ => None,
                };
                let _ = tx.send(outcome);
            });
        }
        drop(tx);

        let mut replies: Vec<(NodeId, Tag)> = Vec::with_capacity(need);
        let mut failed = 0usize;
        while replies.len() < need {
            match rx.recv().await {
                Some(Some(reply)) => replies.push(reply),
                Some(None) => {
                    failed += 1;
                    if total - failed < need {
                        return Err(PcsiError::QuorumUnavailable {
                            needed: need,
                            got: replies.len(),
                        });
                    }
                }
                None => {
                    return Err(PcsiError::QuorumUnavailable {
                        needed: need,
                        got: replies.len(),
                    })
                }
            }
        }
        Ok((replies, need))
    }

    async fn read_from(
        &self,
        replica: NodeId,
        id: ObjectId,
        offset: u64,
        len: u64,
        ctx: Option<TraceContext>,
    ) -> Result<Served, PcsiError> {
        match self
            .call_store(replica, &Request::Read { id, offset, len }, ctx)
            .await?
        {
            Response::Data {
                tag,
                mutability,
                stable_len,
                data,
            } => Ok(Served {
                tag,
                mutability,
                stable_len,
                data,
            }),
            other => Err(PcsiError::Fault(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches the whole object at the requested consistency.
    pub async fn read_all(
        &self,
        id: ObjectId,
        consistency: Consistency,
    ) -> Result<(Tag, Bytes), PcsiError> {
        self.read(id, 0, u64::MAX, consistency).await
    }
}

/// One encoded request/response round trip over the fabric, decoded and
/// error-mapped, optionally raced against a per-attempt `deadline`. A
/// free function (rather than a `StoreClient` method) so the spawned
/// fan-out tasks of quorum reads and read repair can use it.
async fn call_store_raw(
    fabric: Fabric,
    from: NodeId,
    to: NodeId,
    req: Bytes,
    deadline: Option<Duration>,
) -> Result<Response, PcsiError> {
    let raw = match deadline {
        Some(d) => {
            fabric
                .call_with_deadline(from, to, STORE_SERVICE, STORE_TRANSPORT, req, d)
                .await
        }
        None => {
            fabric
                .call(from, to, STORE_SERVICE, STORE_TRANSPORT, req)
                .await
        }
    }
    .map_err(net_to_pcsi)?;
    match wire::decode_response(&raw) {
        Ok(Response::Err(e)) => Err(e.into_pcsi()),
        Ok(resp) => Ok(resp),
        Err(e) => Err(PcsiError::BadPayload(e.to_string())),
    }
}

/// Honest transport-error taxonomy. A single failed RPC says nothing
/// about the quorum as a whole, so it must *not* masquerade as
/// [`PcsiError::QuorumUnavailable`] — that variant is reserved for
/// genuine quorum math. Unreachable peers and expired deadlines map to
/// their own retryable variants.
fn net_to_pcsi(e: NetError) -> PcsiError {
    match &e {
        NetError::NodeDown(_) | NetError::Partitioned(_, _) | NetError::Dropped(_, _) => {
            PcsiError::Unreachable(e.to_string())
        }
        NetError::DeadlineExceeded => PcsiError::Timeout,
        _ => PcsiError::Fault(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcsi_net::{LatencyModel, NetworkGeneration, Topology};
    use pcsi_sim::Sim;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(5, n)
    }

    /// Builds a 9-node cluster (3 racks x 3) with a 3-replica store.
    fn deploy(sim: &Sim, anti_entropy: bool) -> (Fabric, ReplicatedStore) {
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: if anti_entropy {
                    Some(Duration::from_millis(50))
                } else {
                    None
                },
                inline_read_max: 64 * 1024,
                cache_bytes: 1 << 20,
                ..StoreConfig::default()
            },
        );
        (fabric, store)
    }

    #[test]
    fn put_then_linearizable_read_roundtrips() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        let out = sim.block_on(async move {
            let c = store.client(NodeId(0));
            c.put(
                oid(1),
                Bytes::from_static(b"hello"),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            c.read_all(oid(1), Consistency::Linearizable).await.unwrap()
        });
        assert_eq!(&out.1[..], b"hello");
        assert_eq!(out.0.seq, 1);
    }

    #[test]
    fn linearizable_read_sees_latest_write_from_any_node() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        sim.block_on(async move {
            let writer = store.client(NodeId(0));
            let reader = store.client(NodeId(8));
            for i in 0..10u8 {
                writer
                    .put(
                        oid(1),
                        Bytes::from(vec![i]),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                let (_, data) = reader
                    .read_all(oid(1), Consistency::Linearizable)
                    .await
                    .unwrap();
                assert_eq!(data[0], i, "stale linearizable read at i = {i}");
            }
        });
    }

    #[test]
    fn eventual_write_is_faster_than_linearizable() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let h = fabric.handle().clone();
        let (lin, ev) = sim.block_on(async move {
            // Same object both times so the placement (and therefore the
            // client -> primary distance) is identical; client is not a
            // replica so both consistency levels pay the same first hop.
            let id = oid(1);
            let replicas = store.placement().replicas(id);
            let client_node = fabric
                .topology()
                .node_ids()
                .into_iter()
                .find(|n| !replicas.contains(n))
                .unwrap();
            let c = store.client(client_node);
            let t0 = h.now();
            c.put(
                id,
                Bytes::from_static(b"a"),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            let lin = h.now() - t0;
            let t1 = h.now();
            c.put(
                id,
                Bytes::from_static(b"b"),
                Mutability::Mutable,
                Consistency::Eventual,
            )
            .await
            .unwrap();
            (lin, h.now() - t1)
        });
        assert!(
            lin.as_nanos() > ev.as_nanos() * 13 / 10,
            "linearizable {lin:?} vs eventual {ev:?}"
        );
    }

    #[test]
    fn eventual_read_can_be_stale_then_converges() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let h = fabric.handle().clone();
        sim.block_on({
            let store = store.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(7);
                c.put(
                    id,
                    Bytes::from_static(b"v1"),
                    Mutability::Mutable,
                    Consistency::Eventual,
                )
                .await
                .unwrap();
                c.put(
                    id,
                    Bytes::from_static(b"v2"),
                    Mutability::Mutable,
                    Consistency::Eventual,
                )
                .await
                .unwrap();
                // A reader sitting next to a secondary may see v1 or v2
                // immediately after the ack; after anti-entropy rounds it
                // must see v2 everywhere.
                for r in store.replicas() {
                    r.anti_entropy_once().await;
                }
                h.sleep(Duration::from_millis(5)).await;
                for node in [0u32, 3, 6, 8] {
                    let (tag, data) = store
                        .client(NodeId(node))
                        .read_all(id, Consistency::Eventual)
                        .await
                        .unwrap();
                    assert_eq!(&data[..], b"v2", "node {node} still stale");
                    assert_eq!(tag.seq, 2);
                }
            }
        });
    }

    #[test]
    fn linearizable_write_fails_without_majority() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let err = sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(3);
                let replicas = store.placement().replicas(id);
                // Crash both secondaries: majority (2 of 3) unreachable.
                fabric.set_node_down(replicas[1], true);
                fabric.set_node_down(replicas[2], true);
                store
                    .client(NodeId(0))
                    .put(
                        id,
                        Bytes::from_static(b"x"),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap_err()
            }
        });
        assert!(
            matches!(err, PcsiError::QuorumUnavailable { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn eventual_write_survives_secondary_crashes() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let ok = sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(4);
                let replicas = store.placement().replicas(id);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                fabric.set_node_down(replicas[1], true);
                fabric.set_node_down(replicas[2], true);
                store
                    .client(client_node)
                    .put(
                        id,
                        Bytes::from_static(b"x"),
                        Mutability::Mutable,
                        Consistency::Eventual,
                    )
                    .await
                    .is_ok()
            }
        });
        assert!(ok);
    }

    #[test]
    fn linearizable_read_tolerates_one_crash() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        let data = sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(5);
                store
                    .client(NodeId(0))
                    .put(
                        id,
                        Bytes::from_static(b"resilient"),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                let replicas = store.placement().replicas(id);
                fabric.set_node_down(replicas[0], true); // Even the primary.
                store
                    .client(NodeId(0))
                    .read_all(id, Consistency::Linearizable)
                    .await
                    .unwrap()
                    .1
            }
        });
        assert_eq!(&data[..], b"resilient");
    }

    #[test]
    fn missing_object_reported_not_found() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        let (lin, ev) = sim.block_on(async move {
            let c = store.client(NodeId(1));
            let lin = c.read_all(oid(99), Consistency::Linearizable).await;
            let ev = c.read_all(oid(99), Consistency::Eventual).await;
            (lin, ev)
        });
        assert!(matches!(lin, Err(PcsiError::NotFound(_))), "{lin:?}");
        assert!(matches!(ev, Err(PcsiError::NotFound(_))), "{ev:?}");
    }

    #[test]
    fn delete_propagates_and_tombstones() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, true);
        sim.block_on({
            let store = store.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(6);
                c.put(
                    id,
                    Bytes::from_static(b"temp"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                c.delete(id).await.unwrap();
                let r = c.read_all(id, Consistency::Linearizable).await;
                assert!(matches!(r, Err(PcsiError::NotFound(_))));
                // Anti-entropy must not resurrect it.
                for r in store.replicas() {
                    r.anti_entropy_once().await;
                }
                let r = c.read_all(id, Consistency::Eventual).await;
                assert!(matches!(r, Err(PcsiError::NotFound(_))));
            }
        });
    }

    #[test]
    fn append_only_workflow_through_store() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        sim.block_on(async move {
            let c = store.client(NodeId(2));
            let id = oid(8);
            c.put(
                id,
                Bytes::from_static(b""),
                Mutability::AppendOnly,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            c.append(id, Bytes::from_static(b"one,"), Consistency::Linearizable)
                .await
                .unwrap();
            c.append(id, Bytes::from_static(b"two"), Consistency::Linearizable)
                .await
                .unwrap();
            let err = c
                .write_at(id, 0, Bytes::from_static(b"X"), Consistency::Linearizable)
                .await
                .unwrap_err();
            assert!(matches!(err, PcsiError::MutabilityViolation { .. }));
            let (_, data) = c.read_all(id, Consistency::Linearizable).await.unwrap();
            assert_eq!(&data[..], b"one,two");
            // Seal it and verify writes of any kind now fail.
            c.set_mutability(id, Mutability::Immutable, Consistency::Linearizable)
                .await
                .unwrap();
            let err = c
                .append(id, Bytes::from_static(b"!"), Consistency::Linearizable)
                .await
                .unwrap_err();
            assert!(matches!(err, PcsiError::MutabilityViolation { .. }));
        });
    }

    #[test]
    fn one_rtt_read_is_faster_than_two_phase() {
        // Same cluster and workload, with only the inline threshold
        // toggled: the one-RTT quorum read must beat tag-quorum-then-read.
        let lat = |inline_read_max: u64| {
            let mut sim = Sim::new(42);
            let fabric = Fabric::new(
                sim.handle(),
                Topology::uniform(3, 3),
                LatencyModel::deterministic(NetworkGeneration::Dc2021),
            );
            let store = ReplicatedStore::launch(
                fabric.clone(),
                fabric.topology().node_ids(),
                StoreConfig {
                    n_replicas: 3,
                    tier: MediaTier::Dram,
                    anti_entropy: None,
                    inline_read_max,
                    cache_bytes: 0,
                    ..StoreConfig::default()
                },
            );
            let h = fabric.handle().clone();
            sim.block_on(async move {
                // Read from a node holding no replica: the two-phase
                // path's second hop is then a real cross-fabric RTT.
                let replicas = store.placement().replicas(oid(1));
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                let c = store.client(client_node);
                c.put(
                    oid(1),
                    Bytes::from(vec![7u8; 1024]),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                let t0 = h.now();
                c.read_all(oid(1), Consistency::Linearizable).await.unwrap();
                h.now() - t0
            })
        };
        let one_rtt = lat(64 * 1024);
        let two_phase = lat(0);
        assert!(
            one_rtt.as_nanos() * 13 / 10 < two_phase.as_nanos(),
            "one-RTT {one_rtt:?} should clearly beat two-phase {two_phase:?}"
        );
    }

    #[test]
    fn large_objects_fall_back_to_directed_read() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        sim.block_on(async move {
            let c = store.client(NodeId(0));
            // Larger than the 64 KiB inline limit.
            let big = vec![9u8; 100 * 1024];
            c.put(
                oid(2),
                Bytes::from(big.clone()),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            let (tag, data) = c.read_all(oid(2), Consistency::Linearizable).await.unwrap();
            assert_eq!(tag.seq, 1);
            assert_eq!(data.len(), big.len());
        });
    }

    #[test]
    fn immutable_reads_hit_cache_with_zero_fabric_traffic() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        sim.block_on({
            let store = store.clone();
            async move {
                let c = store.client(NodeId(4));
                c.put(
                    oid(3),
                    Bytes::from_static(b"frozen asset"),
                    Mutability::Immutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // First read fills the node-local cache.
                let (tag1, d1) = c.read_all(oid(3), Consistency::Linearizable).await.unwrap();
                let msgs_before = fabric.message_count();
                for _ in 0..10 {
                    let (tag, d) = c.read_all(oid(3), Consistency::Linearizable).await.unwrap();
                    assert_eq!(&d[..], &d1[..]);
                    assert_eq!(tag, tag1);
                }
                assert_eq!(
                    fabric.message_count(),
                    msgs_before,
                    "cached reads must not touch the fabric"
                );
                let stats = store.cache_stats();
                assert_eq!(stats.hits, 10);
                // A different node has its own (cold) cache.
                let other = store.client(NodeId(7));
                let before = store.cache_stats().misses;
                other.read_all(oid(3), Consistency::Eventual).await.unwrap();
                assert_eq!(store.cache_stats().misses, before + 1);
            }
        });
    }

    #[test]
    fn cache_stats_aggregate_evictions_across_nodes() {
        let mut sim = Sim::new(42);
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        // A 1 KiB per-node cache: each 400-byte immutable object fits,
        // but no node can hold all three at once.
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 1024,
                ..StoreConfig::default()
            },
        );
        sim.block_on({
            let store = store.clone();
            async move {
                for n in 0..3u64 {
                    store
                        .client(NodeId(0))
                        .put(
                            oid(100 + n),
                            Bytes::from(vec![n as u8; 400]),
                            Mutability::Immutable,
                            Consistency::Linearizable,
                        )
                        .await
                        .unwrap();
                }
                // Two nodes each read all three objects: 2 entries fit,
                // the third admit evicts the LRU — once per node.
                for node in [NodeId(1), NodeId(5)] {
                    let c = store.client(node);
                    for n in 0..3u64 {
                        c.read_all(oid(100 + n), Consistency::Linearizable)
                            .await
                            .unwrap();
                    }
                }
            }
        });
        let stats = store.cache_stats();
        assert_eq!(stats.evictions, 2, "one eviction on each reading node");
        assert_eq!(stats.misses, 6, "every first read misses");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn delete_invalidates_cached_copies() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy(&sim, false);
        sim.block_on(async move {
            let c = store.client(NodeId(0));
            c.put(
                oid(4),
                Bytes::from_static(b"short lived"),
                Mutability::Immutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();
            c.read_all(oid(4), Consistency::Linearizable).await.unwrap();
            c.delete(oid(4)).await.unwrap();
            let r = c.read_all(oid(4), Consistency::Linearizable).await;
            assert!(matches!(r, Err(PcsiError::NotFound(_))), "{r:?}");
        });
    }

    #[test]
    fn quorum_read_repairs_stale_replica() {
        let mut sim = Sim::new(44);
        let (fabric, store) = deploy(&sim, false); // No anti-entropy.
        let h = fabric.handle().clone();
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(5);
                let replicas = store.placement().replicas(id);
                c.put(
                    id,
                    Bytes::from_static(b"v1"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                h.sleep(Duration::from_millis(5)).await;
                // Isolate one secondary, write v2 past it, then heal.
                let lagging = replicas[2];
                let others: Vec<NodeId> = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .filter(|&n| n != lagging)
                    .collect();
                fabric.partition(&[lagging], &others);
                c.put(
                    id,
                    Bytes::from_static(b"v2"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                fabric.heal_partitions();
                // Quorum reads observe the lagging replica's old tag and
                // push it the new state — no anti-entropy involved. Read
                // from a client co-located with the laggard so its (old)
                // reply is always part of the first majority.
                let reader = store.client(lagging);
                for _ in 0..5 {
                    let (tag, data) = reader
                        .read_all(id, Consistency::Linearizable)
                        .await
                        .unwrap();
                    assert_eq!(tag.seq, 2);
                    assert_eq!(&data[..], b"v2");
                    h.sleep(Duration::from_millis(2)).await;
                }
                let repaired: u64 = store.replicas().iter().map(|r| r.repaired_count()).sum();
                assert!(repaired > 0, "read repair should have fired");
                let local = store
                    .replica_on(lagging)
                    .unwrap()
                    .with_engine(|e| e.read(id, 0, 100).map(|b| b.to_vec()));
                assert_eq!(local.unwrap(), b"v2");
            }
        });
    }

    #[test]
    fn writes_fail_over_past_a_crashed_primary() {
        // The primary of the object is down, but a majority of replicas
        // is alive: the recovery layer must route the coordination to
        // the next replica in placement order instead of surfacing an
        // error to the client.
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(30);
                let replicas = store.placement().replicas(id);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                let c = store.client(client_node);
                c.put(
                    id,
                    Bytes::from_static(b"v1"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                fabric.set_node_down(replicas[0], true);
                let tag = c
                    .write_at(id, 0, Bytes::from_static(b"v2"), Consistency::Linearizable)
                    .await
                    .expect("a live majority must absorb the write");
                assert_eq!(tag.writer, replicas[1].0, "ordered by the failover target");
                let stats = store.retry_stats();
                assert!(stats.failovers >= 1, "failover never fired: {stats:?}");
                assert!(
                    stats.retries >= 1,
                    "per-target retries never fired: {stats:?}"
                );
                let (read_tag, data) = c.read_all(id, Consistency::Linearizable).await.unwrap();
                assert_eq!(read_tag, tag);
                assert_eq!(&data[..], b"v2");
            }
        });
    }

    #[test]
    fn dropped_messages_time_out_and_fail_over() {
        // Every message on the client <-> primary link vanishes. With a
        // per-attempt deadline below the fabric's retransmit timeout,
        // each attempt against the primary surfaces as a client-side
        // timeout — the path that finally generates `PcsiError::Timeout`
        // — and the write still succeeds via failover.
        let mut sim = Sim::new(42);
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 0,
                retry: RetryPolicy {
                    attempt_timeout: Some(Duration::from_millis(1)),
                    ..RetryPolicy::default()
                },
                ring_nodes: None,
            },
        );
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(31);
                let replicas = store.placement().replicas(id);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                fabric.set_link_faults(
                    client_node,
                    replicas[0],
                    pcsi_net::MessageFaults {
                        drop: 1.0,
                        duplicate: 0.0,
                        delay_spike: 0.0,
                        spike: Duration::ZERO,
                    },
                );
                let c = store.client(client_node);
                let tag = c
                    .put(
                        id,
                        Bytes::from_static(b"survives"),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .expect("a dropped link to the primary must not fail the write");
                assert_eq!(tag.writer, replicas[1].0);
                let stats = store.retry_stats();
                assert!(stats.timeouts >= 1, "attempts never timed out: {stats:?}");
                assert!(stats.failovers >= 1, "failover never fired: {stats:?}");
                let (_, data) = c.read_all(id, Consistency::Linearizable).await.unwrap();
                assert_eq!(&data[..], b"survives");
            }
        });
    }

    #[test]
    fn ambiguous_delete_failure_invalidates_caches() {
        // A delete that errs ambiguously may still have landed a
        // tombstone server-side (here: the full-set ack fails because
        // one Apply is dropped, but a majority did apply). The cache
        // must be invalidated on that ambiguous failure too — otherwise
        // a cached "immutable" copy serves deleted bytes forever.
        let mut sim = Sim::new(42);
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 1 << 20,
                // Single-shot so the ambiguous verdict surfaces directly.
                retry: RetryPolicy::none(),
                ring_nodes: None,
            },
        );
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(32);
                let replicas = store.placement().replicas(id);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                let c = store.client(client_node);
                c.put(
                    id,
                    Bytes::from_static(b"doomed"),
                    Mutability::Immutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // Cache the immutable object on the client's node.
                c.read_all(id, Consistency::Linearizable).await.unwrap();
                // Lose the replication traffic to the last replica: the
                // tombstone lands on a majority, but the full-set delete
                // ack fails — an ambiguous outcome for the client.
                fabric.set_link_faults(
                    replicas[0],
                    replicas[2],
                    pcsi_net::MessageFaults {
                        drop: 1.0,
                        duplicate: 0.0,
                        delay_spike: 0.0,
                        spike: Duration::ZERO,
                    },
                );
                let err = c.delete(id).await.unwrap_err();
                assert!(
                    err.is_retryable(),
                    "delete verdict must be ambiguous: {err:?}"
                );
                fabric.clear_message_faults();
                // The cached copy must be gone: the next read goes to the
                // quorum and observes the tombstone instead of serving
                // the deleted bytes from cache.
                let r = c.read_all(id, Consistency::Linearizable).await;
                assert!(
                    matches!(r, Err(PcsiError::NotFound(_))),
                    "cache served a deleted object: {r:?}"
                );
            }
        });
    }

    /// Coordinates one append on `target` over the raw wire, bypassing
    /// the client recovery layer (fault-scenario choreography).
    async fn raw_append(
        fabric: &Fabric,
        from: NodeId,
        target: NodeId,
        id: ObjectId,
        data: &'static [u8],
        req_id: u64,
    ) -> Response {
        let req = wire::encode_request(&Request::Coordinate {
            id,
            mutation: Mutation::Append {
                data: Bytes::from_static(data),
            },
            sync_replicas: 1,
            req_id,
            expires_ns: 0,
        });
        let raw = fabric
            .call(from, target, STORE_SERVICE, STORE_TRANSPORT, req)
            .await
            .expect("raw coordinate must reach the target");
        wire::decode_response(&raw).unwrap()
    }

    fn replica_bytes(store: &ReplicatedStore, node: NodeId, id: ObjectId) -> Vec<u8> {
        store
            .replica_on(node)
            .unwrap()
            .with_engine(|e| e.read(id, 0, u64::MAX).map(|b| b.to_vec()))
            .unwrap_or_default()
    }

    #[test]
    fn failover_reorder_does_not_double_apply() {
        // Regression for the exactly-once hole: a coordination succeeds
        // server-side at the primary (its fan-out reached one secondary)
        // but the ack to the client is lost. The client fails over; the
        // failover target never saw the request and re-orders it at a
        // fresh higher tag. Replicas that already applied it must answer
        // `AlreadyApplied` instead of applying the non-idempotent append
        // a second time — before the fix they deduplicated only by tag,
        // and the fresh tag sailed past that check.
        let mut sim = Sim::new(42);
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 0,
                retry: RetryPolicy {
                    attempt_timeout: None,
                    op_deadline: None,
                    attempts_per_target: 1,
                    failover: true,
                    base_backoff: Duration::from_micros(10),
                    max_backoff: Duration::from_micros(10),
                    jitter: 0.0,
                },
                ring_nodes: None,
            },
        );
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(40);
                let replicas = store.placement().replicas(id);
                let (a, b) = (replicas[0], replicas[1]);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                let c = store.client(client_node);
                c.put(
                    id,
                    Bytes::from_static(b"base"),
                    Mutability::AppendOnly,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // The primary cannot reach the failover target, so the
                // target will not learn of the append from the fan-out.
                fabric.partition(&[a], &[b]);
                // Once the primary has received the append (and before
                // it can reply), cut it off from the client: the
                // coordination still completes server-side (the third
                // replica acks the majority) but the client sees an
                // ambiguous transport error and fails over.
                let watcher = {
                    let ra = store.replica_on(a).unwrap().clone();
                    let fabric = fabric.clone();
                    let h = fabric.handle().clone();
                    async move {
                        while ra.coordinated_count() < 2 {
                            h.sleep(Duration::from_micros(1)).await;
                        }
                        fabric.partition(&[client_node], &[a]);
                    }
                };
                drop(fabric.handle().spawn(watcher));
                let tag = c
                    .append(id, Bytes::from_static(b"x"), Consistency::Linearizable)
                    .await
                    .expect("failover must absorb the lost-ack append");
                assert_eq!(tag.writer, b.0, "re-ordered by the failover target");
                assert!(store.retry_stats().failovers >= 1);
                fabric.heal_partitions();
                // Pulls target a random storage node (not necessarily a
                // fellow replica), so run rounds until the set agrees.
                for _ in 0..64 {
                    if replicas
                        .iter()
                        .all(|&n| replica_bytes(&store, n, id) == b"basex")
                    {
                        break;
                    }
                    for r in store.replicas() {
                        r.anti_entropy_once().await;
                    }
                }
                for &node in &replicas {
                    assert_eq!(
                        replica_bytes(&store, node, id),
                        b"basex",
                        "append applied exactly once on {node} after failover re-order",
                    );
                }
            }
        });
    }

    #[test]
    fn replay_does_not_ack_peers_ahead_without_the_request() {
        // Regression for the unsound replay ack: the primary applies a
        // write locally but loses its whole fan-out; while the client
        // backs off, two unrelated writes land on the other replicas
        // through a different coordinator. The retried coordination
        // replays at the recorded tag and finds both peers *ahead* of it
        // — on a history line that does not contain the write. Before
        // the fix `Stale { newest >= tag }` counted as an ack, so the
        // replay reported success while the write existed only on the
        // primary's losing line and silently vanished at convergence.
        let mut sim = Sim::new(42);
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 0,
                retry: RetryPolicy {
                    attempt_timeout: None,
                    op_deadline: None,
                    attempts_per_target: 2,
                    failover: true,
                    // A fixed, jitter-free backoff wide enough for the
                    // concurrent writes to land inside it.
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(5),
                    jitter: 0.0,
                },
                ring_nodes: None,
            },
        );
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(41);
                let replicas = store.placement().replicas(id);
                let (a, b, c_node) = (replicas[0], replicas[1], replicas[2]);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                let client = store.client(client_node);
                client
                    .put(
                        id,
                        Bytes::from_static(b"p"),
                        Mutability::AppendOnly,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                // Isolate the primary from its peers (the client still
                // reaches it): attempt 1 applies locally, loses the
                // fan-out, and surfaces QuorumUnavailable.
                fabric.partition(&[a], &[b, c_node]);
                // During the client's backoff: land two writes on the
                // rest of the set through replica B, then heal — the
                // retry's replay now finds its peers ahead of the
                // recorded tag without holding the request.
                let racer = {
                    let store = store.clone();
                    let fabric = fabric.clone();
                    let h = fabric.handle().clone();
                    async move {
                        while store.retry_stats().retries < 1 {
                            h.sleep(Duration::from_micros(5)).await;
                        }
                        let r1 = raw_append(&fabric, client_node, b, id, b"a", 900).await;
                        assert!(matches!(r1, Response::Coordinated { .. }), "{r1:?}");
                        let r2 = raw_append(&fabric, client_node, b, id, b"b", 901).await;
                        assert!(matches!(r2, Response::Coordinated { .. }), "{r2:?}");
                        fabric.heal_partitions();
                    }
                };
                drop(fabric.handle().spawn(racer));
                let tag = client
                    .append(id, Bytes::from_static(b"x"), Consistency::Linearizable)
                    .await
                    .expect("failover must land the append on the winning line");
                // The replay against the primary must NOT have claimed
                // success at the recorded tag; the write lands re-ordered
                // by the failover target, above the concurrent writes.
                assert_eq!(tag.writer, b.0, "ordered by the failover target");
                assert!(tag.seq >= 4, "ordered above the concurrent writes: {tag}");
                let stats = store.retry_stats();
                assert!(stats.retries >= 2 && stats.failovers >= 1, "{stats:?}");
                // Pulls target a random storage node (not necessarily a
                // fellow replica), so run rounds until the set agrees.
                for _ in 0..64 {
                    if replicas
                        .iter()
                        .all(|&n| replica_bytes(&store, n, id) == b"pabx")
                    {
                        break;
                    }
                    for r in store.replicas() {
                        r.anti_entropy_once().await;
                    }
                }
                for &node in &replicas {
                    assert_eq!(
                        replica_bytes(&store, node, id),
                        b"pabx",
                        "acknowledged append must survive convergence on {node}",
                    );
                }
            }
        });
    }

    /// 9 storage nodes with an 8-node initial ring: `NodeId(8)` runs a
    /// replica engine but holds no data until joined.
    fn deploy_with_standby(sim: &Sim) -> (Fabric, ReplicatedStore) {
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let all = fabric.topology().node_ids();
        let store = ReplicatedStore::launch(
            fabric.clone(),
            all.clone(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 0,
                ring_nodes: Some(all[..8].to_vec()),
                ..StoreConfig::default()
            },
        );
        (fabric, store)
    }

    #[test]
    fn join_migrates_data_and_flips_routing() {
        let mut sim = Sim::new(42);
        let (_fabric, store) = deploy_with_standby(&sim);
        sim.block_on({
            let store = store.clone();
            async move {
                let spare = NodeId(8);
                assert!(!store.placement().is_member(spare));
                let c = store.client(NodeId(0));
                for n in 0..50u64 {
                    c.put(
                        oid(n),
                        Bytes::from(vec![n as u8; 64]),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                }
                let epoch_before = store.placement().epoch();
                let moved = store.join_node(spare).await.unwrap();
                assert!(moved >= 1, "a 50-object join moved nothing");
                assert!(store.placement().is_member(spare));
                assert_eq!(store.placement().epoch(), epoch_before + 1);
                assert!(store.placement().pending_moves().is_empty());
                // The joiner owns (and physically holds) part of the space.
                let owns = (0..50u64)
                    .filter(|&n| store.placement().replicas(oid(n)).contains(&spare))
                    .count();
                assert!(owns >= 1, "the joiner took over no replica sets");
                assert!(
                    store.replica_on(spare).unwrap().migrated_in_count() >= 1,
                    "no sealed snapshot landed on the joiner"
                );
                // Every object still reads back correctly — including the
                // migrated ones, served by their new owners.
                for n in 0..50u64 {
                    let (_, data) = c.read_all(oid(n), Consistency::Linearizable).await.unwrap();
                    assert_eq!(&data[..], &vec![n as u8; 64][..], "object {n} corrupted");
                }
            }
        });
    }

    #[test]
    fn decommission_moves_data_off_the_departing_node() {
        let mut sim = Sim::new(42);
        let (fabric, store) = deploy(&sim, false);
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let c = store.client(NodeId(0));
                for n in 0..50u64 {
                    c.put(
                        oid(n),
                        Bytes::from(vec![n as u8; 64]),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                }
                let leaving = NodeId(3);
                store.decommission_node(leaving).await.unwrap();
                assert!(!store.placement().is_member(leaving));
                assert!(store.placement().pending_moves().is_empty());
                for n in 0..50u64 {
                    assert!(
                        !store.placement().replicas(oid(n)).contains(&leaving),
                        "object {n} still routed at the decommissioned node"
                    );
                }
                // The node can now actually go away without data loss.
                fabric.set_node_down(leaving, true);
                for n in 0..50u64 {
                    let (_, data) = c.read_all(oid(n), Consistency::Linearizable).await.unwrap();
                    assert_eq!(&data[..], &vec![n as u8; 64][..], "object {n} lost");
                }
            }
        });
    }

    #[test]
    fn migration_preserves_a_partially_replicated_delete() {
        // A delete lands on a majority but one replica keeps stale live
        // bytes (its replication message was dropped). Migrating the
        // object off the tombstoned primary must move the *delete*, not
        // resurrect the stale survivor's data — and anti-entropy
        // afterwards must not bring it back either.
        let mut sim = Sim::new(42);
        let fabric = Fabric::new(
            sim.handle(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: 64 * 1024,
                cache_bytes: 0,
                retry: RetryPolicy::none(),
                ..StoreConfig::default()
            },
        );
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let id = oid(60);
                let replicas = store.placement().replicas(id);
                let client_node = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .find(|n| !replicas.contains(n))
                    .unwrap();
                let c = store.client(client_node);
                c.put(
                    id,
                    Bytes::from_static(b"doomed"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // Drop the delete's replication to the last replica: the
                // tombstone lands on a majority, the straggler keeps the
                // live bytes.
                fabric.set_link_faults(
                    replicas[0],
                    replicas[2],
                    pcsi_net::MessageFaults {
                        drop: 1.0,
                        duplicate: 0.0,
                        delay_spike: 0.0,
                        spike: Duration::ZERO,
                    },
                );
                let err = c.delete(id).await.unwrap_err();
                assert!(err.is_retryable(), "delete should be ambiguous: {err:?}");
                fabric.clear_message_faults();
                assert_eq!(replica_bytes(&store, replicas[2], id), b"doomed");
                // Move the object off its (tombstoned) primary.
                store.decommission_node(replicas[0]).await.unwrap();
                let r = c.read_all(id, Consistency::Linearizable).await;
                assert!(
                    matches!(r, Err(PcsiError::NotFound(_))),
                    "migration resurrected a deleted object: {r:?}"
                );
                // The stale survivor must not resurrect it later either.
                for _ in 0..8 {
                    for r in store.replicas() {
                        r.anti_entropy_once().await;
                    }
                }
                let r = c.read_all(id, Consistency::Linearizable).await;
                assert!(
                    matches!(r, Err(PcsiError::NotFound(_))),
                    "anti-entropy resurrected a deleted object: {r:?}"
                );
            }
        });
    }

    #[test]
    fn writes_issued_during_a_migration_land_exactly_once() {
        // Client appends race a join's drain loop: every acknowledged
        // append must appear exactly once in the final bytes, no matter
        // how the freeze windows interleave with the writes.
        let mut sim = Sim::new(7);
        let (fabric, store) = deploy_with_standby(&sim);
        let h = fabric.handle().clone();
        sim.block_on({
            let store = store.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(70);
                c.put(
                    id,
                    Bytes::new(),
                    Mutability::AppendOnly,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                for n in 0..20u64 {
                    c.put(
                        oid(100 + n),
                        Bytes::from(vec![n as u8; 256]),
                        Mutability::Mutable,
                        Consistency::Linearizable,
                    )
                    .await
                    .unwrap();
                }
                // Background writer: one appender racing the drain.
                let writer = {
                    let store = store.clone();
                    let h = h.clone();
                    async move {
                        let c = store.client(NodeId(4));
                        let mut acked = Vec::new();
                        for i in 0..30u8 {
                            let payload = Bytes::from(vec![i]);
                            if c.append(id, payload.clone(), Consistency::Linearizable)
                                .await
                                .is_ok()
                            {
                                acked.push(i);
                            }
                            h.sleep(Duration::from_micros(200)).await;
                        }
                        acked
                    }
                };
                let writer_task = h.spawn(writer);
                let pacer = Pacer::new(h.clone(), Duration::from_micros(500));
                store.begin_join(NodeId(8));
                store.drain_moves(Some(&pacer)).await.unwrap();
                let acked = writer_task.await;
                // Quiesce: every replica of the final set converges.
                for _ in 0..8 {
                    for r in store.replicas() {
                        r.anti_entropy_once().await;
                    }
                }
                let (_, data) = c.read_all(id, Consistency::Linearizable).await.unwrap();
                for &b in &acked {
                    let count = data.iter().filter(|&&x| x == b).count();
                    assert_eq!(
                        count, 1,
                        "acked append {b} appears {count} times in {data:?}"
                    );
                }
            }
        });
    }

    #[test]
    fn partition_isolates_minority_and_heals() {
        let mut sim = Sim::new(43);
        let (fabric, store) = deploy(&sim, true);
        let h = fabric.handle().clone();
        sim.block_on({
            let store = store.clone();
            let fabric = fabric.clone();
            async move {
                let c = store.client(NodeId(0));
                let id = oid(9);
                let replicas = store.placement().replicas(id);
                c.put(
                    id,
                    Bytes::from_static(b"v1"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // Partition one secondary away from everyone.
                let isolated = replicas[2];
                let others: Vec<NodeId> = fabric
                    .topology()
                    .node_ids()
                    .into_iter()
                    .filter(|&n| n != isolated)
                    .collect();
                fabric.partition(&[isolated], &others);
                // Majority writes still succeed.
                c.put(
                    id,
                    Bytes::from_static(b"v2"),
                    Mutability::Mutable,
                    Consistency::Linearizable,
                )
                .await
                .unwrap();
                // Heal; anti-entropy catches the straggler up.
                fabric.heal_partitions();
                h.sleep(Duration::from_millis(400)).await;
                let local = store
                    .replica_on(isolated)
                    .unwrap()
                    .with_engine(|e| e.read(id, 0, 100).map(|b| b.to_vec()));
                assert_eq!(local.unwrap(), b"v2");
            }
        });
    }
}
