//! Write ordering: tags and version vectors.
//!
//! Every committed mutation of an object carries a [`Tag`] — a Lamport
//!-style `(sequence, writer)` pair totally ordered so replicas agree on
//! the newest state during quorum reads and anti-entropy. A
//! [`VersionVector`] summarizes, per writer, the highest sequence a
//! replica has seen; anti-entropy diffs two vectors to decide what to
//! ship.

use std::collections::BTreeMap;
use std::fmt;

/// A totally ordered write tag.
///
/// Ordering is `(seq, writer)` lexicographic: higher sequence wins;
/// equal sequences break ties by writer id (deterministic last-writer-wins
/// for concurrent eventual writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    /// Logical sequence number.
    pub seq: u64,
    /// Id of the node that coordinated the write.
    pub writer: u32,
}

impl Tag {
    /// The zero tag (object never written).
    pub const ZERO: Tag = Tag { seq: 0, writer: 0 };

    /// The successor tag minted by `writer`.
    pub fn next(self, writer: u32) -> Tag {
        Tag {
            seq: self.seq + 1,
            writer,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.seq, self.writer)
    }
}

/// Per-writer high-water marks, used by anti-entropy.
///
/// # Examples
///
/// ```
/// use pcsi_store::{Tag, VersionVector};
///
/// let mut a = VersionVector::new();
/// a.observe(Tag { seq: 3, writer: 1 });
/// let mut b = VersionVector::new();
/// b.observe(Tag { seq: 1, writer: 1 });
/// assert!(a.dominates(&b));
/// assert!(!b.dominates(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionVector {
    marks: BTreeMap<u32, u64>,
}

impl VersionVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a write with `tag` has been applied.
    pub fn observe(&mut self, tag: Tag) {
        let e = self.marks.entry(tag.writer).or_insert(0);
        *e = (*e).max(tag.seq);
    }

    /// Highest sequence seen from `writer`.
    pub fn get(&self, writer: u32) -> u64 {
        self.marks.get(&writer).copied().unwrap_or(0)
    }

    /// True if `self` has seen everything `other` has.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other.marks.iter().all(|(w, s)| self.get(*w) >= *s)
    }

    /// True if neither vector dominates the other.
    pub fn concurrent_with(&self, other: &VersionVector) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// Pointwise maximum (merge after sync).
    pub fn merge(&mut self, other: &VersionVector) {
        for (w, s) in &other.marks {
            let e = self.marks.entry(*w).or_insert(0);
            *e = (*e).max(*s);
        }
    }

    /// Number of writers tracked.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_total_order() {
        let a = Tag { seq: 1, writer: 5 };
        let b = Tag { seq: 2, writer: 1 };
        let c = Tag { seq: 2, writer: 3 };
        assert!(a < b);
        assert!(b < c); // Tie on seq broken by writer.
        assert_eq!(Tag::ZERO.next(7), Tag { seq: 1, writer: 7 });
    }

    #[test]
    fn vector_observe_and_get() {
        let mut v = VersionVector::new();
        v.observe(Tag { seq: 5, writer: 2 });
        v.observe(Tag { seq: 3, writer: 2 }); // Lower: ignored.
        assert_eq!(v.get(2), 5);
        assert_eq!(v.get(9), 0);
    }

    #[test]
    fn dominance_and_concurrency() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        a.observe(Tag { seq: 2, writer: 1 });
        b.observe(Tag { seq: 1, writer: 1 });
        assert!(a.dominates(&b));
        b.observe(Tag { seq: 4, writer: 2 });
        assert!(a.concurrent_with(&b));
        a.merge(&b);
        assert!(a.dominates(&b));
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 4);
    }

    #[test]
    fn empty_vector_is_dominated_by_all() {
        let empty = VersionVector::new();
        let mut v = VersionVector::new();
        v.observe(Tag { seq: 1, writer: 1 });
        assert!(v.dominates(&empty));
        assert!(empty.dominates(&empty));
        assert!(empty.is_empty());
        assert_eq!(v.len(), 1);
    }
}
