//! The storage replica service.
//!
//! One [`ReplicaNode`] runs on every storage node. It owns the node's
//! [`StorageEngine`], serves the [`crate::wire`] protocol over the fabric,
//! and plays two roles:
//!
//! * **primary** for objects whose replica set it heads: it orders
//!   mutations (assigns [`Tag`]s), applies them locally, and replicates
//!   them to the secondaries — synchronously up to the requested ack count
//!   (majority for linearizable objects), asynchronously beyond that;
//! * **secondary** for the rest: it applies replicated mutations and
//!   answers reads, tag queries and anti-entropy pulls.
//!
//! A background anti-entropy task periodically reconciles with a random
//! peer so asynchronously replicated (eventual) writes converge even when
//! the original replication message was lost to a crash or partition.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use fxhash::FxHashMap;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::ObjectId;
use pcsi_metrics::{Counter, Histogram, Metrics};
use pcsi_net::fabric::{CallCtx, NetError, RpcHandler};
use pcsi_net::{Fabric, NodeId, Transport};
use pcsi_sim::sync::mpsc;
use pcsi_sim::SimTime;
use pcsi_trace::{SpanHandle, TraceContext, Tracer};

use crate::engine::{MediaTier, Mutation, StorageEngine, StoredObject};
use crate::placement::Placement;
use crate::version::Tag;
use crate::wire::{self, Request, Response, WireError};

/// Service name replicas bind on the fabric.
pub const STORE_SERVICE: &str = "pcsi-store";

/// Transport used for intra-store traffic (kernel-bypass).
pub const STORE_TRANSPORT: Transport = Transport::Rdma;

/// A storage replica bound to one node.
#[derive(Clone)]
pub struct ReplicaNode {
    inner: Rc<Inner>,
}

struct Inner {
    node: NodeId,
    fabric: Fabric,
    placement: Placement,
    engine: RefCell<StorageEngine>,
    /// Coordinate dedup table: `req_id` → the recorded **success**
    /// response, or `None` while the original execution is still in
    /// flight. The fabric delivers at-least-once (duplicate injection)
    /// and clients retry, so a re-delivered coordination must replay the
    /// response rather than order the mutation a second time. Failed
    /// coordinations are *removed* so a retry re-executes. Bounded at
    /// [`SEEN_COORDINATES_CAP`] completed entries, oldest `req_id`
    /// evicted first (in-flight claims are never evicted).
    seen_coordinates: RefCell<BTreeMap<u64, Option<Response>>>,
    /// Which client requests the local state provably contains — the
    /// exactly-once ledger. See [`ReqLedger`].
    ledger: RefCell<ReqLedger>,
    /// When the node's storage device is next idle. [`charge_io`] queues
    /// FIFO behind this, so concurrent operations on one node contend for
    /// its media bandwidth instead of overlapping for free — without it a
    /// single node would serve unbounded parallel IO and adding nodes
    /// could never raise aggregate throughput. Uncontended operations see
    /// exactly the seed's latency (the gate is never in the future).
    io_free_at: Cell<SimTime>,
    coordinated: Counter,
    applied: Counter,
    reads: Counter,
    fetched: Counter,
    synced_in: Counter,
    repaired: Counter,
    migrated_in: Counter,
    /// Synchronous-ack quorum sizes observed per coordination round
    /// (this node included). Recorded only when a registry is installed.
    quorum_acks: RefCell<Option<Histogram>>,
    /// Optional tracer shared with the store's clients: server-side
    /// spans nest under the client attempt whose context rode the wire.
    tracer: RefCell<Option<Tracer>>,
}

impl ReplicaNode {
    /// Creates the replica and binds its service on the fabric.
    pub fn start(fabric: Fabric, placement: Placement, node: NodeId, tier: MediaTier) -> Self {
        let inner = Rc::new(Inner {
            node,
            fabric: fabric.clone(),
            placement,
            engine: RefCell::new(StorageEngine::new(tier)),
            seen_coordinates: RefCell::new(BTreeMap::new()),
            ledger: RefCell::new(ReqLedger::default()),
            io_free_at: Cell::new(SimTime::ZERO),
            coordinated: Counter::new(),
            applied: Counter::new(),
            reads: Counter::new(),
            fetched: Counter::new(),
            synced_in: Counter::new(),
            repaired: Counter::new(),
            migrated_in: Counter::new(),
            quorum_acks: RefCell::new(None),
            tracer: RefCell::new(None),
        });
        let handler: RpcHandler = {
            let inner = Rc::clone(&inner);
            Rc::new(move |payload, ctx| {
                let inner = Rc::clone(&inner);
                Box::pin(async move { Ok(handle(inner, payload, ctx).await) })
            })
        };
        fabric.bind(node, STORE_SERVICE, handler);
        ReplicaNode { inner }
    }

    /// The node this replica runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Objects currently held (tests/GC).
    pub fn object_count(&self) -> usize {
        self.inner.engine.borrow().object_count()
    }

    /// Direct engine access for GC sweeps and white-box tests.
    pub fn with_engine<T>(&self, f: impl FnOnce(&mut StorageEngine) -> T) -> T {
        f(&mut self.inner.engine.borrow_mut())
    }

    /// Mutations this node ordered as primary.
    pub fn coordinated_count(&self) -> u64 {
        self.inner.coordinated.get()
    }

    /// Reads served locally.
    pub fn reads_served(&self) -> u64 {
        self.inner.reads.get()
    }

    /// Objects pulled in by anti-entropy.
    pub fn synced_in_count(&self) -> u64 {
        self.inner.synced_in.get()
    }

    /// Objects installed by read-repair pushes.
    pub fn repaired_count(&self) -> u64 {
        self.inner.repaired.get()
    }

    /// Sealed snapshots installed by shard migration.
    pub fn migrated_in_count(&self) -> u64 {
        self.inner.migrated_in.get()
    }

    /// Full-object fetches served (anti-entropy pulls, write-back reads).
    pub fn fetched_count(&self) -> u64 {
        self.inner.fetched.get()
    }

    /// Spawns the periodic anti-entropy task (runs for the simulation's
    /// lifetime). `interval` is jittered ±20% per round to avoid lockstep.
    pub fn start_anti_entropy(&self, interval: Duration) {
        let inner = Rc::clone(&self.inner);
        let h = self.inner.fabric.handle().clone();
        h.clone().spawn(async move {
            let rng = h.rng().stream("anti-entropy");
            loop {
                let jitter = 0.8 + 0.4 * rng.f64();
                h.sleep(interval.mul_f64(jitter)).await;
                anti_entropy_round(&inner).await;
            }
        });
    }

    /// Runs one anti-entropy exchange immediately (tests).
    pub async fn anti_entropy_once(&self) {
        anti_entropy_round(&self.inner).await;
    }

    /// Installs (or removes) the tracer server-side spans record into.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        *self.inner.tracer.borrow_mut() = tracer;
    }

    /// Installs (or removes) the metrics registry. The protocol counters
    /// are always-on cells; installing publishes them as per-node series
    /// and enables the quorum-ack-size histogram.
    pub fn set_metrics(&self, metrics: Option<Metrics>) {
        match metrics {
            Some(m) => {
                let node = self.inner.node.0.to_string();
                let labels = [("node", node.as_str())];
                m.bind_counter("replica.coordinated", &labels, &self.inner.coordinated);
                m.bind_counter("replica.applied", &labels, &self.inner.applied);
                m.bind_counter("replica.reads", &labels, &self.inner.reads);
                m.bind_counter("replica.fetched", &labels, &self.inner.fetched);
                m.bind_counter("replica.synced_in", &labels, &self.inner.synced_in);
                m.bind_counter("replica.repaired", &labels, &self.inner.repaired);
                m.bind_counter("replica.migrated_in", &labels, &self.inner.migrated_in);
                *self.inner.quorum_acks.borrow_mut() =
                    Some(m.histogram("replica.quorum_acks", &labels));
            }
            None => *self.inner.quorum_acks.borrow_mut() = None,
        }
    }
}

/// Completed coordinate-dedup entries kept per replica before the
/// oldest are evicted. An evicted request that is retried falls through
/// to [`coordinate`], whose [`ReqLedger`] lookup still replays it
/// honestly instead of re-ordering.
const SEEN_COORDINATES_CAP: usize = 4096;

/// Ledger entries kept per object. A single client request retries for
/// at most one operation's deadline, so the dedup window only needs to
/// cover the requests that can still be in flight — not all history.
const LEDGER_PER_OBJECT: usize = 32;

/// Objects tracked in the ledger before the longest-idle one (smallest
/// newest `req_id`) is dropped.
const LEDGER_OBJECTS: usize = 4096;

/// Per-object record of which client requests (`req_id`) the replica's
/// **current state** for that object contains, and the tag each was
/// applied at.
///
/// The invariant — every recorded request is part of the history line
/// of the bytes currently stored — is what makes the exactly-once
/// machinery honest:
///
/// * a coordinator *replays* a recorded request at its recorded tag
///   instead of ordering it again;
/// * a secondary answers [`Response::AlreadyApplied`] for a recorded
///   request instead of applying it a second time at a fresh tag;
/// * a replication ack may be inferred from a peer's state **only**
///   through this ledger (or an exactly-equal tag) — never from
///   `newest >= tag`, because the engine admits tag gaps: a peer whose
///   tag advanced via a *different* write never applied this request.
///
/// To preserve the invariant across full-state transfer, the ledger is
/// **replaced, not merged** whenever `sync_in` installs an incoming
/// object: the incoming records describe the incoming state line; the
/// local records described a line that was just discarded.
#[derive(Default)]
struct ReqLedger {
    by_object: FxHashMap<ObjectId, Vec<(u64, Tag)>>,
}

impl ReqLedger {
    /// The tag `req_id` was applied at on the current state line, if
    /// recorded.
    fn lookup(&self, id: ObjectId, req_id: u64) -> Option<Tag> {
        self.by_object
            .get(&id)?
            .iter()
            .find(|&&(r, _)| r == req_id)
            .map(|&(_, tag)| tag)
    }

    /// Records that the current state line contains `req_id` at `tag`.
    fn record(&mut self, id: ObjectId, req_id: u64, tag: Tag) {
        let reqs = self.by_object.entry(id).or_default();
        match reqs.iter_mut().find(|(r, _)| *r == req_id) {
            // A replay at the recorded tag is idempotent; a catch-up
            // re-order moved the request to a newer tag on this line.
            Some(entry) => entry.1 = entry.1.max(tag),
            None => reqs.push((req_id, tag)),
        }
        if reqs.len() > LEDGER_PER_OBJECT {
            // Entries are appended in apply order, so the front is the
            // oldest — the one least likely to still be retried.
            reqs.remove(0);
        }
        self.evict_idle_objects();
    }

    /// Replaces the object's records with the ledger shipped alongside
    /// an installed full-state transfer.
    fn replace(&mut self, id: ObjectId, mut reqs: Vec<(u64, Tag)>) {
        if reqs.len() > LEDGER_PER_OBJECT {
            reqs.drain(..reqs.len() - LEDGER_PER_OBJECT);
        }
        if reqs.is_empty() {
            self.by_object.remove(&id);
        } else {
            self.by_object.insert(id, reqs);
        }
        self.evict_idle_objects();
    }

    /// The records to ship with a full-state transfer of `id`.
    fn snapshot(&self, id: ObjectId) -> Vec<(u64, Tag)> {
        self.by_object.get(&id).cloned().unwrap_or_default()
    }

    fn evict_idle_objects(&mut self) {
        while self.by_object.len() > LEDGER_OBJECTS {
            // Client req_ids are allocated monotonically, so the object
            // whose newest record is smallest has been idle longest.
            // The (req, id) key is unique, keeping eviction independent
            // of HashMap iteration order.
            let idle = self
                .by_object
                .iter()
                .map(|(&id, reqs)| (reqs.iter().map(|&(r, _)| r).max().unwrap_or(0), id))
                .min()
                .map(|(_, id)| id);
            match idle {
                Some(id) => self.by_object.remove(&id),
                None => break,
            };
        }
    }
}

/// Charges the engine's media time for an operation touching `bytes`,
/// queuing FIFO behind any IO already in flight on this node. The device
/// is a serial resource: an uncontended operation pays exactly
/// `io_time(bytes)` (identical to the seed), while concurrent operations
/// on one node back up behind each other — which is what lets a scaling
/// experiment observe aggregate throughput grow with node count.
async fn charge_io(inner: &Inner, bytes: usize) {
    let t = inner.engine.borrow().tier().io_time(bytes);
    let h = inner.fabric.handle();
    let now = h.now();
    let start = inner.io_free_at.get().max(now);
    let end = start + t;
    inner.io_free_at.set(end);
    h.sleep_until(end).await;
}

/// The server-side span name for a request kind.
fn request_span_name(req: &Request) -> &'static str {
    match req {
        Request::Coordinate { .. } => "replica.coordinate",
        Request::Apply { .. } => "replica.apply",
        Request::Read { .. } | Request::ReadWithTag { .. } => "replica.read",
        Request::TagOf { .. } => "replica.tag_of",
        Request::Fetch { .. } => "replica.fetch",
        Request::Inventory => "replica.inventory",
        Request::Push { .. } => "replica.push",
        Request::Migrate { .. } => "replica.migrate",
    }
}

async fn handle(inner: Rc<Inner>, payload: Bytes, call_ctx: CallCtx) -> Bytes {
    let (request, wire_ctx) = match wire::decode_request_traced(&payload) {
        Ok(r) => r,
        Err(e) => {
            return wire::encode_response(&Response::Err(WireError::Other(e.to_string())));
        }
    };
    // The store protocol carries the context in its own envelope; the
    // fabric-level context covers callers that route through `call_traced`.
    let trace_ctx = wire_ctx.or(call_ctx.trace);
    let mut span = match inner.tracer.borrow().as_ref() {
        Some(t) => t.child_of(trace_ctx, request_span_name(&request)),
        None => SpanHandle::disabled(),
    };
    span.attr("node", u64::from(inner.node.0));
    let child_ctx = span.ctx();
    let response = match request {
        Request::Coordinate {
            id,
            mutation,
            sync_replicas,
            req_id,
            expires_ns,
        } => {
            coordinate_dedup(
                &inner,
                req_id,
                id,
                mutation,
                sync_replicas,
                expires_ns,
                child_ctx,
            )
            .await
        }
        Request::Apply {
            id,
            tag,
            mutation,
            req_id,
        } => {
            charge_io(&inner, mutation_bytes(&mutation)).await;
            // Post-IO, pre-apply gates (no awaits below, so neither can
            // go stale between check and apply):
            //
            // * a frozen object is mid-migration-snapshot — acking an
            //   apply now would commit a write the snapshot cannot see;
            // * a node outside the effective replica set is a post-flip
            //   old owner — its ack would count toward a quorum no
            //   future reader consults.
            //
            // Exactly-once by req_id, before any tag math: a failed-over
            // coordinator re-orders the same client request at a fresh
            // higher tag, and a replica that already applied it must not
            // apply it again (Append is not idempotent).
            let duplicate = (req_id != 0)
                .then(|| inner.ledger.borrow().lookup(id, req_id))
                .flatten();
            if inner.placement.is_frozen(id) {
                Response::Err(WireError::Other(format!(
                    "{id:?} is frozen for shard migration"
                )))
            } else if !effective_member(&inner, id) {
                Response::Err(WireError::Other(format!(
                    "node {} no longer replicates {id:?}",
                    inner.node
                )))
            } else if let Some(recorded) = duplicate {
                Response::AlreadyApplied { tag: recorded }
            } else {
                let resp = {
                    let mut engine = inner.engine.borrow_mut();
                    let newest = engine.tag_of(id);
                    if tag <= newest {
                        // Refuse to ack a stale-tagged apply. A coordinator
                        // that restarted behind the replica set would
                        // otherwise collect acks for writes that are
                        // invisible to every read quorum.
                        Response::Stale { newest }
                    } else {
                        match engine.apply(id, tag, &mutation) {
                            Ok(()) => Response::Applied,
                            Err(e) => Response::Err(WireError::from_pcsi(&e)),
                        }
                    }
                };
                if matches!(resp, Response::Applied) {
                    inner.applied.incr();
                    if req_id != 0 {
                        inner.ledger.borrow_mut().record(id, req_id, tag);
                    }
                }
                resp
            }
        }
        Request::Read { id, offset, len } => {
            // Stale-routing rejection: a post-flip old owner must not
            // serve (possibly stale) data for an object it no longer
            // replicates; the retryable error sends the client back to
            // recompute the replica set under the current epoch.
            if effective_member(&inner, id) {
                read_local(&inner, id, offset, len, u64::MAX, false).await
            } else {
                stale_route(&inner, id)
            }
        }
        Request::ReadWithTag {
            id,
            offset,
            len,
            inline_limit,
        } => {
            if effective_member(&inner, id) {
                read_local(&inner, id, offset, len, inline_limit, true).await
            } else {
                stale_route(&inner, id)
            }
        }
        Request::TagOf { id } => Response::TagIs {
            tag: inner.engine.borrow().tag_of(id),
        },
        Request::Fetch { id } => {
            let obj = inner.engine.borrow().get(id).cloned();
            match obj {
                Some(object) => {
                    charge_io(&inner, object.data.len()).await;
                    inner.fetched.incr();
                    let reqs = inner.ledger.borrow().snapshot(id);
                    Response::Object { object, reqs }
                }
                None => Response::Absent,
            }
        }
        Request::Inventory => Response::InventoryIs {
            entries: inner.engine.borrow().inventory(),
        },
        Request::Push { id, object, reqs } => {
            charge_io(&inner, object.data.len()).await;
            install_state(&inner, id, object, reqs);
            inner.repaired.incr();
            Response::Applied
        }
        Request::Migrate {
            epoch,
            id,
            object,
            reqs,
            tombstone,
        } => {
            charge_io(&inner, object.data.len()).await;
            migrate_install(&inner, epoch, id, object, reqs, tombstone)
        }
    };
    span.finish();
    wire::encode_response(&response)
}

/// True when this node is in the *effective* replica set of `id` (the
/// pinned old owners mid-migration, the ring owners otherwise).
fn effective_member(inner: &Inner, id: ObjectId) -> bool {
    inner.placement.is_replica(id, inner.node)
}

/// The retryable rejection for a request routed under a stale replica set.
fn stale_route(inner: &Inner, id: ObjectId) -> Response {
    Response::Err(WireError::Other(format!(
        "node {} no longer replicates {id:?} (epoch {})",
        inner.node,
        inner.placement.epoch()
    )))
}

/// Installs a migration snapshot on a new owner.
///
/// The install is gated three ways:
///
/// * the sender's topology epoch must match ours ([`Response::WrongEpoch`]
///   otherwise) — a driver that raced a further topology change must
///   recompute its target set;
/// * this node must be a *ring* owner of the object (not an effective
///   owner: mid-move the effective set is still the old one);
/// * the local newest tag must not exceed the incoming seal. A newer
///   local tag means either a zombie line (a never-acknowledged local
///   apply the snapshot fetch could not see) or, for a late duplicate
///   frame, state the flipped object has legitimately moved past. Both
///   answer [`Response::Stale`]: the driver re-seals above the reported
///   tag and re-sends, erasing zombies without ever regressing state.
fn migrate_install(
    inner: &Inner,
    epoch: u64,
    id: ObjectId,
    object: StoredObject,
    reqs: Vec<(u64, Tag)>,
    tombstone: bool,
) -> Response {
    let current = inner.placement.epoch();
    if epoch != current {
        return Response::WrongEpoch { current };
    }
    if !inner.placement.ring_replicas(id).contains(&inner.node) {
        return stale_route(inner, id);
    }
    let newest = inner.engine.borrow().tag_of(id);
    if newest > object.tag {
        return Response::Stale { newest };
    }
    if tombstone {
        // The move found a majority-committed delete newer than any live
        // state it fetched: land the tombstone itself (at the seal tag)
        // so a stale old owner can never resurrect the object through
        // anti-entropy inventory pulls.
        let _ = inner
            .engine
            .borrow_mut()
            .apply(id, object.tag, &Mutation::Delete);
        inner.ledger.borrow_mut().replace(id, reqs);
    } else {
        install_state(inner, id, object, reqs);
    }
    inner.migrated_in.incr();
    Response::Applied
}

/// Serves a local read. For one-RTT quorum reads (`absent_as_tag`), an
/// absent object answers [`Response::TagIs`] with [`Tag::ZERO`] so the
/// reply still counts toward the quorum, and payloads larger than
/// `inline_limit` degrade to a bare tag report (the client then issues a
/// directed read to the newest replica, as the two-phase path would).
async fn read_local(
    inner: &Rc<Inner>,
    id: ObjectId,
    offset: u64,
    len: u64,
    inline_limit: u64,
    absent_as_tag: bool,
) -> Response {
    let snapshot = {
        let engine = inner.engine.borrow();
        engine.get(id).map(|o| (o.tag, o.mutability, o.stable_len))
    };
    let Some((tag, mutability, stable_len)) = snapshot else {
        return if absent_as_tag {
            // Report the tombstone-aware tag: a deleted object's death
            // tag must outrank any stale replica's live tag in the
            // quorum max, otherwise a one-RTT read could resurrect it.
            Response::TagIs {
                tag: inner.engine.borrow().tag_of(id),
            }
        } else {
            Response::Err(WireError::NotFound(id))
        };
    };
    let result = inner.engine.borrow().read(id, offset, len);
    match result {
        Ok(data) => {
            if data.len() as u64 > inline_limit {
                return Response::TagIs { tag };
            }
            charge_io(inner, data.len()).await;
            inner.reads.incr();
            Response::Data {
                tag,
                mutability,
                stable_len,
                data,
            }
        }
        Err(e) => Response::Err(WireError::from_pcsi(&e)),
    }
}

/// Approximate payload size of a mutation, for IO accounting.
fn mutation_bytes(m: &Mutation) -> usize {
    match m {
        Mutation::PutFull { data, .. } => data.len(),
        Mutation::WriteAt { data, .. } => data.len(),
        Mutation::Append { data } => data.len(),
        Mutation::SetMutability { .. } | Mutation::Delete => 16,
    }
}

/// At-most-once execution of [`Request::Coordinate`]. The first arrival
/// of a `req_id` claims it and runs [`coordinate`]; any duplicate
/// delivery either replays the recorded success response or, while the
/// original is still in flight, waits for it to finish. Without this a
/// network-duplicated coordination would be ordered twice at a fresh
/// tag, silently reverting any write that landed in between. A *failed*
/// coordination is removed from the table so a client retry re-executes
/// instead of replaying the failure.
async fn coordinate_dedup(
    inner: &Rc<Inner>,
    req_id: u64,
    id: ObjectId,
    mutation: Mutation,
    sync_replicas: u32,
    expires_ns: u64,
    ctx: Option<TraceContext>,
) -> Response {
    loop {
        let claimed = {
            let mut seen = inner.seen_coordinates.borrow_mut();
            match seen.get(&req_id) {
                Some(Some(resp)) => return resp.clone(),
                Some(None) => false,
                None => {
                    seen.insert(req_id, None);
                    true
                }
            }
        };
        if claimed {
            break;
        }
        inner.fabric.handle().sleep(Duration::from_micros(50)).await;
    }
    let resp = coordinate(inner, id, mutation, sync_replicas, req_id, expires_ns, ctx).await;
    {
        let mut seen = inner.seen_coordinates.borrow_mut();
        if matches!(resp, Response::Coordinated { .. }) {
            seen.insert(req_id, Some(resp.clone()));
        } else {
            seen.remove(&req_id);
        }
        // Bound the table: drop the oldest *completed* entries (never an
        // in-flight claim — removing one would let a concurrent duplicate
        // re-execute the coordination while the original still runs).
        let completed = seen.values().filter(|v| v.is_some()).count();
        for _ in SEEN_COORDINATES_CAP..completed {
            let oldest = seen
                .iter()
                .find(|(_, v)| v.is_some())
                .map(|(&r, _)| r)
                .expect("completed count > 0");
            seen.remove(&oldest);
        }
    }
    resp
}

/// Whether a [`Request::Coordinate`] attempt's absolute expiry has
/// passed (`expires_ns == 0` means no expiry). Simulated clocks are
/// global, so the coordinator can evaluate the client's deadline
/// exactly.
fn attempt_expired(inner: &Rc<Inner>, expires_ns: u64) -> bool {
    expires_ns != 0 && inner.fabric.handle().now().as_nanos() > expires_ns
}

/// How the synchronous part of a replication round ended.
enum ReplicateOutcome {
    /// Enough acks collected.
    Acked,
    /// A peer holds state newer than the ordered tag — this coordinator
    /// is behind (e.g. it restarted after writes failed over past it).
    Stale {
        /// The newest tag reported.
        newest: Tag,
        /// The peer that reported it (catch-up source).
        holder: NodeId,
    },
    /// Not enough reachable peers acked.
    Failed {
        /// Acks obtained, this node included.
        got: u32,
    },
}

/// Rounds of stale-tag catch-up a coordinator attempts before giving up
/// and letting the client's retry budget drive further progress.
const MAX_CATCHUP_ROUNDS: u32 = 3;

/// Coordinator-side mutation ordering and replication.
///
/// Historically only the placement-order primary coordinated; with
/// client-side failover *any replica of the object* may be asked to. A
/// failed-over coordinator may be behind the rest of the set (it missed
/// applies while down), which is caught two ways: secondaries refuse
/// stale-tagged applies with [`Response::Stale`] — and since at most a
/// minority of replicas can be behind an acknowledged write, a stale
/// coordination can never assemble a majority of acks — and on such
/// evidence the coordinator pulls the newest state, re-orders above it,
/// and retries ([`MAX_CATCHUP_ROUNDS`] times).
///
/// When the local [`ReqLedger`] shows the request is already contained
/// in this node's current state (it coordinated it before, or applied
/// its fan-out), the coordination **replays** replication at the
/// recorded tag instead of ordering again. A replay that finds peers
/// advanced past the recorded tag *without* holding the request does
/// not fabricate success: their history line does not contain the
/// write, so acking would let it silently vanish under LWW
/// convergence. The honest outcome is a retryable quorum failure — the
/// client's failover then re-orders the request on the winning line,
/// where [`Response::AlreadyApplied`] dedup keeps it exactly-once.
async fn coordinate(
    inner: &Rc<Inner>,
    id: ObjectId,
    mutation: Mutation,
    sync_replicas: u32,
    req_id: u64,
    expires_ns: u64,
    ctx: Option<TraceContext>,
) -> Response {
    if attempt_expired(inner, expires_ns) {
        return Response::Err(WireError::Other(format!(
            "attempt for {id:?} expired before coordination started"
        )));
    }
    if inner.placement.is_frozen(id) {
        return Response::Err(WireError::Other(format!(
            "{id:?} is frozen for shard migration"
        )));
    }
    let replicas = inner.placement.replicas(id);
    if !replicas.contains(&inner.node) {
        return Response::Err(WireError::Other(format!(
            "node {} does not replicate {id:?} (replicas are {replicas:?})",
            inner.node
        )));
    }
    inner.coordinated.incr();

    let peers: Vec<NodeId> = replicas
        .iter()
        .copied()
        .filter(|&n| n != inner.node)
        .collect();
    let need = (sync_replicas.saturating_sub(1) as usize).min(peers.len());

    charge_io(inner, mutation_bytes(&mutation)).await;

    let mut floor = Tag::ZERO;
    let mut last_got = 1u32;
    for _round in 0..=MAX_CATCHUP_ROUNDS {
        // A request this node's current state already contains — it
        // ordered it before, applied its fan-out, or a previous round
        // of this loop applied it and the catch-up pull failed to
        // replace the line — must not be applied locally again: replay
        // replication at the recorded tag.
        let recorded = (req_id != 0)
            .then(|| inner.ledger.borrow().lookup(id, req_id))
            .flatten();
        if let Some(tag) = recorded {
            return match replicate(inner, id, tag, &mutation, req_id, &peers, need, true, ctx).await
            {
                ReplicateOutcome::Acked => Response::Coordinated { tag },
                // Peers advanced past the recorded tag on a line that
                // does not contain this request: success here would be
                // a lie (the write loses LWW convergence). Surface a
                // retryable failure; the client's failover re-orders on
                // the winning line.
                ReplicateOutcome::Stale { .. } => Response::Err(WireError::QuorumUnavailable {
                    needed: sync_replicas,
                    got: 1,
                }),
                ReplicateOutcome::Failed { got } => Response::Err(WireError::QuorumUnavailable {
                    needed: sync_replicas,
                    got,
                }),
            };
        }
        // Re-check the freeze *after* every await since the entry check
        // (the IO charge, catch-up rounds): the check below and the
        // local apply share one borrow with no await between them, so a
        // mutation can never be minted inside a migration's freeze
        // window — the snapshot fetch would miss it, and its tag would
        // survive as a zombie line above the seal.
        if inner.placement.is_frozen(id) {
            return Response::Err(WireError::Other(format!(
                "{id:?} is frozen for shard migration"
            )));
        }
        // Never mint a fresh tag for an attempt the client has already
        // abandoned (its per-attempt deadline passed while this
        // coordination sat in IO queues or catch-up rounds). The client
        // may long since have succeeded through another coordinator and
        // issued *later* acknowledged writes; minting now would apply
        // this mutation at a tag above all of them on this node alone —
        // a zombie line that quorum reads and newest-tag-wins
        // anti-entropy would surface as a rollback of those writes.
        if attempt_expired(inner, expires_ns) {
            return Response::Err(WireError::Other(format!(
                "attempt for {id:?} expired before ordering"
            )));
        }
        // Order and apply locally. Charge the media time first: the tag
        // read and the apply must not straddle an await, or two
        // concurrent coordinations for the same object would both read
        // the current tag and assign the *same* tag to different
        // mutations — replicas then diverge at equal tags, which
        // anti-entropy can never repair. `floor` keeps re-orders above
        // any tag a peer reported via `Stale`, even when the catch-up
        // fetch itself failed (or hit a tombstone).
        let tag = {
            let mut engine = inner.engine.borrow_mut();
            let tag = engine.tag_of(id).max(floor).next(inner.node.0);
            if let Err(e) = engine.apply(id, tag, &mutation) {
                return Response::Err(WireError::from_pcsi(&e));
            }
            tag
        };
        if req_id != 0 {
            inner.ledger.borrow_mut().record(id, req_id, tag);
        }
        match replicate(inner, id, tag, &mutation, req_id, &peers, need, false, ctx).await {
            ReplicateOutcome::Acked => return Response::Coordinated { tag },
            ReplicateOutcome::Stale { newest, holder } => {
                floor = floor.max(newest);
                // On success this replaces both the state *and* the
                // ledger line, clearing this round's local record so the
                // next round re-orders fresh; on failure the record
                // stays and the next round replays instead — never a
                // second local apply on a line that already has one.
                catch_up(inner, id, holder).await;
            }
            ReplicateOutcome::Failed { got } => {
                last_got = got;
                break;
            }
        }
    }
    Response::Err(WireError::QuorumUnavailable {
        needed: sync_replicas,
        got: last_got,
    })
}

/// Fans an ordered mutation to `peers` and waits for `need` acks.
///
/// What counts as an ack is deliberately narrow — a peer's reply is an
/// ack only when it **proves** two things: the peer's state contains
/// this request, AND the peer's state-tag is at least the ordered tag.
/// The second half is what keeps the acked tag the maximum over every
/// line that contains the request — a majority then holds tags `>=`
/// the acked tag, so any later coordination that mints below it can
/// never assemble its own ack majority (the sets intersect, and the
/// intersection answers `Stale`). The qualifying replies:
///
/// * [`Response::Applied`] — it applied it just now (state `>=` tag);
/// * [`Response::AlreadyApplied`] at a recorded tag `>=` the ordered
///   tag — its ledger records the request on a line at or above ours;
/// * [`Response::AlreadyApplied`] at a **lower** recorded tag — the
///   peer holds the request on an older line (it acked a previous
///   coordination of this request that later failed over). Both lines
///   contain the request, but counting this alone once let an acked
///   write live only on the coordinator: the next coordination on the
///   behind peer minted *below* the acked tag and a quorum read
///   surfaced the old value as a rollback. The coordinator therefore
///   first pushes its full state (which contains the ordered tag) to
///   the peer and counts the ack only when the push round-trips — the
///   peer then provably holds state `>=` the ordered tag, installed or
///   already newer;
/// * in `replay` mode, [`Response::Stale`] at **exactly** the replayed
///   tag — tags are minted once, so state at that tag *is* this
///   mutation's apply (covers a peer whose ledger entry was evicted).
///
/// A `Stale` above the replayed tag is NOT an ack: the engine admits
/// tag gaps, so the peer may have advanced via a different write and
/// never applied this one. In fresh mode any `Stale` is evidence the
/// coordinator ordered at a stale tag.
#[allow(clippy::too_many_arguments)]
async fn replicate(
    inner: &Rc<Inner>,
    id: ObjectId,
    tag: Tag,
    mutation: &Mutation,
    req_id: u64,
    peers: &[NodeId],
    need: usize,
    replay: bool,
    ctx: Option<TraceContext>,
) -> ReplicateOutcome {
    let total = peers.len();
    let (tx, mut rx) = mpsc::channel::<Result<(), Option<(Tag, NodeId)>>>();
    // The Apply frame is identical for every peer: encode (and clone the
    // mutation into it) exactly once, then share the frozen bytes.
    let frame = wire::encode_request_traced(
        &Request::Apply {
            id,
            tag,
            mutation: mutation.clone(),
            req_id,
        },
        ctx,
    );
    for &peer in peers {
        let tx = tx.clone();
        let task_inner = inner.clone();
        let from = inner.node;
        let req = frame.clone();
        inner.fabric.handle().spawn_detached(async move {
            let fabric = task_inner.fabric.clone();
            let outcome = match apply_on(&fabric, from, peer, req).await {
                Ok(Response::Applied) => Ok(()),
                Ok(Response::AlreadyApplied { tag: recorded }) if recorded >= tag => Ok(()),
                Ok(Response::AlreadyApplied { .. }) => {
                    // The peer holds this request on an older line. Its
                    // dedup refusal is correct, but before this reply
                    // may count toward the quorum the peer must be
                    // brought up to (at least) the ordered tag — see
                    // the ack rules above. Push the local state, which
                    // contains the ordered apply.
                    push_state_to(&task_inner, id, peer).await
                }
                Ok(Response::Stale { newest }) if replay && newest == tag => Ok(()),
                Ok(Response::Stale { newest }) => Err(Some((newest, peer))),
                _ => Err(None),
            };
            let _ = tx.send(outcome);
        });
    }
    drop(tx);

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut stale: Option<(Tag, NodeId)> = None;
    while ok < need {
        let outcome = match rx.recv().await {
            Some(o) => o,
            None => break,
        };
        match outcome {
            Ok(()) => ok += 1,
            Err(evidence) => {
                if let Some((newest, holder)) = evidence {
                    match &stale {
                        Some((t, _)) if *t >= newest => {}
                        _ => stale = Some((newest, holder)),
                    }
                }
                failed += 1;
                if total - failed < need {
                    break;
                }
            }
        }
    }
    // Remaining replication continues in the background (detached tasks).
    if ok >= need {
        if let Some(h) = inner.quorum_acks.borrow().as_ref() {
            h.record((ok + 1) as u64);
        }
        ReplicateOutcome::Acked
    } else if let Some((newest, holder)) = stale {
        ReplicateOutcome::Stale { newest, holder }
    } else {
        ReplicateOutcome::Failed {
            got: (ok + 1) as u32,
        }
    }
}

/// Installs a full object state plus the request ledger describing it.
/// The ledger is replaced only when the state is — swapping one without
/// the other would break the "records ⊆ current state line" invariant
/// both dedup paths rely on.
fn install_state(inner: &Inner, id: ObjectId, object: StoredObject, reqs: Vec<(u64, Tag)>) {
    let installed = inner.engine.borrow_mut().sync_in(id, object);
    if installed {
        inner.ledger.borrow_mut().replace(id, reqs);
    }
}

/// Pushes the full local state of `id` (object plus request ledger) to
/// `peer`, returning `Ok(())` only when the peer acknowledged the push.
/// The peer installs it newest-wins, so a successful round-trip proves
/// the peer's state-tag is at least the local tag at snapshot time —
/// the guarantee [`replicate`] needs before counting a behind peer's
/// [`Response::AlreadyApplied`] as a quorum ack.
async fn push_state_to(
    inner: &Rc<Inner>,
    id: ObjectId,
    peer: NodeId,
) -> Result<(), Option<(Tag, NodeId)>> {
    let snapshot = inner.engine.borrow().get(id).cloned();
    let Some(object) = snapshot else {
        return Err(None);
    };
    let reqs = inner.ledger.borrow().snapshot(id);
    let frame = wire::encode_request(&Request::Push { id, object, reqs });
    match apply_on(&inner.fabric, inner.node, peer, frame).await {
        Ok(Response::Applied) => Ok(()),
        _ => Err(None),
    }
}

/// Pulls the newest state of `id` from `holder` into the local engine
/// (best effort — the caller's tag floor guarantees progress even when
/// this fails).
async fn catch_up(inner: &Rc<Inner>, id: ObjectId, holder: NodeId) {
    let raw = match inner
        .fabric
        .call(
            inner.node,
            holder,
            STORE_SERVICE,
            STORE_TRANSPORT,
            wire::encode_request(&Request::Fetch { id }),
        )
        .await
    {
        Ok(raw) => raw,
        Err(_) => return,
    };
    if let Ok(Response::Object { object, reqs }) = wire::decode_response(&raw) {
        charge_io(inner, object.data.len()).await;
        install_state(inner, id, object, reqs);
        inner.synced_in.incr();
    }
}

async fn apply_on(
    fabric: &Fabric,
    from: NodeId,
    peer: NodeId,
    req: Bytes,
) -> Result<Response, NetError> {
    let raw = fabric
        .call(from, peer, STORE_SERVICE, STORE_TRANSPORT, req)
        .await?;
    wire::decode_response(&raw).map_err(|e| NetError::Remote(e.to_string()))
}

/// One pull-based anti-entropy exchange with a random peer.
async fn anti_entropy_round(inner: &Rc<Inner>) {
    let peers: Vec<NodeId> = inner
        .placement
        .storage_nodes()
        .into_iter()
        .filter(|&n| n != inner.node)
        .collect();
    if peers.is_empty() {
        return;
    }
    let rng = inner.fabric.handle().rng().stream("anti-entropy-peer");
    let peer = *rng.choice(&peers);

    let raw = match inner
        .fabric
        .call(
            inner.node,
            peer,
            STORE_SERVICE,
            STORE_TRANSPORT,
            wire::encode_request(&Request::Inventory),
        )
        .await
    {
        Ok(raw) => raw,
        Err(_) => return, // Peer down or partitioned; try next round.
    };
    let entries = match wire::decode_response(&raw) {
        Ok(Response::InventoryIs { entries }) => entries,
        _ => return,
    };

    for (id, peer_tag) in entries {
        // Only track objects this node replicates.
        if !inner.placement.replicas(id).contains(&inner.node) {
            continue;
        }
        let local_tag = inner.engine.borrow().tag_of(id);
        if peer_tag <= local_tag {
            continue;
        }
        let raw = match inner
            .fabric
            .call(
                inner.node,
                peer,
                STORE_SERVICE,
                STORE_TRANSPORT,
                wire::encode_request(&Request::Fetch { id }),
            )
            .await
        {
            Ok(raw) => raw,
            Err(_) => return,
        };
        if let Ok(Response::Object { object, reqs }) = wire::decode_response(&raw) {
            charge_io(inner, object.data.len()).await;
            install_state(inner, id, object, reqs);
            inner.synced_in.incr();
        }
    }
}

/// Convenience: the tag a replica holds for `id`, fetched over the fabric.
pub async fn remote_tag(
    fabric: &Fabric,
    from: NodeId,
    replica: NodeId,
    id: ObjectId,
) -> Result<Tag, NetError> {
    let raw = fabric
        .call(
            from,
            replica,
            STORE_SERVICE,
            STORE_TRANSPORT,
            wire::encode_request(&Request::TagOf { id }),
        )
        .await?;
    match wire::decode_response(&raw) {
        Ok(Response::TagIs { tag }) => Ok(tag),
        Ok(other) => Err(NetError::Remote(format!("unexpected response {other:?}"))),
        Err(e) => Err(NetError::Remote(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId::from_parts(7, n)
    }

    fn tag(seq: u64, writer: u32) -> Tag {
        Tag { seq, writer }
    }

    #[test]
    fn ledger_records_and_replaces() {
        let mut l = ReqLedger::default();
        l.record(id(1), 10, tag(3, 0));
        assert_eq!(l.lookup(id(1), 10), Some(tag(3, 0)));
        assert_eq!(l.lookup(id(1), 11), None);
        assert_eq!(l.lookup(id(2), 10), None);
        // Re-recording keeps the newest tag (catch-up re-order moved it).
        l.record(id(1), 10, tag(5, 1));
        assert_eq!(l.lookup(id(1), 10), Some(tag(5, 1)));
        l.record(id(1), 10, tag(4, 0));
        assert_eq!(l.lookup(id(1), 10), Some(tag(5, 1)));
        // A full-state install replaces, never merges: records from the
        // losing line must not survive next to the winner's.
        l.replace(id(1), vec![(20, tag(9, 2))]);
        assert_eq!(l.lookup(id(1), 10), None);
        assert_eq!(l.lookup(id(1), 20), Some(tag(9, 2)));
        // Replacing with an empty ledger drops the object entirely.
        l.replace(id(1), vec![]);
        assert_eq!(l.snapshot(id(1)), vec![]);
    }

    #[test]
    fn ledger_caps_records_per_object() {
        let mut l = ReqLedger::default();
        for r in 0..(LEDGER_PER_OBJECT as u64 + 8) {
            l.record(id(1), r, tag(r + 1, 0));
        }
        assert_eq!(l.snapshot(id(1)).len(), LEDGER_PER_OBJECT);
        // The oldest records fell off the front; the newest survive.
        assert_eq!(l.lookup(id(1), 0), None);
        assert_eq!(l.lookup(id(1), 7), None);
        assert_eq!(l.lookup(id(1), 8), Some(tag(9, 0)));
        // An oversized shipped ledger is trimmed the same way.
        let big: Vec<(u64, Tag)> = (0..(LEDGER_PER_OBJECT as u64 + 4))
            .map(|r| (r, tag(r + 1, 1)))
            .collect();
        l.replace(id(2), big);
        assert_eq!(l.snapshot(id(2)).len(), LEDGER_PER_OBJECT);
        assert_eq!(l.lookup(id(2), 3), None);
        assert_eq!(l.lookup(id(2), 4), Some(tag(5, 1)));
    }

    #[test]
    fn ledger_evicts_longest_idle_objects() {
        let mut l = ReqLedger::default();
        // req_ids are monotone across the client population, so object
        // insertion order here matches idleness order.
        for n in 0..(LEDGER_OBJECTS as u64 + 3) {
            l.record(id(n), n + 100, tag(1, 0));
        }
        assert_eq!(l.by_object.len(), LEDGER_OBJECTS);
        for n in 0..3 {
            assert_eq!(l.lookup(id(n), n + 100), None, "object {n} evicted");
        }
        for n in 3..6 {
            assert_eq!(l.lookup(id(n), n + 100), Some(tag(1, 0)));
        }
    }
}
