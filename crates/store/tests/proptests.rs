//! Property-based tests for the storage substrate.

use bytes::Bytes;
use proptest::prelude::*;

use pcsi_core::{Mutability, ObjectId};
use pcsi_net::Topology;
use pcsi_store::engine::{MediaTier, Mutation, StorageEngine, StoredObject};
use pcsi_store::version::{Tag, VersionVector};
use pcsi_store::wire::{
    decode_request, decode_request_traced, decode_response, decode_stream_frame,
    decode_stream_reply, encode_request, encode_request_traced, encode_response,
    encode_stream_frame, encode_stream_reply, CloseReason, Request, Response, StreamFrame,
    StreamReply, WireError,
};
use pcsi_store::Placement;
use pcsi_trace::{SpanId, TraceContext, TraceId};

fn oid(n: u64) -> ObjectId {
    ObjectId::from_parts(11, n % 16 + 1)
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (proptest::collection::vec(any::<u8>(), 0..64), any::<bool>()).prop_map(|(d, ao)| {
            Mutation::PutFull {
                data: Bytes::from(d),
                mutability: if ao {
                    Mutability::AppendOnly
                } else {
                    Mutability::Mutable
                },
            }
        }),
        (0u64..64, proptest::collection::vec(any::<u8>(), 1..32)).prop_map(|(offset, d)| {
            Mutation::WriteAt {
                offset,
                data: Bytes::from(d),
            }
        }),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(|d| Mutation::Append {
            data: Bytes::from(d)
        }),
        Just(Mutation::SetMutability {
            to: Mutability::Immutable
        }),
        Just(Mutation::Delete),
    ]
}

fn arb_id() -> impl Strategy<Value = ObjectId> {
    (any::<u64>(), any::<u64>()).prop_map(|(realm, serial)| ObjectId::from_parts(realm, serial))
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    (any::<u64>(), any::<u32>()).prop_map(|(seq, writer)| Tag { seq, writer })
}

fn arb_mutability() -> impl Strategy<Value = Mutability> {
    prop_oneof![
        Just(Mutability::Mutable),
        Just(Mutability::FixedSize),
        Just(Mutability::AppendOnly),
        Just(Mutability::Immutable),
    ]
}

fn arb_bytes() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn arb_wire_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (arb_bytes(), arb_mutability())
            .prop_map(|(data, mutability)| Mutation::PutFull { data, mutability }),
        (any::<u64>(), arb_bytes()).prop_map(|(offset, data)| Mutation::WriteAt { offset, data }),
        arb_bytes().prop_map(|data| Mutation::Append { data }),
        arb_mutability().prop_map(|to| Mutation::SetMutability { to }),
        Just(Mutation::Delete),
    ]
}

fn arb_reqs() -> impl Strategy<Value = Vec<(u64, Tag)>> {
    proptest::collection::vec((any::<u64>(), arb_tag()), 0..8)
}

fn arb_object() -> impl Strategy<Value = StoredObject> {
    (arb_bytes(), arb_tag(), arb_mutability(), any::<u64>()).prop_map(
        |(data, tag, mutability, stable_len)| StoredObject {
            data,
            tag,
            mutability,
            stable_len,
        },
    )
}

/// Every [`Request`] variant, including the previously untested
/// `ReadWithTag` and `Push`.
fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_id(),
            arb_wire_mutation(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(id, mutation, sync_replicas, req_id, expires_ns)| {
                Request::Coordinate {
                    id,
                    mutation,
                    sync_replicas,
                    req_id,
                    expires_ns,
                }
            }),
        (arb_id(), arb_tag(), arb_wire_mutation(), any::<u64>()).prop_map(
            |(id, tag, mutation, req_id)| Request::Apply {
                id,
                tag,
                mutation,
                req_id,
            }
        ),
        (arb_id(), any::<u64>(), any::<u64>()).prop_map(|(id, offset, len)| Request::Read {
            id,
            offset,
            len
        }),
        arb_id().prop_map(|id| Request::TagOf { id }),
        arb_id().prop_map(|id| Request::Fetch { id }),
        Just(Request::Inventory),
        (arb_id(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(id, offset, len, inline_limit)| Request::ReadWithTag {
                id,
                offset,
                len,
                inline_limit,
            }
        ),
        (arb_id(), arb_object(), arb_reqs()).prop_map(|(id, object, reqs)| Request::Push {
            id,
            object,
            reqs
        }),
        (
            any::<u64>(),
            arb_id(),
            arb_object(),
            arb_reqs(),
            any::<bool>()
        )
            .prop_map(|(epoch, id, object, reqs, tombstone)| Request::Migrate {
                epoch,
                id,
                object,
                reqs,
                tombstone,
            }),
    ]
}

fn arb_trace_ctx() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u64>()).prop_map(|(t, p)| Some(TraceContext {
            trace: TraceId(t),
            parent: SpanId(p),
        })),
    ]
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    prop_oneof![
        arb_id().prop_map(WireError::NotFound),
        (arb_id(), arb_mutability(), "[a-z]{0,12}")
            .prop_map(|(id, level, op)| { WireError::MutabilityViolation { id, level, op } }),
        (arb_mutability(), arb_mutability())
            .prop_map(|(from, to)| WireError::InvalidTransition { from, to }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(needed, got)| WireError::QuorumUnavailable { needed, got }),
        "[ -~]{0,24}".prop_map(WireError::Other),
    ]
}

/// Every [`Response`] variant.
fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_tag().prop_map(|tag| Response::Coordinated { tag }),
        Just(Response::Applied),
        (arb_tag(), arb_mutability(), any::<u64>(), arb_bytes()).prop_map(
            |(tag, mutability, stable_len, data)| Response::Data {
                tag,
                mutability,
                stable_len,
                data,
            }
        ),
        arb_tag().prop_map(|tag| Response::TagIs { tag }),
        (arb_object(), arb_reqs()).prop_map(|(object, reqs)| Response::Object { object, reqs }),
        Just(Response::Absent),
        proptest::collection::vec((arb_id(), arb_tag()), 0..12)
            .prop_map(|entries| Response::InventoryIs { entries }),
        arb_tag().prop_map(|newest| Response::Stale { newest }),
        arb_tag().prop_map(|tag| Response::AlreadyApplied { tag }),
        any::<u64>().prop_map(|current| Response::WrongEpoch { current }),
        arb_wire_error().prop_map(Response::Err),
    ]
}

/// Every [`StreamFrame`] variant.
fn arb_stream_frame() -> impl Strategy<Value = StreamFrame> {
    let reason = prop_oneof![
        Just(CloseReason::Cancelled),
        Just(CloseReason::ObjectClosed),
        Just(CloseReason::SubscriberLost),
    ];
    prop_oneof![
        (arb_id(), any::<u64>(), any::<u32>())
            .prop_map(|(id, sub, window)| StreamFrame::Subscribe { id, sub, window }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(sub, consumed)| StreamFrame::Grant { sub, consumed }),
        (any::<u64>(), any::<u64>(), arb_bytes()).prop_map(|(seq, ts_ns, payload)| {
            StreamFrame::Push {
                seq,
                ts_ns,
                payload,
            }
        }),
        (any::<u64>(), reason).prop_map(|(sub, reason)| StreamFrame::Close { sub, reason }),
    ]
}

fn arb_stream_reply() -> impl Strategy<Value = StreamReply> {
    prop_oneof![
        Just(StreamReply::Ok),
        arb_wire_error().prop_map(StreamReply::Err),
    ]
}

/// Applies a scripted history to a fresh engine, tagging writes 1..n.
fn apply_history(ops: &[(u64, Mutation)]) -> StorageEngine {
    let mut e = StorageEngine::new(MediaTier::Dram);
    for (i, (obj, m)) in ops.iter().enumerate() {
        let _ = e.apply(
            oid(*obj),
            Tag {
                seq: (i + 1) as u64,
                writer: 0,
            },
            m,
        );
    }
    e
}

proptest! {
    /// Replaying the same mutation history yields byte-identical state —
    /// the property primary/secondary replication depends on.
    #[test]
    fn engine_is_deterministic(
        ops in proptest::collection::vec((0u64..16, arb_mutation()), 0..40)
    ) {
        let a = apply_history(&ops);
        let b = apply_history(&ops);
        prop_assert_eq!(a.inventory(), b.inventory());
        for id in a.ids() {
            prop_assert_eq!(a.get(id), b.get(id));
        }
        prop_assert_eq!(a.bytes_stored(), b.bytes_stored());
    }

    /// Duplicate delivery of any prefix of the history (at original tags)
    /// is a no-op — idempotence under retries.
    #[test]
    fn engine_is_idempotent_under_redelivery(
        ops in proptest::collection::vec((0u64..16, arb_mutation()), 1..30),
        cut in 0usize..30,
    ) {
        let reference = apply_history(&ops);
        // Apply history, then re-apply a prefix with the original tags.
        let mut e = apply_history(&ops);
        let cut = cut.min(ops.len());
        for (i, (obj, m)) in ops[..cut].iter().enumerate() {
            let _ = e.apply(
                oid(*obj),
                Tag { seq: (i + 1) as u64, writer: 0 },
                m,
            );
        }
        prop_assert_eq!(e.inventory(), reference.inventory());
        for id in reference.ids() {
            prop_assert_eq!(e.get(id), reference.get(id));
        }
    }

    /// `bytes_stored` accounting always equals the sum of object sizes.
    #[test]
    fn engine_accounting_is_exact(
        ops in proptest::collection::vec((0u64..16, arb_mutation()), 0..40)
    ) {
        let e = apply_history(&ops);
        let total: u64 = e
            .ids()
            .into_iter()
            .map(|id| e.get(id).map(|o| o.data.len() as u64).unwrap_or(0))
            .sum();
        prop_assert_eq!(e.bytes_stored(), total);
    }

    /// Version vectors: merge is commutative, idempotent, and dominates
    /// both inputs.
    #[test]
    fn version_vector_merge_laws(
        a in proptest::collection::vec((0u32..8, 1u64..100), 0..8),
        b in proptest::collection::vec((0u32..8, 1u64..100), 0..8),
    ) {
        let mk = |pairs: &[(u32, u64)]| {
            let mut v = VersionVector::new();
            for &(w, s) in pairs {
                v.observe(Tag { seq: s, writer: w });
            }
            v
        };
        let va = mk(&a);
        let vb = mk(&b);
        let mut ab = va.clone();
        ab.merge(&vb);
        let mut ba = vb.clone();
        ba.merge(&va);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.dominates(&va));
        prop_assert!(ab.dominates(&vb));
        let mut again = ab.clone();
        again.merge(&vb);
        prop_assert_eq!(again, ab);
    }

    /// Tag ordering is total and next() is strictly increasing.
    #[test]
    fn tag_next_increases(seq in 0u64..u64::MAX - 1, w1 in any::<u32>(), w2 in any::<u32>()) {
        let t = Tag { seq, writer: w1 };
        prop_assert!(t.next(w2) > t);
    }

    /// Every request round-trips through the wire codec unchanged.
    #[test]
    fn wire_requests_roundtrip(req in arb_request()) {
        let wire = encode_request(&req);
        prop_assert_eq!(decode_request(&wire).unwrap(), req);
    }

    /// Every response round-trips through the wire codec unchanged.
    #[test]
    fn wire_responses_roundtrip(resp in arb_response()) {
        let wire = encode_response(&resp);
        prop_assert_eq!(decode_response(&wire).unwrap(), resp);
    }

    /// No strict prefix of an encoded request decodes — the codec
    /// detects truncation at every cut point, for every variant.
    #[test]
    fn wire_request_truncation_always_detected(req in arb_request()) {
        let wire = encode_request(&req);
        for cut in 0..wire.len() {
            prop_assert!(decode_request(&wire.slice(..cut)).is_err(), "cut {}", cut);
        }
    }

    /// The traced envelope round-trips any request with and without a
    /// context, and an untraced envelope is byte-identical to the plain
    /// codec — old frames and new frames are the same bytes.
    #[test]
    fn wire_traced_requests_roundtrip(req in arb_request(), ctx in arb_trace_ctx()) {
        let wire = encode_request_traced(&req, ctx);
        let (back, back_ctx) = decode_request_traced(&wire).unwrap();
        prop_assert_eq!(back, req.clone());
        prop_assert_eq!(back_ctx, ctx);
        if ctx.is_none() {
            prop_assert_eq!(wire, encode_request(&req));
        } else {
            // The context rides behind the plain body, so a decoder that
            // has never heard of tracing still reads the request itself.
            prop_assert_eq!(
                wire.len(),
                encode_request(&req).len() + 1 + TraceContext::WIRE_LEN
            );
        }
    }

    /// Truncating a traced frame is detected at every cut point except
    /// one: cutting exactly at the plain-body boundary yields a valid
    /// pre-tracing frame, which must decode as the request with no
    /// context — that is the compatibility guarantee, not a hole.
    #[test]
    fn wire_traced_truncation_always_detected(req in arb_request()) {
        let ctx = TraceContext { trace: TraceId(7), parent: SpanId(9) };
        let wire = encode_request_traced(&req, Some(ctx));
        let plain_len = encode_request(&req).len();
        for cut in 0..wire.len() {
            let decoded = decode_request_traced(&wire.slice(..cut));
            if cut == plain_len {
                let (back, none) = decoded.unwrap();
                prop_assert_eq!(back, req.clone());
                prop_assert_eq!(none, None);
            } else {
                prop_assert!(decoded.is_err(), "cut {} decoded", cut);
            }
        }
    }

    /// Trailing garbage after a valid response is rejected.
    #[test]
    fn wire_response_trailing_bytes_detected(resp in arb_response(), junk in any::<u8>()) {
        let mut wire = encode_response(&resp).to_vec();
        wire.push(junk);
        prop_assert!(decode_response(&Bytes::from(wire)).is_err());
    }

    /// Stream frames round-trip exactly through the wire codec.
    #[test]
    fn wire_stream_frames_roundtrip(frame in arb_stream_frame()) {
        let wire = encode_stream_frame(&frame);
        prop_assert_eq!(decode_stream_frame(&wire).unwrap(), frame);
    }

    /// Stream replies round-trip exactly through the wire codec.
    #[test]
    fn wire_stream_replies_roundtrip(reply in arb_stream_reply()) {
        let wire = encode_stream_reply(&reply);
        prop_assert_eq!(decode_stream_reply(&wire).unwrap(), reply);
    }

    /// Every proper prefix of a stream frame fails to decode, and
    /// trailing garbage is rejected.
    #[test]
    fn wire_stream_frame_truncation_always_detected(
        frame in arb_stream_frame(),
        junk in any::<u8>(),
    ) {
        let wire = encode_stream_frame(&frame);
        for cut in 0..wire.len() {
            prop_assert!(decode_stream_frame(&wire.slice(..cut)).is_err(), "cut {} decoded", cut);
        }
        let mut extended = wire.to_vec();
        extended.push(junk);
        prop_assert!(decode_stream_frame(&Bytes::from(extended)).is_err());
    }

    /// Placement: deterministic, correct cardinality, no duplicates, and
    /// rack-diverse when enough racks exist.
    #[test]
    fn placement_invariants(obj in any::<u64>(), racks in 3u32..6, per_rack in 2u32..4) {
        let topo = Topology::uniform(racks, per_rack);
        let p = Placement::new(&topo, topo.node_ids(), 3);
        let id = ObjectId::from_parts(3, obj);
        let set = p.replicas(id);
        prop_assert_eq!(set.len(), 3);
        prop_assert_eq!(set.clone(), p.replicas(id));
        let mut dedup = set.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), 3);
        let mut rs: Vec<u32> = set.iter().map(|&n| topo.spec(n).rack).collect();
        rs.sort_unstable();
        rs.dedup();
        prop_assert_eq!(rs.len(), 3, "replicas must span 3 racks");
    }

    /// Ring balance: with 64 vnodes per node the primary-replica load
    /// across nodes stays within a bounded max/min ratio — no node owns
    /// a disproportionate arc of the ring.
    #[test]
    fn ring_load_is_balanced(racks in 3u32..6, per_rack in 2u32..4, salt in any::<u64>()) {
        let topo = Topology::uniform(racks, per_rack);
        let nodes = topo.node_ids();
        let p = Placement::new(&topo, nodes.clone(), 3);
        let mut load = std::collections::BTreeMap::new();
        const OBJECTS: u64 = 2048;
        for i in 0..OBJECTS {
            let id = ObjectId::from_parts(salt, i);
            for n in p.replicas(id) {
                *load.entry(n).or_insert(0u64) += 1;
            }
        }
        prop_assert_eq!(load.len(), nodes.len(), "every node must own some keys");
        let max = *load.values().max().unwrap();
        let min = *load.values().min().unwrap();
        prop_assert!(
            max <= min * 3,
            "vnode load imbalance: max {} vs min {} over {} nodes",
            max, min, nodes.len()
        );
    }

    /// Minimal movement: joining one node relocates only the keys the
    /// new node takes over — every changed replica set gains the joined
    /// node, keeps a majority of its old members, and the total number
    /// of changed sets is near the consistent-hashing expectation of
    /// `replication · objects / (nodes + 1)`.
    #[test]
    fn ring_join_moves_the_minimum(racks in 3u32..6, per_rack in 2u32..4, salt in any::<u64>()) {
        let topo = Topology::uniform(racks, per_rack);
        let nodes = topo.node_ids();
        let (joiner, initial) = nodes.split_last().unwrap();
        let p = Placement::new(&topo, initial.to_vec(), 3);
        const OBJECTS: u64 = 512;
        let ids: Vec<ObjectId> =
            (0..OBJECTS).map(|i| ObjectId::from_parts(salt, i)).collect();
        let before: Vec<Vec<_>> = ids.iter().map(|&id| p.replicas(id)).collect();

        let pinned = p.begin_join(&topo, *joiner, &ids);
        for &id in &pinned {
            p.complete_move(id);
        }

        let mut changed = 0u64;
        for (i, &id) in ids.iter().enumerate() {
            let after = p.replicas(id);
            if after == before[i] {
                continue;
            }
            changed += 1;
            prop_assert!(
                after.contains(joiner),
                "replica set changed without involving the joined node"
            );
            let kept = after.iter().filter(|n| before[i].contains(n)).count();
            prop_assert!(
                kept >= 2,
                "join displaced more than one replica: {:?} -> {:?}",
                &before[i], &after
            );
        }
        prop_assert_eq!(changed, pinned.len() as u64);
        // Expectation: 3·objects/(n+1) replica slots touch the joiner;
        // allow 2× for vnode-placement variance.
        let bound = 2 * 3 * OBJECTS / (initial.len() as u64 + 1) + 8;
        prop_assert!(
            changed <= bound,
            "join relocated {} of {} keys (bound {})",
            changed, OBJECTS, bound
        );
    }

    /// Minimal movement, leave direction: removing a node changes only
    /// the replica sets that contained it.
    #[test]
    fn ring_leave_touches_only_the_leavers_keys(
        racks in 4u32..6, per_rack in 2u32..4, salt in any::<u64>()
    ) {
        let topo = Topology::uniform(racks, per_rack);
        let nodes = topo.node_ids();
        let p = Placement::new(&topo, nodes.clone(), 3);
        const OBJECTS: u64 = 512;
        let ids: Vec<ObjectId> =
            (0..OBJECTS).map(|i| ObjectId::from_parts(salt, i)).collect();
        let before: Vec<Vec<_>> = ids.iter().map(|&id| p.replicas(id)).collect();
        let leaver = nodes[nodes.len() / 2];

        let pinned = p.begin_leave(leaver, &ids);
        for &id in &pinned {
            p.complete_move(id);
        }

        for (i, &id) in ids.iter().enumerate() {
            let after = p.replicas(id);
            prop_assert!(!after.contains(&leaver), "leaver still owns {:?}", id);
            if !before[i].contains(&leaver) {
                prop_assert_eq!(
                    &after, &before[i],
                    "a set without the leaver moved anyway"
                );
            }
        }
    }

    /// Lookup determinism across rebuilds: two placements built from the
    /// same membership — even via different join orders — agree on every
    /// replica set.
    #[test]
    fn ring_lookup_is_deterministic_across_rebuilds(
        racks in 3u32..6, per_rack in 2u32..4, obj in any::<u64>(), salt in any::<u64>()
    ) {
        let topo = Topology::uniform(racks, per_rack);
        let nodes = topo.node_ids();
        let id = ObjectId::from_parts(salt, obj);

        let a = Placement::new(&topo, nodes.clone(), 3);
        let b = Placement::new(&topo, nodes.clone(), 3);
        prop_assert_eq!(a.replicas(id), b.replicas(id));

        // Build the same membership by joining the last node late; once
        // its moves complete, lookups are indistinguishable from a ring
        // born with that membership.
        let (last, initial) = nodes.split_last().unwrap();
        let c = Placement::new(&topo, initial.to_vec(), 3);
        let all: Vec<ObjectId> = (0..256).map(|i| ObjectId::from_parts(salt, i)).collect();
        for pin in c.begin_join(&topo, *last, &all) {
            c.complete_move(pin);
        }
        for &probe in &all {
            prop_assert_eq!(c.replicas(probe), a.replicas(probe));
        }
    }
}
