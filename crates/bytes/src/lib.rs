//! Vendored, dependency-free subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the small slice of the `bytes` API it actually uses:
//! cheaply-cloneable immutable [`Bytes`] views (reference-counted, with
//! zero-copy `slice`) and a growable [`BytesMut`] builder that freezes
//! into [`Bytes`]. Semantics match the upstream crate for this subset;
//! anything not used by the workspace is intentionally absent.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---- buffer pool ---------------------------------------------------------

/// Largest buffer the pool will hold on to; bigger ones are freed so a
/// single huge frame can't pin memory forever.
const POOL_MAX_BUF: usize = 64 * 1024;
/// Most buffers the pool retains per thread.
const POOL_MAX_BUFS: usize = 64;

thread_local! {
    /// Recycled backing buffers, LIFO so the warmest one is reused first.
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Pool telemetry; process-wide so the bench harness reads one pair of
/// counters no matter which thread ran the workload.
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Buffer-pool counters `(hits, misses)` — the allocation proxy the
/// bench snapshots record. A hit means [`BytesMut::with_capacity`]
/// reused a recycled buffer instead of allocating a fresh one.
pub fn pool_stats() -> (u64, u64) {
    (
        POOL_HITS.load(Ordering::Relaxed),
        POOL_MISSES.load(Ordering::Relaxed),
    )
}

/// Takes a recycled buffer with at least `cap` capacity, or allocates.
fn pool_take(cap: usize) -> Vec<u8> {
    let reused = if cap <= POOL_MAX_BUF {
        POOL.try_with(|p| p.borrow_mut().pop()).ok().flatten()
    } else {
        None
    };
    match reused {
        Some(mut v) if v.capacity() >= cap => {
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v
        }
        Some(mut v) => {
            // Reused storage, but it must grow first; count the realloc
            // honestly as a miss.
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v.reserve(cap);
            v
        }
        None => {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::with_capacity(cap)
        }
    }
}

/// Returns a buffer to the pool (or frees it if the pool is full or the
/// buffer is outside the retained size band).
fn pool_put(v: Vec<u8>) {
    if v.capacity() == 0 || v.capacity() > POOL_MAX_BUF {
        return;
    }
    // `try_with`: recycling may run during thread teardown, after the
    // TLS slot is gone — just drop the buffer then.
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_MAX_BUFS {
            p.push(v);
        }
    });
}

/// An owned backing buffer that returns itself to the thread-local pool
/// when the last [`Bytes`] view over it drops.
struct PoolChunk {
    buf: Vec<u8>,
}

impl Drop for PoolChunk {
    fn drop(&mut self) {
        pool_put(std::mem::take(&mut self.buf));
    }
}

/// A cheaply cloneable, immutable view of contiguous memory.
///
/// Clones share the underlying buffer; [`Bytes::slice`] returns a
/// zero-copy sub-view.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// A `Vec` adopted without copying; recycled into the buffer pool
    /// when the last view drops.
    Owned(Arc<PoolChunk>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            data: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Creates a `Bytes` view of a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-view of `self` over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let stop = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= stop && stop <= len,
            "slice range {begin}..{stop} out of bounds for length {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + stop,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        let all = match &self.data {
            Repr::Static(s) => s,
            Repr::Owned(c) => &c.buf[..],
        };
        &all[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Adopt the Vec in place (`Arc::from(v)` would copy every byte
        // into a fresh refcounted allocation); the buffer joins the
        // recycling pool when the last view drops.
        let end = v.len();
        Bytes {
            data: Repr::Owned(Arc::new(PoolChunk { buf: v })),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity,
    /// drawing from the thread-local recycling pool when possible. A
    /// pooled buffer keeps whatever (larger) capacity it grew to in its
    /// previous life, so steady-state encoders stop reallocating even
    /// when frames outgrow `cap`.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: pool_take(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Converts the buffer into an immutable [`Bytes`] without copying:
    /// the backing storage is adopted as-is and recycled into the pool
    /// when the last view of it drops.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.buf[..], f)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.buf.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_clamps() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        m.extend_from_slice(b"def");
        let b = m.freeze();
        assert_eq!(b.to_vec(), b"abcdef".to_vec());
        assert_eq!(b, Bytes::from_static(b"abcdef"));
    }

    #[test]
    fn equality_across_representations() {
        let a = Bytes::from_static(b"xyz");
        let b = Bytes::from(b"xyz".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"xyz".to_vec());
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn freeze_adopts_storage_without_copying() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"hello world");
        let ptr = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(&b[..], b"hello world");
        // Zero-copy: the frozen view reads from the same allocation the
        // mutable buffer wrote into.
        assert_eq!(b.as_ref().as_ptr(), ptr);
    }

    #[test]
    fn dropped_buffers_are_recycled() {
        // Warm the pool, remembering the backing allocation.
        let mut m = BytesMut::with_capacity(100);
        m.extend_from_slice(&[7u8; 100]);
        let ptr = m.as_ref().as_ptr();
        drop(m.freeze());

        let (h0, _) = pool_stats();
        let m2 = BytesMut::with_capacity(64);
        let (h1, _) = pool_stats();
        assert_eq!(h1, h0 + 1, "second acquisition should hit the pool");
        assert_eq!(m2.as_ref().as_ptr(), ptr, "same buffer came back");
        assert!(m2.is_empty());
        assert!(m2.buf.capacity() >= 100, "recycled capacity is retained");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let big = 2 * POOL_MAX_BUF;
        let mut m = BytesMut::with_capacity(big);
        m.extend_from_slice(&[1u8; 4]);
        let ptr = m.as_ref().as_ptr();
        let (_, miss0) = pool_stats();
        drop(m.freeze());
        let m2 = BytesMut::with_capacity(big);
        let (_, miss1) = pool_stats();
        assert!(miss1 > miss0, "oversized request must allocate fresh");
        assert_ne!(m2.as_ref().as_ptr(), ptr);
    }

    #[test]
    fn slices_keep_the_chunk_alive_until_last_drop() {
        let mut m = BytesMut::with_capacity(32);
        m.extend_from_slice(b"abcdefgh");
        let b = m.freeze();
        let head = b.slice(..4);
        let tail = b.slice(4..);
        drop(b);
        assert_eq!(&head[..], b"abcd");
        assert_eq!(&tail[..], b"efgh");
    }
}
