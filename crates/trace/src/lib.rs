#![warn(missing_docs)]
//! # pcsi-trace — deterministic distributed tracing
//!
//! Every experiment in this repository is a pure function of a seed, and
//! its traces are too: span and trace ids are drawn from the dedicated
//! `"trace-ids"` RNG stream, timestamps are virtual time, and the text
//! renderer sorts deterministically — so the rendered span tree of a
//! request is byte-identical across runs of the same seed and can be
//! fingerprinted like any other simulation output.
//!
//! The pieces:
//!
//! * [`Tracer`] — per-deployment handle; opens root spans (subject to the
//!   [`Sampling`] knob) and child spans (always recorded once the root
//!   sampled), writing finished spans into a bounded ring-buffer
//!   [`TraceSink`].
//! * [`TraceContext`] — the compact `(trace id, parent span id)` pair
//!   that crosses nodes. It rides `pcsi_net::Fabric` calls and the store
//!   wire envelope; its [`TraceContext::WIRE_LEN`] bytes are charged to
//!   virtual time like any other payload bytes.
//! * [`SpanHandle`] — an open span. Finishing (explicitly or on drop)
//!   stamps the end time and records the span. A *disabled* handle is a
//!   `None` all the way down: **zero RNG draws, zero allocations, zero
//!   sink writes** — the hot path of an untraced run is untouched.
//! * Analysis over finished spans: [`render_trace`] (indented tree with
//!   virtual-time offsets and attributes), [`critical_path`] (the chain
//!   of last-finishing children), and [`self_time_breakdown`] (per-span
//!   self time aggregated into caller-defined categories — how the bench
//!   harness derives protocol-vs-network shares from traces instead of
//!   hand-maintained counters).
//!
//! Determinism rules: ids come only from the `"trace-ids"` stream (a
//! dedicated stream cannot perturb any other seeded decision); sampling
//! draws happen only for root spans under [`Sampling::Ratio`]; children
//! of a sampled trace never draw a sampling decision; `Sampling::Off`
//! draws nothing at all.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use pcsi_sim::rng::DetRng;
use pcsi_sim::{SimHandle, SimTime};

/// Name of the RNG stream trace/span ids (and ratio-sampling decisions)
/// are drawn from. Dedicated, so tracing can never perturb the draws any
/// other component sees.
pub const TRACE_RNG_STREAM: &str = "trace-ids";

/// Identifies one end-to-end trace (one root span and its descendants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The compact cross-node propagation context: which trace the work
/// belongs to and which span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this work belongs to.
    pub trace: TraceId,
    /// The span the remote work should parent under.
    pub parent: SpanId,
}

impl TraceContext {
    /// Encoded size in bytes; what a traced message additionally pays on
    /// the wire.
    pub const WIRE_LEN: usize = 16;

    /// Little-endian `trace || parent`.
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace.0.to_le_bytes());
        out[8..].copy_from_slice(&self.parent.0.to_le_bytes());
        out
    }

    /// Inverse of [`TraceContext::encode`]; `None` unless exactly
    /// [`TraceContext::WIRE_LEN`] bytes.
    pub fn decode(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        let trace = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let parent = u64::from_le_bytes(bytes[8..].try_into().ok()?);
        Some(TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
        })
    }
}

/// How many root spans get traced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Trace nothing. The hot path makes zero RNG draws, zero
    /// allocations and zero sink writes.
    Off,
    /// Trace this fraction of root spans (one `f64` draw per root).
    Ratio(f64),
    /// Trace every root span.
    Always,
}

/// One attribute value. `U64` and `Str` record without allocating;
/// `Text` is for values that genuinely need formatting (build it behind
/// [`SpanHandle::is_sampled`] or via [`SpanHandle::attr_with`] so an
/// untraced run never formats).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An integer attribute.
    U64(u64),
    /// A static-string attribute (no allocation).
    Str(&'static str),
    /// An owned-string attribute.
    Text(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Text(s) => f.write_str(s),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

/// A finished span as recorded in the sink.
#[derive(Debug, Clone)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span, `None` for a root.
    pub parent: Option<SpanId>,
    /// Operation name (stable `layer.op` convention, e.g. `store.read`).
    pub name: &'static str,
    /// Virtual-time start.
    pub start: SimTime,
    /// Virtual-time end.
    pub end: SimTime,
    /// Recorded attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Sink insertion sequence; tie-breaks rendering order.
    pub seq: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end.saturating_since(self.start).as_nanos() as u64
    }
}

struct SinkInner {
    spans: RefCell<VecDeque<Span>>,
    capacity: usize,
    seq: Cell<u64>,
    dropped: Cell<u64>,
}

/// Bounded ring buffer of finished spans. When full, the oldest span is
/// evicted (and counted) — tracing must never grow without bound in a
/// long simulation.
#[derive(Clone)]
pub struct TraceSink {
    inner: Rc<SinkInner>,
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` spans.
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            inner: Rc::new(SinkInner {
                spans: RefCell::new(VecDeque::new()),
                capacity: capacity.max(1),
                seq: Cell::new(0),
                dropped: Cell::new(0),
            }),
        }
    }

    fn push(&self, mut span: Span) {
        let mut spans = self.inner.spans.borrow_mut();
        span.seq = self.inner.seq.get();
        self.inner.seq.set(span.seq + 1);
        if spans.len() == self.inner.capacity {
            spans.pop_front();
            self.inner.dropped.set(self.inner.dropped.get() + 1);
        }
        spans.push_back(span);
    }

    /// All recorded spans, in completion order.
    pub fn snapshot(&self) -> Vec<Span> {
        self.inner.spans.borrow().iter().cloned().collect()
    }

    /// Drains and returns all recorded spans.
    pub fn take(&self) -> Vec<Span> {
        self.inner.spans.borrow_mut().drain(..).collect()
    }

    /// Spans belonging to one trace, in completion order.
    pub fn trace(&self, trace: TraceId) -> Vec<Span> {
        self.inner
            .spans
            .borrow()
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Number of spans evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.inner.spans.borrow().len()
    }

    /// True when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.inner.spans.borrow().is_empty()
    }
}

struct TracerInner {
    handle: SimHandle,
    sampling: Sampling,
    rng: RefCell<Option<DetRng>>,
    sink: TraceSink,
    id_draws: Cell<u64>,
}

/// The per-deployment tracing handle. Cheap to clone; clones share the
/// sink and the id stream.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<TracerInner>,
}

impl Tracer {
    /// Creates a tracer writing into a fresh sink of `capacity` spans.
    ///
    /// The `"trace-ids"` RNG stream is created lazily on the first
    /// sampled span, so an [`Sampling::Off`] tracer touches the
    /// simulation's RNG registry not at all.
    pub fn new(handle: &SimHandle, sampling: Sampling, capacity: usize) -> Tracer {
        Tracer {
            inner: Rc::new(TracerInner {
                handle: handle.clone(),
                sampling,
                rng: RefCell::new(None),
                sink: TraceSink::new(capacity),
                id_draws: Cell::new(0),
            }),
        }
    }

    /// The sampling mode this tracer was built with.
    pub fn sampling(&self) -> Sampling {
        self.inner.sampling
    }

    /// The sink finished spans are recorded into.
    pub fn sink(&self) -> &TraceSink {
        &self.inner.sink
    }

    /// How many id/sampling draws were made on the `"trace-ids"` stream —
    /// the zero-overhead-when-off guard asserts this stays 0.
    pub fn id_draws(&self) -> u64 {
        self.inner.id_draws.get()
    }

    fn draw(&self) -> u64 {
        let mut rng = self.inner.rng.borrow_mut();
        let rng = rng.get_or_insert_with(|| self.inner.handle.rng().stream(TRACE_RNG_STREAM));
        self.inner.id_draws.set(self.inner.id_draws.get() + 1);
        rng.u64()
    }

    fn draw_decision(&self) -> f64 {
        let mut rng = self.inner.rng.borrow_mut();
        let rng = rng.get_or_insert_with(|| self.inner.handle.rng().stream(TRACE_RNG_STREAM));
        self.inner.id_draws.set(self.inner.id_draws.get() + 1);
        rng.f64()
    }

    /// Opens a root span, subject to the sampling knob. Off (or an
    /// unlucky ratio draw) returns a disabled handle.
    pub fn root(&self, name: &'static str) -> SpanHandle {
        let sampled = match self.inner.sampling {
            Sampling::Off => false,
            Sampling::Always => true,
            Sampling::Ratio(p) => self.draw_decision() < p.clamp(0.0, 1.0),
        };
        if !sampled {
            return SpanHandle(None);
        }
        let trace = TraceId(self.draw());
        let id = SpanId(self.draw());
        self.open(trace, id, None, name)
    }

    /// Opens a child span under an incoming context. The sampling
    /// decision was made at the root: a context exists only for a
    /// sampled trace, so children always record.
    pub fn child(&self, ctx: TraceContext, name: &'static str) -> SpanHandle {
        let id = SpanId(self.draw());
        self.open(ctx.trace, id, Some(ctx.parent), name)
    }

    /// Opens a child span when a context is present, else a disabled
    /// handle — the common shape at an RPC receiver.
    pub fn child_of(&self, ctx: Option<TraceContext>, name: &'static str) -> SpanHandle {
        match ctx {
            Some(ctx) => self.child(ctx, name),
            None => SpanHandle(None),
        }
    }

    fn open(
        &self,
        trace: TraceId,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
    ) -> SpanHandle {
        SpanHandle(Some(Box::new(LiveSpan {
            tracer: self.clone(),
            trace,
            id,
            parent,
            name,
            start: self.inner.handle.now(),
            attrs: Vec::new(),
        })))
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sampling", &self.inner.sampling)
            .finish()
    }
}

struct LiveSpan {
    tracer: Tracer,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: SimTime,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An open span. Disabled handles (sampling off, no incoming context)
/// are a `None` and cost nothing. Finishing — explicitly via
/// [`SpanHandle::finish`] or implicitly on drop — stamps the end time
/// and records the span in the tracer's sink.
pub struct SpanHandle(Option<Box<LiveSpan>>);

impl SpanHandle {
    /// A handle that records nothing.
    pub fn disabled() -> SpanHandle {
        SpanHandle(None)
    }

    /// True when this span is actually recording.
    pub fn is_sampled(&self) -> bool {
        self.0.is_some()
    }

    /// The propagation context pointing at this span, for handing to
    /// child work (local or remote). `None` when disabled — an untraced
    /// request sends no context bytes.
    pub fn ctx(&self) -> Option<TraceContext> {
        self.0.as_ref().map(|s| TraceContext {
            trace: s.trace,
            parent: s.id,
        })
    }

    /// Records an attribute. `u64` / `&'static str` values do not
    /// allocate; disabled handles do nothing.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(s) = self.0.as_mut() {
            s.attrs.push((key, value.into()));
        }
    }

    /// Records an attribute computed lazily — the closure runs only when
    /// the span is sampled, so formatting costs nothing when tracing is
    /// off.
    pub fn attr_with(&mut self, key: &'static str, value: impl FnOnce() -> AttrValue) {
        if let Some(s) = self.0.as_mut() {
            let v = value();
            s.attrs.push((key, v));
        }
    }

    /// Opens a child span of this one (same tracer). Disabled parents
    /// yield disabled children.
    pub fn span(&self, name: &'static str) -> SpanHandle {
        match (&self.0, self.ctx()) {
            (Some(live), Some(ctx)) => live.tracer.child(ctx, name),
            _ => SpanHandle(None),
        }
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if let Some(live) = self.0.take() {
            let end = live.tracer.inner.handle.now();
            live.tracer.inner.sink.push(Span {
                trace: live.trace,
                id: live.id,
                parent: live.parent,
                name: live.name,
                start: live.start,
                end,
                attrs: live.attrs,
                seq: 0,
            });
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

impl std::fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(s) => write!(f, "SpanHandle({:?}/{:?} {})", s.trace, s.id, s.name),
            None => f.write_str("SpanHandle(disabled)"),
        }
    }
}

// ---------------------------------------------------------------------
// Analysis over finished spans.
// ---------------------------------------------------------------------

/// Indexes `spans` (already filtered to one trace or not) into
/// parent → children edges with a deterministic order.
fn children_of(spans: &[Span]) -> Vec<Vec<usize>> {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if let Some(p) = s.parent {
            if let Some(pi) = spans.iter().position(|c| c.id == p && c.trace == s.trace) {
                children[pi].push(i);
            }
        }
    }
    for list in &mut children {
        list.sort_by_key(|&i| (spans[i].start, spans[i].seq));
    }
    children
}

fn roots_of(spans: &[Span]) -> Vec<usize> {
    let mut roots: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.parent.is_none()
                || !spans
                    .iter()
                    .any(|c| c.trace == s.trace && Some(c.id) == s.parent)
        })
        .map(|(i, _)| i)
        .collect();
    roots.sort_by_key(|&i| (spans[i].start, spans[i].seq));
    roots
}

/// Renders the spans of `trace` as an indented tree: one line per span
/// with its offset from the trace start, duration, and attributes.
/// Deterministic byte-for-byte for a fixed seed.
pub fn render_trace(spans: &[Span], trace: TraceId) -> String {
    let spans: Vec<Span> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
    render_spans(&spans)
}

/// Renders every trace present in `spans`, roots in (start, seq) order.
pub fn render_spans(spans: &[Span]) -> String {
    let children = children_of(spans);
    let roots = roots_of(spans);
    let mut out = String::new();
    for &root in &roots {
        let t0 = spans[root].start;
        render_node(spans, &children, root, t0, 0, &mut out);
    }
    out
}

fn render_node(
    spans: &[Span],
    children: &[Vec<usize>],
    i: usize,
    t0: SimTime,
    depth: usize,
    out: &mut String,
) {
    let s = &spans[i];
    for _ in 0..depth {
        out.push_str("  ");
    }
    let off = s.start.saturating_since(t0).as_nanos() as u64;
    out.push_str(&format!("{} +{}ns {}ns", s.name, off, s.duration_ns()));
    if depth == 0 {
        // The root line carries the seeded trace id, so a rendered
        // trace fingerprints the id draws too.
        out.push_str(&format!(" trace={:016x}", s.trace.0));
    }
    for (k, v) in &s.attrs {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
    for &c in &children[i] {
        render_node(spans, children, c, t0, depth + 1, out);
    }
}

/// The critical path of `trace`: starting at the root, repeatedly
/// descend into the last-finishing child. Returns the span names on the
/// path, root first — the chain a latency optimization must shorten.
pub fn critical_path(spans: &[Span], trace: TraceId) -> Vec<Span> {
    let spans: Vec<Span> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
    let children = children_of(&spans);
    let roots = roots_of(&spans);
    let Some(&root) = roots.first() else {
        return Vec::new();
    };
    let mut path = Vec::new();
    let mut cur = root;
    loop {
        path.push(spans[cur].clone());
        // Last-finishing child; ties break on sink order for determinism.
        let next = children[cur]
            .iter()
            .copied()
            .max_by_key(|&c| (spans[c].end, spans[c].seq));
        match next {
            Some(c) => cur = c,
            None => break,
        }
    }
    path
}

/// Per-category totals of span *self time* (duration minus time covered
/// by child spans) across `trace`, in nanoseconds. `classify` maps a
/// span name to a category label; categories appear in first-seen order
/// over the deterministic render order.
pub fn self_time_breakdown(
    spans: &[Span],
    trace: TraceId,
    classify: &dyn Fn(&str) -> &'static str,
) -> Vec<(&'static str, u64)> {
    let spans: Vec<Span> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
    let children = children_of(&spans);
    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start, spans[i].seq));
    for i in order {
        let s = &spans[i];
        let covered: u64 = children[i].iter().map(|&c| spans[c].duration_ns()).sum();
        let self_ns = s.duration_ns().saturating_sub(covered);
        let cat = classify(s.name);
        match totals.iter_mut().find(|(c, _)| *c == cat) {
            Some((_, t)) => *t += self_ns,
            None => totals.push((cat, self_ns)),
        }
    }
    totals
}

/// Total duration of the (first) root span of `trace`, in nanoseconds.
pub fn trace_duration_ns(spans: &[Span], trace: TraceId) -> u64 {
    let spans: Vec<Span> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
    roots_of(&spans)
        .first()
        .map(|&r| spans[r].duration_ns())
        .unwrap_or(0)
}

/// FNV-1a over a rendered trace (or any string) — the trace fingerprint
/// used by the determinism suite.
pub fn fingerprint(rendered: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in rendered.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcsi_sim::Sim;
    use std::time::Duration;

    fn collect(sampling: Sampling, seed: u64) -> (Vec<Span>, u64) {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let tracer = Tracer::new(&h, sampling, 1024);
        let t = tracer.clone();
        sim.block_on(async move {
            let mut root = t.root("op.outer");
            root.attr("bytes", 1024u64);
            {
                let mut a = root.span("op.inner_a");
                h.sleep(Duration::from_micros(10)).await;
                a.attr("kind", "fast");
                a.finish();
            }
            {
                let b = root.span("op.inner_b");
                h.sleep(Duration::from_micros(30)).await;
                // Remote leg: context crosses, child opens at "the other
                // node" (same tracer here — the sim is one process).
                if let Some(ctx) = b.ctx() {
                    let remote = t.child(ctx, "op.remote");
                    h.sleep(Duration::from_micros(5)).await;
                    remote.finish();
                }
                b.finish();
            }
            root.finish();
        });
        (tracer.sink().snapshot(), tracer.id_draws())
    }

    #[test]
    fn off_makes_zero_draws_and_records_nothing() {
        let (spans, draws) = collect(Sampling::Off, 7);
        assert!(spans.is_empty());
        assert_eq!(draws, 0);
    }

    #[test]
    fn always_records_the_full_tree() {
        let (spans, draws) = collect(Sampling::Always, 7);
        assert_eq!(spans.len(), 4);
        assert!(draws >= 5, "trace id + 4 span ids");
        let root = spans.iter().find(|s| s.name == "op.outer").unwrap();
        assert!(root.parent.is_none());
        for name in ["op.inner_a", "op.inner_b", "op.remote"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.trace, root.trace);
            assert!(s.parent.is_some());
        }
        // The remote span parents under inner_b via the context.
        let b = spans.iter().find(|s| s.name == "op.inner_b").unwrap();
        let remote = spans.iter().find(|s| s.name == "op.remote").unwrap();
        assert_eq!(remote.parent, Some(b.id));
    }

    #[test]
    fn ids_and_render_are_deterministic_per_seed() {
        let (a, _) = collect(Sampling::Always, 42);
        let (b, _) = collect(Sampling::Always, 42);
        let (c, _) = collect(Sampling::Always, 43);
        let ra = render_spans(&a);
        let rb = render_spans(&b);
        let rc = render_spans(&c);
        assert_eq!(ra, rb);
        assert_eq!(fingerprint(&ra), fingerprint(&rb));
        assert_ne!(
            fingerprint(&ra),
            fingerprint(&rc),
            "different seeds must yield different ids"
        );
    }

    #[test]
    fn render_shows_offsets_durations_and_attrs() {
        let (spans, _) = collect(Sampling::Always, 7);
        let root = spans.iter().find(|s| s.name == "op.outer").unwrap();
        let out = render_trace(&spans, root.trace);
        let head = format!(
            "op.outer +0ns 45000ns trace={:016x} bytes=1024\n",
            root.trace.0
        );
        assert!(out.starts_with(&head), "{out}");
        assert!(
            out.contains("  op.inner_a +0ns 10000ns kind=fast\n"),
            "{out}"
        );
        assert!(out.contains("  op.inner_b +10000ns 35000ns\n"), "{out}");
        assert!(out.contains("    op.remote +40000ns 5000ns\n"), "{out}");
    }

    #[test]
    fn ratio_sampling_is_deterministic_and_partial() {
        let mut sim = Sim::new(11);
        let h = sim.handle();
        let tracer = Tracer::new(&h, Sampling::Ratio(0.5), 4096);
        let t = tracer.clone();
        let sampled = sim.block_on(async move {
            let mut hits = 0;
            for _ in 0..200 {
                let s = t.root("op");
                if s.is_sampled() {
                    hits += 1;
                }
                s.finish();
            }
            hits
        });
        assert!((60..140).contains(&sampled), "sampled {sampled}");
        assert_eq!(tracer.sink().len(), sampled);
        // Unsampled roots hand out no context: nothing to propagate.
        let mut sim2 = Sim::new(11);
        let h2 = sim2.handle();
        let t2 = Tracer::new(&h2, Sampling::Ratio(0.0), 16);
        sim2.block_on(async move {
            let s = t2.root("op");
            assert!(s.ctx().is_none());
        });
    }

    #[test]
    fn sink_is_bounded_and_counts_evictions() {
        let mut sim = Sim::new(3);
        let h = sim.handle();
        let tracer = Tracer::new(&h, Sampling::Always, 8);
        let t = tracer.clone();
        sim.block_on(async move {
            for _ in 0..20 {
                t.root("op").finish();
            }
        });
        assert_eq!(tracer.sink().len(), 8);
        assert_eq!(tracer.sink().dropped(), 12);
    }

    #[test]
    fn context_roundtrips_on_the_wire() {
        let ctx = TraceContext {
            trace: TraceId(0xdead_beef_0bad_cafe),
            parent: SpanId(42),
        };
        let bytes = ctx.encode();
        assert_eq!(bytes.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::decode(&bytes), Some(ctx));
        assert_eq!(TraceContext::decode(&bytes[..15]), None);
    }

    #[test]
    fn critical_path_follows_last_finishing_children() {
        let (spans, _) = collect(Sampling::Always, 7);
        let root = spans.iter().find(|s| s.name == "op.outer").unwrap();
        let path: Vec<&str> = critical_path(&spans, root.trace)
            .iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(path, ["op.outer", "op.inner_b", "op.remote"]);
    }

    #[test]
    fn self_time_breakdown_subtracts_children() {
        let (spans, _) = collect(Sampling::Always, 7);
        let root = spans.iter().find(|s| s.name == "op.outer").unwrap();
        let classify = |name: &str| -> &'static str {
            if name == "op.remote" {
                "remote"
            } else if name.starts_with("op.inner") {
                "inner"
            } else {
                "outer"
            }
        };
        let bd = self_time_breakdown(&spans, root.trace, &classify);
        // outer: 45us total minus 10+35 covered = 0; inner: 10 + (35-5);
        // remote: 5. inner_a (seq 0) sorts before the root at start 0,
        // so "inner" is the first-seen category.
        assert_eq!(bd, vec![("inner", 40_000), ("outer", 0), ("remote", 5_000)]);
        assert_eq!(trace_duration_ns(&spans, root.trace), 45_000);
    }
}
