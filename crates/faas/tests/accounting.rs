//! Allocation-accounting property sweep.
//!
//! Random seeded interleavings of invoke / evict / reap / preempt (with
//! the predictive autoscaler and work stealing running throughout) must
//! leave `ClusterState` allocation balanced at exactly zero once the
//! system quiesces: every cold reservation, warm instance, pre-warm boot,
//! preemption, steal, and mid-flight eviction accounted for. A leak shows
//! up as residual allocation; a double-free panics inside
//! `ClusterState::release`.
//!
//! Like the chaos sweeps, the seed count scales with the `FAAS_SEEDS`
//! env var (default 16; CI runs 128). Any failure prints the seed —
//! re-run with that seed for a byte-identical replay.

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::api::{InvokeRequest, InvokeResponse};
use pcsi_core::{PcsiError, Reference};
use pcsi_faas::autoscale::AutoscaleConfig;
use pcsi_faas::function::{DataPlane, FnCtx, FunctionImage, WorkModel};
use pcsi_faas::registry::Goal;
use pcsi_faas::runtime::{Runtime, RuntimeConfig};
use pcsi_faas::{ClusterState, PlacementPolicy, TaskGraph, Variant};
use pcsi_net::{NodeId, Topology};
use pcsi_sim::executor::LocalBoxFuture;
use pcsi_sim::Sim;

struct NoData;

impl DataPlane for NoData {
    fn read(&self, _: &Reference, _: u64, _: u64) -> LocalBoxFuture<Result<Bytes, PcsiError>> {
        Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
    }
    fn write(&self, _: &Reference, _: u64, _: Bytes) -> LocalBoxFuture<Result<(), PcsiError>> {
        Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
    }
    fn append(&self, _: &Reference, _: Bytes) -> LocalBoxFuture<Result<u64, PcsiError>> {
        Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
    }
    fn pop(&self, _: &Reference) -> LocalBoxFuture<Result<Bytes, PcsiError>> {
        Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
    }
    fn invoke(
        &self,
        _: &Reference,
        _: InvokeRequest,
    ) -> LocalBoxFuture<Result<InvokeResponse, PcsiError>> {
        Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
    }
}

fn seed_count() -> u64 {
    std::env::var("FAAS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// One full scenario on one seed; panics (with the seed in the message)
/// if allocation does not balance to zero at quiescence.
fn run_seed(seed: u64) {
    let mut sim = Sim::new(seed);
    let cluster = ClusterState::new(&Topology::uniform(2, 2));
    let rt = Runtime::new(
        sim.handle(),
        cluster.clone(),
        RuntimeConfig {
            // Scavenge + preemption: every instance is preemptible, so
            // the preempt path actually fires under pressure.
            policy: PlacementPolicy::Scavenge,
            keep_alive: Duration::from_millis(500),
            reap_interval: Duration::from_millis(100),
            preemption: true,
            autoscale: AutoscaleConfig {
                interval: Duration::from_millis(100),
                window: Duration::from_secs(1),
                ..AutoscaleConfig::enabled()
            },
        },
    );
    rt.register_body(
        "upstream",
        Rc::new(|ctx: FnCtx| {
            Box::pin(async move {
                ctx.compute(Duration::from_millis(8)).await;
                Ok(ctx.body)
            })
        }),
    );
    rt.register_body(
        "steady",
        Rc::new(|ctx: FnCtx| {
            Box::pin(async move {
                ctx.compute(Duration::from_millis(15)).await;
                Ok(ctx.body)
            })
        }),
    );
    rt.register_body(
        "flaky",
        Rc::new(|_ctx| Box::pin(async { Err(PcsiError::FunctionFailed("flaky".into())) })),
    );
    // Graph edge: upstream arrivals pre-warm a downstream pool that is
    // never actually invoked — its instances must still drain to zero.
    let graph = TaskGraph::linear(&["upstream", "downstream"]);
    rt.register_prewarm_graph(&graph, |stage| {
        (stage.function == "downstream").then(|| Variant::wasm(1))
    });

    let h = sim.handle();
    sim.block_on({
        let rt = rt.clone();
        let h = h.clone();
        async move {
            let mut joins = Vec::new();
            // Four workers issue a random mix of invocations.
            for worker in 0..4u64 {
                let rt = rt.clone();
                let h = h.clone();
                joins.push(h.clone().spawn(async move {
                    let rng = h.rng().stream_indexed("faas-accounting-worker", worker);
                    for _ in 0..24 {
                        h.sleep(Duration::from_millis(rng.gen_range(0..40))).await;
                        let req = InvokeRequest::with_body(&b"x"[..]);
                        let data: Rc<dyn DataPlane> = Rc::new(NoData);
                        match rng.gen_range(0..6) {
                            0 | 1 => {
                                let img = FunctionImage::simple(
                                    "upstream",
                                    WorkModel::fixed(Duration::from_millis(8)),
                                    4,
                                );
                                let _ = rt.invoke(&img, Goal::MinLatency, req, data, None).await;
                            }
                            2 => {
                                let img = FunctionImage::simple(
                                    "steady",
                                    WorkModel::fixed(Duration::from_millis(15)),
                                    8,
                                );
                                let _ = rt.invoke(&img, Goal::MinLatency, req, data, None).await;
                            }
                            3 => {
                                let img = FunctionImage::simple(
                                    "flaky",
                                    WorkModel::fixed(Duration::ZERO),
                                    2,
                                );
                                let _ = rt.invoke(&img, Goal::MinLatency, req, data, None).await;
                            }
                            4 => {
                                // Unregistered image: the reservation must
                                // be released by the lease drop guard.
                                let img = FunctionImage::simple(
                                    "ghost",
                                    WorkModel::fixed(Duration::ZERO),
                                    2,
                                );
                                let _ = rt.invoke(&img, Goal::MinLatency, req, data, None).await;
                            }
                            _ => {
                                let img = FunctionImage::simple(
                                    "upstream",
                                    WorkModel::fixed(Duration::from_millis(8)),
                                    4,
                                );
                                let node = NodeId(rng.gen_range(0..4) as u32);
                                let variant = img.variant("cpu").unwrap().clone();
                                let _ = rt.invoke_on(&img, &variant, node, req, data).await;
                            }
                        }
                    }
                }));
            }
            // A chaos task evicts random nodes mid-run.
            joins.push(h.clone().spawn({
                let rt = rt.clone();
                let h = h.clone();
                async move {
                    let rng = h.rng().stream("faas-accounting-chaos");
                    for _ in 0..3 {
                        h.sleep(Duration::from_millis(150 + rng.gen_range(0..400)))
                            .await;
                        rt.evict_node(NodeId(rng.gen_range(0..4) as u32));
                    }
                }
            }));
            for j in joins {
                j.await;
            }
            // Quiesce: the estimators idle-reset after a full window, the
            // last pre-warm boots land, and the reaper drains the pools.
            h.sleep(Duration::from_secs(10)).await;
        }
    });

    for node in cluster.nodes() {
        assert!(
            cluster.allocated(node).is_zero(),
            "seed {seed}: node {node} left with {:?} allocated \
             (invocations {}, cold {}, preempt {}, prewarm {}, rebalance {}, rejections {})",
            cluster.allocated(node),
            rt.invocations(),
            rt.cold_starts(),
            rt.preemptions(),
            rt.prewarms(),
            rt.rebalances(),
            rt.rejections(),
        );
    }
}

#[test]
fn allocation_balances_to_zero_across_interleavings() {
    for s in 0..seed_count() {
        run_seed(0xFAA5_0000 + s);
    }
}
