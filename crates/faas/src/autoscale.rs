//! Predictive warm-pool autoscaling (§2.4, §4.2).
//!
//! Reactive scale-from-zero makes every burst pay a full cold start. The
//! autoscaler instead estimates the per-(function, variant) arrival rate
//! with an exponentially weighted moving average over fixed virtual-time
//! scan intervals and boots sandboxes *ahead* of demand, sized by the
//! per-backend cold-start cost model in [`crate::isolation`]: Wasm pools
//! stay shallow (a 1 ms boot is nearly free to pay reactively) while
//! microVM and container pools run deep.
//!
//! Everything here is deterministic: the estimator consumes only arrival
//! counts and the simulator's virtual clock — no wall clock, no RNG — so
//! an autoscaled run fingerprints identically per seed (see
//! `tests/determinism.rs`).

use std::time::Duration;

use crate::function::Variant;
use crate::graph::{StageSpec, TaskGraph};
use crate::isolation::Backend;

/// Tuning knobs for the predictive autoscaler. Disabled by default — the
/// runtime then behaves exactly like the reactive seed.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Master switch. When false no estimator state is kept and no
    /// pre-warmer task is spawned.
    pub enabled: bool,
    /// How often the pre-warmer scans: estimators tick, targets are
    /// recomputed, boots and steals are issued.
    pub interval: Duration,
    /// EWMA window: the arrival-rate estimate reflects roughly this much
    /// trailing traffic. A key idle for a full window resets to zero so
    /// pools drain at quiescence.
    pub window: Duration,
    /// Multiplier over the predicted steady-state concurrency (covers
    /// estimator lag on rising ramps).
    pub headroom: f64,
    /// Hard cap on the warm-pool target per (function, variant).
    pub max_pool: usize,
    /// Boot + steal budget per scan (keeps one scan from monopolizing
    /// the cluster).
    pub max_actions_per_scan: usize,
    /// Nodes above this utilization get idle instances drained away by
    /// the work-stealing rebalance pass.
    pub steal_high: f64,
    /// Stolen instances only land on nodes below this utilization.
    pub steal_low: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            enabled: false,
            interval: Duration::from_millis(250),
            window: Duration::from_secs(5),
            headroom: 1.5,
            max_pool: 32,
            max_actions_per_scan: 16,
            steal_high: 0.90,
            steal_low: 0.60,
        }
    }
}

impl AutoscaleConfig {
    /// The default knobs with the master switch on.
    pub fn enabled() -> Self {
        AutoscaleConfig {
            enabled: true,
            ..AutoscaleConfig::default()
        }
    }

    /// EWMA blend factor for one scan interval: `1 - e^(-interval/window)`.
    pub(crate) fn alpha(&self) -> f64 {
        1.0 - (-self.interval.as_secs_f64() / self.window.as_secs_f64().max(1e-9)).exp()
    }

    /// Scans with zero arrivals after which a key's rate snaps to zero.
    pub(crate) fn idle_limit(&self) -> u32 {
        (self.window.as_secs_f64() / self.interval.as_secs_f64().max(1e-9)).ceil() as u32
    }
}

/// Per-(function, variant) arrival-rate and service-time estimator.
///
/// Arrivals accumulate in `pending` between scans; each scan folds the
/// instantaneous rate into the EWMA. Deterministic by construction.
#[derive(Debug, Default, Clone)]
pub(crate) struct RateEstimator {
    rate_per_sec: f64,
    service_secs: f64,
    pending: u64,
    idle_scans: u32,
}

impl RateEstimator {
    /// Notes one arrival (real or a phantom from a graph edge).
    pub(crate) fn record_arrival(&mut self) {
        self.pending += 1;
    }

    /// Folds an observed per-invocation busy time into the service-time
    /// estimate (fixed 0.2 blend — service times move slowly).
    pub(crate) fn record_service(&mut self, busy: Duration) {
        let secs = busy.as_secs_f64();
        if self.service_secs == 0.0 {
            self.service_secs = secs;
        } else {
            self.service_secs = 0.2 * secs + 0.8 * self.service_secs;
        }
    }

    /// One scan tick: blends `pending / interval` into the rate. A key
    /// idle for `idle_limit` consecutive scans resets to zero so the
    /// reaper can drain its pool completely.
    pub(crate) fn tick(&mut self, interval_secs: f64, alpha: f64, idle_limit: u32) {
        let instantaneous = self.pending as f64 / interval_secs;
        self.rate_per_sec = alpha * instantaneous + (1.0 - alpha) * self.rate_per_sec;
        if self.pending == 0 {
            self.idle_scans += 1;
            if self.idle_scans >= idle_limit {
                self.rate_per_sec = 0.0;
            }
        } else {
            self.idle_scans = 0;
        }
        self.pending = 0;
    }

    /// Current warm-pool target for a backend under these knobs.
    pub(crate) fn target(&self, backend: Backend, headroom: f64, max_pool: usize) -> usize {
        backend
            .prewarm_depth(
                self.rate_per_sec,
                Duration::from_secs_f64(self.service_secs),
                headroom,
            )
            .min(max_pool)
    }

    /// The smoothed arrival rate (tests / diagnostics).
    #[cfg(test)]
    pub(crate) fn rate(&self) -> f64 {
        self.rate_per_sec
    }
}

/// A graph-derived pre-warm rule: every arrival at `upstream` counts as a
/// phantom arrival for `function`/`variant`, so downstream pools warm up
/// before the pipeline's first stage even finishes.
#[derive(Debug, Clone)]
pub struct PrewarmEdge {
    /// Function whose arrivals predict downstream traffic.
    pub upstream: String,
    /// Downstream function to pre-warm.
    pub function: String,
    /// Variant (and thus backend + demand) to boot for it.
    pub variant: Variant,
}

/// Derives pre-warm edges from a task graph: one edge per (stage,
/// consumer) pair, with `variant_of` naming the variant each downstream
/// stage will run as (stages it returns `None` for are skipped).
pub fn edges_from_graph(
    graph: &TaskGraph,
    variant_of: impl Fn(&StageSpec) -> Option<Variant>,
) -> Vec<PrewarmEdge> {
    let stages = graph.stages();
    let mut edges = Vec::new();
    for (i, stage) in stages.iter().enumerate() {
        for c in graph.consumers(i) {
            if let Some(variant) = variant_of(&stages[c]) {
                edges.push(PrewarmEdge {
                    upstream: stage.function.clone(),
                    function: stages[c].function.clone(),
                    variant,
                });
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_converges_on_a_steady_rate() {
        let cfg = AutoscaleConfig::enabled();
        let mut est = RateEstimator::default();
        let dt = cfg.interval.as_secs_f64();
        let alpha = cfg.alpha();
        // 100 rps for 40 scans (10 s at the 250 ms interval).
        for _ in 0..40 {
            for _ in 0..25 {
                est.record_arrival();
            }
            est.tick(dt, alpha, cfg.idle_limit());
        }
        assert!((est.rate() - 100.0).abs() < 15.0, "rate {}", est.rate());
    }

    #[test]
    fn idle_keys_reset_to_zero() {
        let cfg = AutoscaleConfig::enabled();
        let mut est = RateEstimator::default();
        let dt = cfg.interval.as_secs_f64();
        for _ in 0..10 {
            est.record_arrival();
            est.tick(dt, cfg.alpha(), cfg.idle_limit());
        }
        assert!(est.rate() > 0.0);
        for _ in 0..cfg.idle_limit() {
            est.tick(dt, cfg.alpha(), cfg.idle_limit());
        }
        assert_eq!(est.rate(), 0.0, "a full idle window must zero the rate");
        assert_eq!(
            est.target(Backend::Container, cfg.headroom, cfg.max_pool),
            0
        );
    }

    #[test]
    fn targets_respect_backend_cost_and_cap() {
        let mut est = RateEstimator::default();
        est.record_service(Duration::from_millis(20));
        let cfg = AutoscaleConfig::enabled();
        let dt = cfg.interval.as_secs_f64();
        for _ in 0..80 {
            for _ in 0..50 {
                est.record_arrival();
            }
            est.tick(dt, cfg.alpha(), cfg.idle_limit());
        }
        let container = est.target(Backend::Container, cfg.headroom, cfg.max_pool);
        let wasm = est.target(Backend::Wasm, cfg.headroom, cfg.max_pool);
        assert!(container > wasm, "container {container} vs wasm {wasm}");
        assert!(est.target(Backend::Container, cfg.headroom, 3) <= 3);
    }

    #[test]
    fn graph_edges_follow_consumers() {
        let g = TaskGraph::linear(&["ingest", "transform", "publish"]);
        let edges = edges_from_graph(&g, |_| Some(Variant::cpu(2)));
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].upstream, "ingest");
        assert_eq!(edges[0].function, "transform");
        assert_eq!(edges[1].upstream, "transform");
        assert_eq!(edges[1].function, "publish");
    }
}
