//! Cluster-wide resource accounting.
//!
//! The scheduler's view of the machine: per-node allocated vs. installed
//! resources, with utilization snapshots for the efficiency experiments
//! (§4.2). Allocation is performed by the runtime when instances start
//! and released when they are reaped.

use std::cell::RefCell;
use std::rc::Rc;

use pcsi_net::node::Resources;
use pcsi_net::{NodeId, Topology};

/// Shared mutable cluster allocation state.
#[derive(Clone)]
pub struct ClusterState {
    inner: Rc<RefCell<Inner>>,
}

struct Inner {
    capacity: Vec<Resources>,
    allocated: Vec<Resources>,
    racks: Vec<u32>,
}

impl ClusterState {
    /// Initializes from a topology (zero allocation everywhere).
    pub fn new(topology: &Topology) -> Self {
        let capacity: Vec<Resources> = topology.iter().map(|(_, s)| s.capacity).collect();
        let racks: Vec<u32> = topology.iter().map(|(_, s)| s.rack).collect();
        let allocated = vec![Resources::default(); capacity.len()];
        ClusterState {
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                allocated,
                racks,
            })),
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.inner.borrow().capacity.len()
    }

    /// Never true (topologies are non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Installed capacity of a node.
    pub fn capacity(&self, node: NodeId) -> Resources {
        self.inner.borrow().capacity[node.0 as usize]
    }

    /// Currently allocated resources on a node.
    pub fn allocated(&self, node: NodeId) -> Resources {
        self.inner.borrow().allocated[node.0 as usize]
    }

    /// Free resources on a node.
    pub fn free(&self, node: NodeId) -> Resources {
        let inner = self.inner.borrow();
        let mut f = inner.capacity[node.0 as usize];
        let a = inner.allocated[node.0 as usize];
        // Free = capacity - allocated, dimension-wise.
        f.take(&a);
        f
    }

    /// The rack a node lives in.
    pub fn rack(&self, node: NodeId) -> u32 {
        self.inner.borrow().racks[node.0 as usize]
    }

    /// True if `demand` currently fits on `node`.
    pub fn fits(&self, node: NodeId, demand: &Resources) -> bool {
        self.free(node).fits(demand)
    }

    /// Reserves `demand` on `node`; `false` (and no change) if it does
    /// not fit.
    pub fn try_allocate(&self, node: NodeId, demand: &Resources) -> bool {
        let mut inner = self.inner.borrow_mut();
        let idx = node.0 as usize;
        let mut free = inner.capacity[idx];
        free.take(&inner.allocated[idx]);
        if !free.fits(demand) {
            return false;
        }
        inner.allocated[idx].give(demand);
        true
    }

    /// Releases `demand` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than allocated (double-free bug).
    pub fn release(&self, node: NodeId, demand: &Resources) {
        let mut inner = self.inner.borrow_mut();
        inner.allocated[node.0 as usize].take(demand);
    }

    /// Utilization of one node in `[0, 1]` (max across dimensions).
    pub fn node_utilization(&self, node: NodeId) -> f64 {
        let inner = self.inner.borrow();
        inner.allocated[node.0 as usize].utilization_of(&inner.capacity[node.0 as usize])
    }

    /// Mean CPU-dimension utilization across the cluster (the headline
    /// efficiency number of §4.2).
    pub fn mean_cpu_utilization(&self) -> f64 {
        let inner = self.inner.borrow();
        let mut used = 0u64;
        let mut cap = 0u64;
        for (a, c) in inner.allocated.iter().zip(&inner.capacity) {
            used += u64::from(a.cpu);
            cap += u64::from(c.cpu);
        }
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }

    /// Nodes sorted by id (helper for policies).
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.len() as u32).map(NodeId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterState {
        ClusterState::new(&Topology::uniform(2, 2))
    }

    #[test]
    fn allocate_release_roundtrip() {
        let c = cluster();
        let d = Resources::cpu(8, 32);
        assert!(c.try_allocate(NodeId(0), &d));
        assert_eq!(c.allocated(NodeId(0)), d);
        assert_eq!(c.free(NodeId(0)), Resources::cpu(24, 96));
        c.release(NodeId(0), &d);
        assert!(c.allocated(NodeId(0)).is_zero());
    }

    #[test]
    fn overcommit_rejected_atomically() {
        let c = cluster();
        let big = Resources::cpu(30, 10);
        assert!(c.try_allocate(NodeId(1), &big));
        assert!(!c.try_allocate(NodeId(1), &Resources::cpu(4, 1)));
        // Failed attempt must not leak partial allocation.
        assert_eq!(c.allocated(NodeId(1)), big);
    }

    #[test]
    #[should_panic(expected = "over-allocation")]
    fn double_release_panics() {
        let c = cluster();
        c.release(NodeId(0), &Resources::cpu(1, 0));
    }

    #[test]
    fn utilization_accounting() {
        let c = cluster();
        assert_eq!(c.mean_cpu_utilization(), 0.0);
        c.try_allocate(NodeId(0), &Resources::cpu(32, 0));
        // One of four nodes fully busy on CPU: 25%.
        assert!((c.mean_cpu_utilization() - 0.25).abs() < 1e-12);
        assert!((c.node_utilization(NodeId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(c.node_utilization(NodeId(1)), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let c = cluster();
        let c2 = c.clone();
        c.try_allocate(NodeId(2), &Resources::cpu(1, 1));
        assert_eq!(c2.allocated(NodeId(2)), Resources::cpu(1, 1));
    }
}
