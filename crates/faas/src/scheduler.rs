//! Instance placement policies.
//!
//! §4.1–4.2 describe two stances the provider can take: place for *speed*
//! (co-locate pipeline stages, follow the data) or place for *efficiency*
//! ("scavenge underutilized resources from around the cluster"). Both are
//! policies over the same [`crate::ClusterState`]; experiments E4/E5
//! compare them against naive baselines.

use pcsi_net::node::Resources;
use pcsi_net::NodeId;

use crate::cluster::ClusterState;

/// How the scheduler picks a node for a new instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Lowest-id node that fits (the naive baseline).
    FirstFit,
    /// Least-utilized node that fits (classic load balancing; good p99,
    /// poor consolidation).
    LoadBalance,
    /// Most-utilized node that still fits (bin packing: consolidates load
    /// onto few nodes, harvesting stranded capacity — §4.2's scavenging).
    Scavenge,
    /// Prefer warm instances, then the co-location hint, then the hint's
    /// rack, then fall back to scavenging (§4.1's data-aware placement).
    #[default]
    Locality,
}

/// A placement request.
#[derive(Debug, Clone, Default)]
pub struct PlacementRequest {
    /// Resources the instance will pin.
    pub demand: Resources,
    /// Node the caller would like to co-locate with (e.g. where the
    /// upstream stage or the input data lives).
    pub prefer_node: Option<NodeId>,
    /// Nodes that already hold a warm instance of this variant.
    pub warm_nodes: Vec<NodeId>,
}

/// A placement decision together with its capacity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placed {
    /// The chosen node.
    pub node: NodeId,
    /// True if the slot was scavenged from consolidated spare capacity
    /// rather than provisioned intentionally: the instance should be
    /// tagged preemptible so a provisioned placement that later finds no
    /// room can reclaim it (§4.2).
    pub scavenged: bool,
}

/// Picks a node under `policy`; `None` if nothing fits.
///
/// Deterministic: all ties break toward the lower node id.
pub fn place(
    cluster: &ClusterState,
    policy: PlacementPolicy,
    req: &PlacementRequest,
) -> Option<NodeId> {
    place_classed(cluster, policy, req).map(|p| p.node)
}

/// [`place`] plus the capacity class of the decision: scavenge-style
/// placements (the `Scavenge` policy, or `Locality` falling through to
/// its consolidating step 4) are marked `scavenged` so the runtime can
/// tag the instance preemptible.
pub fn place_classed(
    cluster: &ClusterState,
    policy: PlacementPolicy,
    req: &PlacementRequest,
) -> Option<Placed> {
    let fits = |n: &NodeId| cluster.fits(*n, &req.demand);
    let candidates: Vec<NodeId> = cluster.nodes().into_iter().filter(fits).collect();
    if candidates.is_empty() {
        return None;
    }
    let provisioned = |node: Option<NodeId>| {
        node.map(|node| Placed {
            node,
            scavenged: false,
        })
    };
    match policy {
        PlacementPolicy::FirstFit => provisioned(candidates.first().copied()),
        PlacementPolicy::LoadBalance => provisioned(candidates.iter().copied().min_by(|a, b| {
            utilization_key(cluster, *a)
                .cmp(&utilization_key(cluster, *b))
                .then(a.cmp(b))
        })),
        PlacementPolicy::Scavenge => candidates
            .iter()
            .copied()
            .max_by(|a, b| {
                utilization_key(cluster, *a)
                    .cmp(&utilization_key(cluster, *b))
                    .then(b.cmp(a)) // Reversed so min id wins ties under max_by.
            })
            .map(|node| Placed {
                node,
                scavenged: true,
            }),
        PlacementPolicy::Locality => {
            // 1. A warm node that still fits.
            if let Some(n) = req.warm_nodes.iter().copied().filter(fits).min() {
                return provisioned(Some(n));
            }
            // 2. The co-location hint itself.
            if let Some(hint) = req.prefer_node {
                if cluster.fits(hint, &req.demand) {
                    return provisioned(Some(hint));
                }
                // 3. Any node in the hint's rack.
                let rack = cluster.rack(hint);
                if let Some(n) = candidates
                    .iter()
                    .copied()
                    .filter(|&n| cluster.rack(n) == rack)
                    .min()
                {
                    return provisioned(Some(n));
                }
            }
            // 4. Consolidating fallback — a scavenged slot.
            place_classed(
                cluster,
                PlacementPolicy::Scavenge,
                &PlacementRequest {
                    demand: req.demand,
                    prefer_node: None,
                    warm_nodes: Vec::new(),
                },
            )
        }
    }
}

/// Integer utilization key (per-mille) so ordering is exact.
pub(crate) fn utilization_key(cluster: &ClusterState, n: NodeId) -> u32 {
    (cluster.node_utilization(n) * 1000.0).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcsi_net::Topology;

    fn cluster() -> ClusterState {
        // 2 racks x 3 nodes of 32 cores.
        ClusterState::new(&Topology::uniform(2, 3))
    }

    fn req(cores: u32) -> PlacementRequest {
        PlacementRequest {
            demand: Resources::cpu(cores, 0),
            ..Default::default()
        }
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let c = cluster();
        assert_eq!(
            place(&c, PlacementPolicy::FirstFit, &req(4)),
            Some(NodeId(0))
        );
        // Fill node 0; first fit moves on.
        c.try_allocate(NodeId(0), &Resources::cpu(32, 0));
        assert_eq!(
            place(&c, PlacementPolicy::FirstFit, &req(4)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn load_balance_picks_emptiest() {
        let c = cluster();
        c.try_allocate(NodeId(0), &Resources::cpu(16, 0));
        c.try_allocate(NodeId(1), &Resources::cpu(8, 0));
        assert_eq!(
            place(&c, PlacementPolicy::LoadBalance, &req(4)),
            Some(NodeId(2))
        );
    }

    #[test]
    fn scavenge_packs_onto_busiest_fitting_node() {
        let c = cluster();
        c.try_allocate(NodeId(0), &Resources::cpu(30, 0));
        c.try_allocate(NodeId(1), &Resources::cpu(16, 0));
        // 4 cores no longer fit node 0 (2 free) but fit node 1.
        assert_eq!(
            place(&c, PlacementPolicy::Scavenge, &req(4)),
            Some(NodeId(1))
        );
        // 2 cores pack into the busiest node 0.
        assert_eq!(
            place(&c, PlacementPolicy::Scavenge, &req(2)),
            Some(NodeId(0))
        );
    }

    #[test]
    fn locality_prefers_warm_then_hint_then_rack() {
        let c = cluster();
        // Warm instance on node 4 wins outright.
        let mut r = req(4);
        r.warm_nodes = vec![NodeId(4)];
        r.prefer_node = Some(NodeId(1));
        assert_eq!(place(&c, PlacementPolicy::Locality, &r), Some(NodeId(4)));
        // No warm: the hint wins.
        r.warm_nodes.clear();
        assert_eq!(place(&c, PlacementPolicy::Locality, &r), Some(NodeId(1)));
        // Hint full: same rack (nodes 0..3 are rack 0).
        c.try_allocate(NodeId(1), &Resources::cpu(32, 0));
        let got = place(&c, PlacementPolicy::Locality, &r).unwrap();
        assert_eq!(c.rack(got), c.rack(NodeId(1)));
    }

    #[test]
    fn nothing_fits_returns_none() {
        let c = cluster();
        for n in c.nodes() {
            c.try_allocate(n, &Resources::cpu(32, 0));
        }
        assert_eq!(place(&c, PlacementPolicy::FirstFit, &req(1)), None);
        assert_eq!(place(&c, PlacementPolicy::Scavenge, &req(1)), None);
        assert_eq!(place(&c, PlacementPolicy::Locality, &req(1)), None);
    }

    #[test]
    fn warm_node_that_no_longer_fits_is_skipped() {
        let c = cluster();
        c.try_allocate(NodeId(4), &Resources::cpu(32, 0));
        let mut r = req(4);
        r.warm_nodes = vec![NodeId(4)];
        let got = place(&c, PlacementPolicy::Locality, &r).unwrap();
        assert_ne!(got, NodeId(4));
    }

    #[test]
    fn scavenge_paths_are_classed_preemptible() {
        let c = cluster();
        // Direct scavenging is always a scavenged slot.
        let p = place_classed(&c, PlacementPolicy::Scavenge, &req(4)).unwrap();
        assert!(p.scavenged);
        // Provisioned policies never are.
        for policy in [PlacementPolicy::FirstFit, PlacementPolicy::LoadBalance] {
            assert!(!place_classed(&c, policy, &req(4)).unwrap().scavenged);
        }
        // Locality via the hint is provisioned ...
        let mut r = req(4);
        r.prefer_node = Some(NodeId(1));
        let p = place_classed(&c, PlacementPolicy::Locality, &r).unwrap();
        assert_eq!((p.node, p.scavenged), (NodeId(1), false));
        // ... but the step-4 consolidating fallback is scavenged.
        let p = place_classed(&c, PlacementPolicy::Locality, &req(4)).unwrap();
        assert!(p.scavenged);
    }

    #[test]
    fn gpu_demand_only_lands_on_gpu_nodes() {
        let c = ClusterState::new(&Topology::heterogeneous(2, 2));
        let gpu_req = PlacementRequest {
            demand: Resources {
                cpu: 1,
                gpu: 1,
                tpu: 0,
                mem_gib: 4,
            },
            ..Default::default()
        };
        for policy in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::LoadBalance,
            PlacementPolicy::Scavenge,
            PlacementPolicy::Locality,
        ] {
            let n = place(&c, policy, &gpu_req).unwrap();
            assert!(c.capacity(n).gpu > 0, "{policy:?} placed GPU work on {n}");
        }
    }
}
