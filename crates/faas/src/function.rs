//! Function images, variants, and the body execution contract.
//!
//! A [`FunctionImage`] is what gets stored in the data layer: a name, a
//! work model, and one or more implementation [`Variant`]s. The actual
//! executable logic — since a simulator cannot run guest machine code —
//! is a host closure registered under the image name in
//! [`crate::registry::FunctionRegistry`]; the image object carries
//! everything the scheduler and optimizer need.
//!
//! Bodies receive a [`FnCtx`]: the pass-by-value request body, the
//! explicit input/output references, and a [`DataPlane`] capability. That
//! is the *entire* ambient environment — the "no implicit state" rule is
//! structural, not advisory.

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::api::{InvokeRequest, InvokeResponse};
use pcsi_core::{PcsiError, Reference};
use pcsi_net::node::Resources;
use pcsi_sim::executor::LocalBoxFuture;
use pcsi_sim::SimHandle;

use crate::isolation::Backend;

/// Abstract compute demand of one invocation: `fixed + per_byte × bytes`
/// of single-reference-CPU work. Variants divide this by their speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkModel {
    /// Work independent of payload size.
    pub fixed: Duration,
    /// Work per payload byte.
    pub per_byte: Duration,
}

impl WorkModel {
    /// A constant-work model.
    pub fn fixed(d: Duration) -> Self {
        WorkModel {
            fixed: d,
            per_byte: Duration::ZERO,
        }
    }

    /// Total abstract work for a payload of `bytes`.
    pub fn work(&self, bytes: usize) -> Duration {
        self.fixed
            + self
                .per_byte
                .saturating_mul(u32::try_from(bytes).unwrap_or(u32::MAX))
    }
}

/// One implementation of a function (§3.1's heterogeneous platforms).
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Variant name (`"cpu"`, `"gpu"`, `"tpu-v4"`, ...).
    pub name: String,
    /// Isolation platform.
    pub backend: Backend,
    /// Resources one instance pins while running.
    pub demand: Resources,
    /// Speedup over the reference CPU implementation for this function's
    /// work (a GPU variant of a neural network might be 10–40×).
    pub speedup: f64,
}

impl Variant {
    /// A plain CPU container variant using `cores` cores.
    pub fn cpu(cores: u32) -> Self {
        Variant {
            name: "cpu".into(),
            backend: Backend::Container,
            demand: Resources::cpu(cores, 2 * cores),
            speedup: 1.0,
        }
    }

    /// A Firecracker-style microVM variant using `cores` cores: stronger
    /// isolation than a container, half the boot time.
    pub fn microvm(cores: u32) -> Self {
        Variant {
            name: "microvm".into(),
            backend: Backend::MicroVm,
            demand: Resources::cpu(cores, 2 * cores),
            speedup: 1.0,
        }
    }

    /// An in-process WebAssembly sandbox variant using `cores` cores:
    /// near-instant boot, so predictive warm pools for it stay shallow.
    pub fn wasm(cores: u32) -> Self {
        Variant {
            name: "wasm".into(),
            backend: Backend::Wasm,
            demand: Resources::cpu(cores, cores),
            speedup: 1.0,
        }
    }

    /// Wall-clock execution time for `work` on this variant.
    pub fn exec_time(&self, work: Duration) -> Duration {
        work.div_f64(self.speedup.max(1e-9))
    }
}

/// A function stored in the data layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionImage {
    /// Unique function name; also the host-body registry key.
    pub name: String,
    /// Abstract work per invocation.
    pub work: WorkModel,
    /// Available implementations. Must be non-empty.
    pub variants: Vec<Variant>,
}

impl FunctionImage {
    /// An image with a single CPU variant.
    pub fn simple(name: &str, work: WorkModel, cores: u32) -> Self {
        FunctionImage {
            name: name.to_owned(),
            work,
            variants: vec![Variant::cpu(cores)],
        }
    }

    /// Looks a variant up by name.
    pub fn variant(&self, name: &str) -> Option<&Variant> {
        self.variants.iter().find(|v| v.name == name)
    }

    /// Serializes the image metadata (stored as the function object's
    /// contents, making functions data-layer objects).
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(128);
        push_str(&mut out, &self.name);
        out.extend_from_slice(&(self.work.fixed.as_nanos() as u64).to_le_bytes());
        out.extend_from_slice(&(self.work.per_byte.as_nanos() as u64).to_le_bytes());
        out.extend_from_slice(&(self.variants.len() as u32).to_le_bytes());
        for v in &self.variants {
            push_str(&mut out, &v.name);
            out.push(match v.backend {
                Backend::Container => 0,
                Backend::MicroVm => 1,
                Backend::Wasm => 2,
                Backend::Unikernel => 3,
            });
            for r in [v.demand.cpu, v.demand.gpu, v.demand.tpu, v.demand.mem_gib] {
                out.extend_from_slice(&r.to_le_bytes());
            }
            out.extend_from_slice(&v.speedup.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Decodes image metadata written by [`FunctionImage::encode`].
    pub fn decode(bytes: &[u8]) -> Result<FunctionImage, PcsiError> {
        let mut pos = 0usize;
        let name = read_str(bytes, &mut pos)?;
        let fixed = Duration::from_nanos(read_u64(bytes, &mut pos)?);
        let per_byte = Duration::from_nanos(read_u64(bytes, &mut pos)?);
        let n = read_u32(bytes, &mut pos)? as usize;
        let mut variants = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let vname = read_str(bytes, &mut pos)?;
            let backend = match read_u8(bytes, &mut pos)? {
                0 => Backend::Container,
                1 => Backend::MicroVm,
                2 => Backend::Wasm,
                3 => Backend::Unikernel,
                b => {
                    return Err(PcsiError::BadPayload(format!(
                        "bad backend byte {b} in function image"
                    )))
                }
            };
            let cpu = read_u32(bytes, &mut pos)?;
            let gpu = read_u32(bytes, &mut pos)?;
            let tpu = read_u32(bytes, &mut pos)?;
            let mem_gib = read_u32(bytes, &mut pos)?;
            let speedup =
                f64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().expect("8-byte slice"));
            variants.push(Variant {
                name: vname,
                backend,
                demand: Resources {
                    cpu,
                    gpu,
                    tpu,
                    mem_gib,
                },
                speedup,
            });
        }
        if pos != bytes.len() {
            return Err(PcsiError::BadPayload(
                "trailing bytes in function image".into(),
            ));
        }
        if variants.is_empty() {
            return Err(PcsiError::BadPayload(
                "function image has no variants".into(),
            ));
        }
        Ok(FunctionImage {
            name,
            work: WorkModel { fixed, per_byte },
            variants,
        })
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], PcsiError> {
    if bytes.len() - *pos < n {
        return Err(PcsiError::BadPayload("truncated function image".into()));
    }
    let s = &bytes[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn read_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, PcsiError> {
    Ok(take(bytes, pos, 1)?[0])
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, PcsiError> {
    Ok(u32::from_le_bytes(take(bytes, pos, 4)?.try_into().unwrap()))
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, PcsiError> {
    Ok(u64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap()))
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<String, PcsiError> {
    let len = u16::from_le_bytes(take(bytes, pos, 2)?.try_into().unwrap()) as usize;
    String::from_utf8(take(bytes, pos, len)?.to_vec())
        .map_err(|_| PcsiError::BadPayload("bad UTF-8 in function image".into()))
}

/// The state-layer capability handed to running function bodies.
///
/// Dyn-safe mirror of the data-plane subset of
/// [`pcsi_core::CloudInterface`]; implemented by the kernel.
pub trait DataPlane {
    /// Reads from an object through a reference.
    fn read(
        &self,
        r: &Reference,
        offset: u64,
        len: u64,
    ) -> LocalBoxFuture<Result<Bytes, PcsiError>>;
    /// Writes to an object through a reference.
    fn write(
        &self,
        r: &Reference,
        offset: u64,
        data: Bytes,
    ) -> LocalBoxFuture<Result<(), PcsiError>>;
    /// Appends to an object (or pushes to a FIFO).
    fn append(&self, r: &Reference, data: Bytes) -> LocalBoxFuture<Result<u64, PcsiError>>;
    /// Pops from a FIFO.
    fn pop(&self, r: &Reference) -> LocalBoxFuture<Result<Bytes, PcsiError>>;
    /// Invokes another function (dynamic task graphs, Ciel-style).
    fn invoke(
        &self,
        f: &Reference,
        req: InvokeRequest,
    ) -> LocalBoxFuture<Result<InvokeResponse, PcsiError>>;
}

/// Everything a function body may touch.
pub struct FnCtx {
    /// Small pass-by-value request body.
    pub body: Bytes,
    /// Explicit data-layer inputs.
    pub inputs: Vec<Reference>,
    /// Explicit data-layer outputs.
    pub outputs: Vec<Reference>,
    /// The state-layer capability.
    pub data: Rc<dyn DataPlane>,
    /// Simulation handle (clock/sleep for modeled compute).
    pub handle: SimHandle,
    /// Speedup of the variant this body runs on.
    pub speedup: f64,
}

impl FnCtx {
    /// Charges `work` of abstract compute, scaled by the variant speedup.
    ///
    /// Bodies call this instead of sleeping directly so the same body
    /// runs faster on a GPU/TPU variant — the §4.3 flexibility story.
    pub async fn compute(&self, work: Duration) {
        self.handle
            .sleep(work.div_f64(self.speedup.max(1e-9)))
            .await;
    }
}

/// A host function body.
pub type FunctionBody = Rc<dyn Fn(FnCtx) -> LocalBoxFuture<Result<Bytes, PcsiError>>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_model_math() {
        let w = WorkModel {
            fixed: Duration::from_micros(100),
            per_byte: Duration::from_nanos(2),
        };
        assert_eq!(w.work(0), Duration::from_micros(100));
        assert_eq!(w.work(1000), Duration::from_micros(102));
        assert_eq!(
            WorkModel::fixed(Duration::from_millis(1)).work(1 << 20),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn variant_exec_time_scales_with_speedup() {
        let mut v = Variant::cpu(2);
        let work = Duration::from_millis(40);
        assert_eq!(v.exec_time(work), work);
        v.speedup = 10.0;
        assert_eq!(v.exec_time(work), Duration::from_millis(4));
    }

    #[test]
    fn image_encode_decode_roundtrip() {
        let img = FunctionImage {
            name: "nn-serve".into(),
            work: WorkModel {
                fixed: Duration::from_millis(80),
                per_byte: Duration::from_nanos(3),
            },
            variants: vec![
                Variant::cpu(8),
                Variant {
                    name: "gpu".into(),
                    backend: Backend::MicroVm,
                    demand: Resources {
                        cpu: 2,
                        gpu: 1,
                        tpu: 0,
                        mem_gib: 16,
                    },
                    speedup: 12.0,
                },
                Variant {
                    name: "wasm-edge".into(),
                    backend: Backend::Wasm,
                    demand: Resources::cpu(1, 1),
                    speedup: 0.7,
                },
            ],
        };
        let decoded = FunctionImage::decode(&img.encode()).unwrap();
        assert_eq!(decoded, img);
        assert_eq!(decoded.variant("gpu").unwrap().speedup, 12.0);
        assert!(decoded.variant("none").is_none());
    }

    #[test]
    fn image_decode_rejects_corruption() {
        let img = FunctionImage::simple("f", WorkModel::fixed(Duration::from_millis(1)), 1);
        let wire = img.encode();
        for cut in 0..wire.len() {
            assert!(FunctionImage::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = wire.to_vec();
        extra.push(0);
        assert!(FunctionImage::decode(&extra).is_err());
    }

    #[test]
    fn empty_variants_rejected() {
        let img = FunctionImage {
            name: "broken".into(),
            work: WorkModel::fixed(Duration::ZERO),
            variants: vec![],
        };
        assert!(FunctionImage::decode(&img.encode()).is_err());
    }
}
