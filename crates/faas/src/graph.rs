//! Ahead-of-time task graphs (§3.1, §4.1).
//!
//! "In addition to invoking individual functions, users can build task
//! graphs, which opens up optimization opportunities such as pipelining
//! or physical co-location." A [`TaskGraph`] names its stages (function
//! images) and their data dependencies. The structure is declarative —
//! execution lives in the kernel (`pcsi-cloud::pipelines`) — but the
//! analyses the scheduler needs are here: validation, topological order,
//! and co-location grouping.

use std::collections::HashMap;

use pcsi_core::PcsiError;
use pcsi_net::node::Resources;

/// One stage of a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Function image name to invoke.
    pub function: String,
    /// Preferred variant (`None` lets the optimizer choose).
    pub variant: Option<String>,
    /// Indices of stages whose outputs feed this stage.
    pub deps: Vec<usize>,
}

/// A static task graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    stages: Vec<StageSpec>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A linear pipeline `f0 -> f1 -> ... -> fn` (Figure 2's shape).
    pub fn linear(functions: &[&str]) -> Self {
        let mut g = TaskGraph::new();
        let mut prev: Option<usize> = None;
        for f in functions {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add_stage(f, None, deps));
        }
        g
    }

    /// Adds a stage, returning its index.
    pub fn add_stage(&mut self, function: &str, variant: Option<&str>, deps: Vec<usize>) -> usize {
        self.stages.push(StageSpec {
            function: function.to_owned(),
            variant: variant.map(str::to_owned),
            deps,
        });
        self.stages.len() - 1
    }

    /// The stages in index order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Validates dependency indices and acyclicity, returning a
    /// topological order (Kahn's algorithm; stable: ready stages emit in
    /// index order, keeping execution deterministic).
    pub fn topo_order(&self) -> Result<Vec<usize>, PcsiError> {
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        for (i, s) in self.stages.iter().enumerate() {
            for &d in &s.deps {
                if d >= n {
                    return Err(PcsiError::BadPayload(format!(
                        "stage {i} depends on missing stage {d}"
                    )));
                }
                if d == i {
                    return Err(PcsiError::BadPayload(format!(
                        "stage {i} depends on itself"
                    )));
                }
                indegree[i] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&x| x != next);
            order.push(next);
            for (i, s) in self.stages.iter().enumerate() {
                if s.deps.contains(&next) {
                    indegree[i] -= s.deps.iter().filter(|&&d| d == next).count();
                    if indegree[i] == 0 {
                        ready.push(i);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(PcsiError::BadPayload("task graph contains a cycle".into()));
        }
        Ok(order)
    }

    /// Direct consumers of each stage.
    pub fn consumers(&self, stage: usize) -> Vec<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.deps.contains(&stage))
            .map(|(i, _)| i)
            .collect()
    }

    /// Co-location groups: connected components of the dependency graph.
    ///
    /// §4.1: "Since the task graph indicates that these two functions
    /// will be composed, the system can schedule the first CPU function
    /// on a physical server that also contains a GPU." Stages in one
    /// component exchange intermediate data, so the executor tries to run
    /// the whole component on one node. Groups are sorted by smallest
    /// member for determinism.
    pub fn colocation_groups(&self) -> Vec<Vec<usize>> {
        let n = self.stages.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (i, s) in self.stages.iter().enumerate() {
            for &d in &s.deps {
                if d < n {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, d));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Combined peak resource demand of a group when its stages run
    /// pipelined on one node (demands sum because different requests
    /// occupy different stages concurrently).
    ///
    /// `demand_of(stage)` supplies each stage's chosen-variant demand.
    pub fn group_demand(
        &self,
        group: &[usize],
        demand_of: impl Fn(usize) -> Resources,
    ) -> Resources {
        let mut total = Resources::default();
        for &s in group {
            total.give(&demand_of(s));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_pipeline_shape() {
        let g = TaskGraph::linear(&["pre", "nn", "post"]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.stages()[0].deps, Vec::<usize>::new());
        assert_eq!(g.stages()[1].deps, vec![0]);
        assert_eq!(g.stages()[2].deps, vec![1]);
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2]);
        assert_eq!(g.consumers(0), vec![1]);
        assert_eq!(g.consumers(2), Vec::<usize>::new());
    }

    #[test]
    fn diamond_topology() {
        let mut g = TaskGraph::new();
        let a = g.add_stage("a", None, vec![]);
        let b = g.add_stage("b", None, vec![a]);
        let c = g.add_stage("c", None, vec![a]);
        let d = g.add_stage("d", None, vec![b, c]);
        assert_eq!(g.topo_order().unwrap(), vec![a, b, c, d]);
        assert_eq!(g.consumers(a), vec![b, c]);
    }

    #[test]
    fn cycles_detected() {
        let mut g = TaskGraph::new();
        g.add_stage("a", None, vec![1]);
        g.add_stage("b", None, vec![0]);
        assert!(matches!(g.topo_order(), Err(PcsiError::BadPayload(_))));
    }

    #[test]
    fn self_and_missing_deps_detected() {
        let mut g = TaskGraph::new();
        g.add_stage("a", None, vec![0]);
        assert!(g.topo_order().is_err());
        let mut g2 = TaskGraph::new();
        g2.add_stage("a", None, vec![7]);
        assert!(g2.topo_order().is_err());
    }

    #[test]
    fn colocation_groups_are_components() {
        let mut g = TaskGraph::new();
        let a = g.add_stage("a", None, vec![]);
        let b = g.add_stage("b", None, vec![a]);
        let c = g.add_stage("c", None, vec![]); // Independent component.
        let d = g.add_stage("d", None, vec![b]);
        let groups = g.colocation_groups();
        assert_eq!(groups, vec![vec![a, b, d], vec![c]]);
    }

    #[test]
    fn group_demand_sums() {
        let g = TaskGraph::linear(&["pre", "nn", "post"]);
        let demand = g.group_demand(&[0, 1, 2], |s| {
            if s == 1 {
                Resources {
                    cpu: 2,
                    gpu: 1,
                    tpu: 0,
                    mem_gib: 16,
                }
            } else {
                Resources::cpu(2, 4)
            }
        });
        assert_eq!(
            demand,
            Resources {
                cpu: 6,
                gpu: 1,
                tpu: 0,
                mem_gib: 24
            }
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert!(g.topo_order().unwrap().is_empty());
        assert!(g.colocation_groups().is_empty());
    }
}
