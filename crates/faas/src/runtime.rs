//! The function runtime: warm pools, cold starts, autoscaling.
//!
//! The runtime realizes serverless execution semantics on the simulated
//! cluster: instances are created on demand (scale from zero), pay a
//! backend-specific cold start, serve one invocation at a time, linger
//! warm for a keep-alive window, and are reaped afterwards — releasing
//! their resources back to the cluster. "Abstraction that hides servers,
//! pay-per-use without capacity reservations, and autoscaling from zero"
//! (§2.4) falls out of this lifecycle.
//!
//! Two optional layers sit on top of the reactive core (both off by
//! default, see [`RuntimeConfig`]):
//!
//! * a **predictive autoscaler** ([`crate::autoscale`]) that estimates
//!   per-(function, variant) arrival rates and boots sandboxes ahead of
//!   demand — deep pools for slow-booting backends, shallow for Wasm —
//!   including phantom arrivals for downstream task-graph stages, and
//! * a **scavenged capacity class**: instances placed on consolidated
//!   spare capacity are tagged preemptible, and a placement that finds
//!   no room may evict the newest-idle preemptible instance instead of
//!   rejecting the request (§4.2's scavenging as a resource class, not
//!   just a policy).

use std::cell::RefCell;
use std::collections::VecDeque;

use fxhash::FxHashMap;
use std::rc::Rc;
use std::time::Duration;

use pcsi_core::api::{InvokeRequest, InvokeResponse};
use pcsi_core::PcsiError;
use pcsi_metrics::{Counter, Gauge, Histogram, Metrics};
use pcsi_net::node::Resources;
use pcsi_net::NodeId;
use pcsi_obs::{Journal, JournalExt};
use pcsi_sim::{SimHandle, SimTime};
use pcsi_trace::Tracer;

use crate::autoscale::{AutoscaleConfig, PrewarmEdge, RateEstimator};
use crate::cluster::ClusterState;
use crate::function::{DataPlane, FnCtx, FunctionImage, Variant};
use crate::graph::{StageSpec, TaskGraph};
use crate::registry::{choose_variant, FunctionRegistry, Goal};
use crate::scheduler::{place_classed, Placed, PlacementPolicy, PlacementRequest};

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Placement policy for new instances.
    pub policy: PlacementPolicy,
    /// How long an idle instance stays warm.
    pub keep_alive: Duration,
    /// How often the reaper scans for idle instances.
    pub reap_interval: Duration,
    /// When placement finds no room, evict the newest-idle preemptible
    /// (scavenge-placed) instance and retry instead of rejecting.
    pub preemption: bool,
    /// Predictive warm-pool autoscaler knobs (disabled by default).
    pub autoscale: AutoscaleConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            policy: PlacementPolicy::Locality,
            keep_alive: Duration::from_secs(60),
            reap_interval: Duration::from_secs(5),
            preemption: false,
            autoscale: AutoscaleConfig::default(),
        }
    }
}

type PoolKey = (String, String); // (function name, variant name)

struct WarmInstance {
    node: NodeId,
    idle_since: SimTime,
    demand: Resources,
    /// Scavenge-placed instances may be evicted to make room for a
    /// provisioned placement (see [`RuntimeConfig::preemption`]).
    preemptible: bool,
}

/// Per-key autoscaler state: the estimator, the variant to boot, and
/// the most recently computed pool target (the reaper's floor — idle
/// instances inside the predicted working set survive keep-alive).
struct KeyState {
    est: RateEstimator,
    variant: Variant,
    target: usize,
}

/// A reserved instance slot (see [`Runtime::reserve`]).
///
/// Holding a lease means either a warm instance was taken out of the
/// pool or resources were allocated for a cold boot; `run_lease` turns it
/// back into a warm pool entry when the invocation finishes. A lease
/// dropped without running releases its allocation back to the cluster —
/// an abandoned reservation never leaks.
pub struct Lease {
    key: PoolKey,
    node: NodeId,
    cold_start: bool,
    preemptible: bool,
    /// Node eviction epoch at reservation time: if the node is evicted
    /// while the invocation is in flight, the instance is discarded
    /// instead of re-pooled.
    epoch: u64,
    demand: Resources,
    /// Armed until the lease is run: dropping an armed lease releases
    /// the allocation (the sandbox it stood for is gone either way).
    guard: Option<ClusterState>,
}

impl Lease {
    /// The node this lease is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True if running this lease will pay a cold start.
    pub fn is_cold(&self) -> bool {
        self.cold_start
    }

    /// True if the slot was scavenged (the instance can be preempted
    /// once it returns to the warm pool).
    pub fn is_preemptible(&self) -> bool {
        self.preemptible
    }

    /// Disarms the drop guard and decomposes the lease; the caller takes
    /// over the instance's accounting.
    fn into_parts(mut self) -> (PoolKey, NodeId, bool, bool, u64, Resources) {
        self.guard = None;
        (
            std::mem::take(&mut self.key),
            self.node,
            self.cold_start,
            self.preemptible,
            self.epoch,
            self.demand,
        )
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        // Releasing is correct for both lease kinds: a cold reservation
        // never materialized an instance, and a warm instance was already
        // removed from the pool — dropping the lease destroys it.
        if let Some(cluster) = self.guard.take() {
            cluster.release(self.node, &self.demand);
        }
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("key", &self.key)
            .field("node", &self.node)
            .field("cold_start", &self.cold_start)
            .field("preemptible", &self.preemptible)
            .field("demand", &self.demand)
            .finish()
    }
}

/// The deployed function runtime. Cheap to clone.
#[derive(Clone)]
pub struct Runtime {
    inner: Rc<Inner>,
}

struct Inner {
    handle: SimHandle,
    cluster: ClusterState,
    registry: RefCell<FunctionRegistry>,
    config: RuntimeConfig,
    pools: RefCell<FxHashMap<PoolKey, VecDeque<WarmInstance>>>,
    /// Per-node eviction epoch: bumped by `evict_node` so in-flight
    /// invocations can detect that their node died under them.
    node_epochs: RefCell<Vec<u64>>,
    /// Autoscaler estimators per pool key (empty unless enabled).
    scaler: RefCell<FxHashMap<PoolKey, KeyState>>,
    /// Pre-warm boots currently in flight per key (so one scan does not
    /// over-boot while earlier boots are still sleeping).
    booting: RefCell<FxHashMap<PoolKey, usize>>,
    /// Graph-derived phantom-arrival rules.
    prewarm_edges: RefCell<Vec<PrewarmEdge>>,
    invocations: Counter,
    cold_starts: Counter,
    rejections: Counter,
    /// Invocations whose body returned an error.
    failures: Counter,
    /// Warm instances evicted to make room for another placement.
    preemptions: Counter,
    /// Instances booted proactively by the autoscaler.
    prewarms: Counter,
    /// Idle instances migrated off overloaded nodes.
    rebalances: Counter,
    /// Concurrent in-flight invocations right now (a gauge so the
    /// metrics registry can publish the live value).
    in_flight: Gauge,
    peak_in_flight: std::cell::Cell<u32>,
    /// Latency histograms, populated only while a registry is installed.
    hists: RefCell<Option<FaasHists>>,
    /// Optional tracer: invocations record cold-start and body spans
    /// under the caller's context.
    tracer: RefCell<Option<Tracer>>,
    /// Optional structured event journal: cold starts and preemptions
    /// record typed events. Absent means disabled.
    journal: RefCell<Option<Journal>>,
}

/// Histograms recorded per invocation when metrics are enabled.
struct FaasHists {
    /// Cold-start boot time, nanoseconds.
    cold_start_ns: Histogram,
    /// End-to-end invocation latency (cold start included), nanoseconds.
    invoke_ns: Histogram,
}

impl Runtime {
    /// Creates the runtime and starts its reaper task (plus the
    /// pre-warmer when the autoscaler is enabled).
    pub fn new(handle: SimHandle, cluster: ClusterState, config: RuntimeConfig) -> Self {
        let nodes = cluster.len();
        let rt = Runtime {
            inner: Rc::new(Inner {
                handle: handle.clone(),
                cluster,
                registry: RefCell::new(FunctionRegistry::new()),
                config,
                pools: RefCell::new(FxHashMap::default()),
                node_epochs: RefCell::new(vec![0; nodes]),
                scaler: RefCell::new(FxHashMap::default()),
                booting: RefCell::new(FxHashMap::default()),
                prewarm_edges: RefCell::new(Vec::new()),
                invocations: Counter::new(),
                cold_starts: Counter::new(),
                rejections: Counter::new(),
                failures: Counter::new(),
                preemptions: Counter::new(),
                prewarms: Counter::new(),
                rebalances: Counter::new(),
                in_flight: Gauge::new(),
                peak_in_flight: std::cell::Cell::new(0),
                hists: RefCell::new(None),
                tracer: RefCell::new(None),
                journal: RefCell::new(None),
            }),
        };
        rt.start_reaper();
        rt.start_autoscaler();
        rt
    }

    /// Registers a host body for an image name.
    pub fn register_body(&self, name: &str, body: crate::function::FunctionBody) {
        self.inner.registry.borrow_mut().register(name, body);
    }

    /// Derives pre-warm rules from a task graph: every arrival at a
    /// stage's function counts as a phantom arrival for its consumers,
    /// so the autoscaler warms downstream pools before the upstream
    /// stage finishes. `variant_of` names the variant each downstream
    /// stage will run as (stages mapped to `None` are skipped). No-op
    /// unless the autoscaler is enabled.
    pub fn register_prewarm_graph(
        &self,
        graph: &TaskGraph,
        variant_of: impl Fn(&StageSpec) -> Option<Variant>,
    ) {
        let mut edges = crate::autoscale::edges_from_graph(graph, variant_of);
        self.inner.prewarm_edges.borrow_mut().append(&mut edges);
    }

    /// Installs (or removes) the tracer invocation spans record into.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        *self.inner.tracer.borrow_mut() = tracer;
    }

    /// Installs (or removes) the structured event journal. Cold starts
    /// and preemptions record typed events into it.
    pub fn set_journal(&self, journal: Option<Journal>) {
        *self.inner.journal.borrow_mut() = journal;
    }

    /// Installs (or removes) the metrics registry: the runtime's
    /// always-on counters are published as named series and the latency
    /// histograms start recording.
    pub fn set_metrics(&self, metrics: Option<&Metrics>) {
        match metrics {
            Some(m) => {
                m.bind_counter("faas.invocations", &[], &self.inner.invocations);
                m.bind_counter("faas.cold_starts", &[], &self.inner.cold_starts);
                m.bind_counter("faas.rejections", &[], &self.inner.rejections);
                m.bind_counter("faas.failures", &[], &self.inner.failures);
                m.bind_counter("faas.preemptions", &[], &self.inner.preemptions);
                m.bind_counter("faas.prewarms", &[], &self.inner.prewarms);
                m.bind_counter("faas.rebalances", &[], &self.inner.rebalances);
                m.bind_gauge("faas.in_flight", &[], &self.inner.in_flight);
                *self.inner.hists.borrow_mut() = Some(FaasHists {
                    cold_start_ns: m.histogram("faas.cold_start_ns", &[]),
                    invoke_ns: m.histogram("faas.invoke_ns", &[]),
                });
            }
            None => *self.inner.hists.borrow_mut() = None,
        }
    }

    /// The cluster allocation state (experiments sample utilization here).
    pub fn cluster(&self) -> &ClusterState {
        &self.inner.cluster
    }

    /// Total invocations served.
    pub fn invocations(&self) -> u64 {
        self.inner.invocations.get()
    }

    /// Invocations that paid a cold start.
    pub fn cold_starts(&self) -> u64 {
        self.inner.cold_starts.get()
    }

    /// Invocations rejected for lack of resources.
    pub fn rejections(&self) -> u64 {
        self.inner.rejections.get()
    }

    /// Invocations whose body returned an error.
    pub fn failures(&self) -> u64 {
        self.inner.failures.get()
    }

    /// Warm instances evicted to make room for another placement.
    pub fn preemptions(&self) -> u64 {
        self.inner.preemptions.get()
    }

    /// Instances booted proactively by the autoscaler.
    pub fn prewarms(&self) -> u64 {
        self.inner.prewarms.get()
    }

    /// Idle instances migrated off overloaded nodes.
    pub fn rebalances(&self) -> u64 {
        self.inner.rebalances.get()
    }

    /// Highest concurrent in-flight invocation count observed.
    pub fn peak_concurrency(&self) -> u32 {
        self.inner.peak_in_flight.get()
    }

    /// Nodes currently holding a warm instance of a variant (the kernel
    /// feeds these to the placement policy).
    pub fn warm_nodes(&self, function: &str, variant: &str) -> Vec<NodeId> {
        self.inner
            .pools
            .borrow()
            .get(&(function.to_owned(), variant.to_owned()))
            .map(|p| p.iter().map(|w| w.node).collect())
            .unwrap_or_default()
    }

    /// Count of currently warm (idle) instances of a variant.
    pub fn warm_count(&self, function: &str, variant: &str) -> usize {
        self.inner
            .pools
            .borrow()
            .get(&(function.to_owned(), variant.to_owned()))
            .map(VecDeque::len)
            .unwrap_or(0)
    }

    /// Invokes `image`, letting the optimizer pick the variant for `goal`
    /// and the placement policy pick the node (optionally biased toward
    /// `hint`). Returns the response and the node that served it.
    pub async fn invoke(
        &self,
        image: &FunctionImage,
        goal: Goal,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
        hint: Option<NodeId>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        let variant = {
            let pools = self.inner.pools.borrow();
            let warm = |vname: &str| {
                pools
                    .get(&(image.name.clone(), vname.to_owned()))
                    .map(|p| !p.is_empty())
                    .unwrap_or(false)
            };
            choose_variant(image, req.body.len(), goal, warm)?.clone()
        };
        self.invoke_variant(image, &variant, req, data, hint).await
    }

    /// Invokes a specific variant with placement.
    pub async fn invoke_variant(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
        hint: Option<NodeId>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        let lease = self.reserve_placed(image, variant, hint)?;
        self.run_lease(lease, image, variant, req, data).await
    }

    /// Invokes a specific variant on a specific node (graph executors use
    /// this for explicit co-location).
    pub async fn invoke_on(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        node: NodeId,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        self.note_arrival(image, variant);
        let lease = self.reserve_classed(image, variant, node, false)?;
        self.run_lease(lease, image, variant, req, data).await
    }

    /// Reserves an instance slot on `node` **synchronously**: a warm
    /// instance is taken from the pool, or resources are allocated for a
    /// cold boot. Because no `await` separates the placement decision
    /// from the reservation, callers that place-then-reserve in one
    /// synchronous section cannot race each other onto the same slot.
    ///
    /// The lease is normally passed to [`Runtime::run_lease`] (which
    /// releases it into the warm pool afterwards); a dropped lease
    /// releases its allocation back to the cluster instead.
    pub fn reserve(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        node: NodeId,
    ) -> Result<Lease, PcsiError> {
        self.reserve_classed(image, variant, node, false)
    }

    /// [`Runtime::reserve`] with a capacity class for cold boots: warm
    /// instances keep the class they were born with.
    fn reserve_classed(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        node: NodeId,
        preemptible: bool,
    ) -> Result<Lease, PcsiError> {
        let key: PoolKey = (image.name.clone(), variant.name.clone());
        let warm = {
            let mut pools = self.inner.pools.borrow_mut();
            match pools.get_mut(&key) {
                Some(pool) => {
                    let pos = pool.iter().position(|w| w.node == node);
                    pos.map(|i| pool.remove(i).expect("position valid"))
                }
                None => None,
            }
        };
        let (cold_start, preemptible) = match &warm {
            Some(w) => (false, w.preemptible),
            None => {
                if !self.inner.cluster.try_allocate(node, &variant.demand) {
                    self.inner.rejections.incr();
                    return Err(PcsiError::Overloaded(format!(
                        "node {node} cannot fit {:?}",
                        variant.demand
                    )));
                }
                (true, preemptible)
            }
        };
        Ok(Lease {
            key,
            node,
            cold_start,
            preemptible,
            epoch: self.inner.node_epochs.borrow()[node.0 as usize],
            demand: variant.demand,
            guard: Some(self.inner.cluster.clone()),
        })
    }

    /// Reserves wherever the policy puts it: warm-first, then placement
    /// (with preemption of scavenged instances if enabled). One
    /// synchronous section — safe under concurrency.
    pub fn reserve_placed(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        hint: Option<NodeId>,
    ) -> Result<Lease, PcsiError> {
        self.note_arrival(image, variant);
        let warm_nodes = self.warm_nodes(&image.name, &variant.name);
        // Warm instances are always preferred — their resources are
        // already pinned and they skip the boot. The placement policy
        // governs where *new* instances go. Prefer a warm instance on the
        // hint node, then the lowest-id warm node (deterministic).
        let warm_choice = hint
            .filter(|h| warm_nodes.contains(h))
            .or_else(|| warm_nodes.iter().copied().min());
        if let Some(node) = warm_choice {
            return self.reserve_classed(image, variant, node, false);
        }
        // `place_instance` and `reserve_classed` share this synchronous
        // section: no other task can interleave between the decision and
        // the allocation.
        let placed = self.place_instance(variant.demand, hint).ok_or_else(|| {
            self.inner.rejections.incr();
            PcsiError::Overloaded(format!(
                "no node fits {:?} for {}/{}",
                variant.demand, image.name, variant.name
            ))
        })?;
        self.reserve_classed(image, variant, placed.node, placed.scavenged)
    }

    /// Places a new instance, evicting newest-idle preemptible instances
    /// as needed when preemption is enabled.
    fn place_instance(&self, demand: Resources, hint: Option<NodeId>) -> Option<Placed> {
        loop {
            let placed = place_classed(
                &self.inner.cluster,
                self.inner.config.policy,
                &PlacementRequest {
                    demand,
                    prefer_node: hint,
                    warm_nodes: Vec::new(),
                },
            );
            if placed.is_some() {
                return placed;
            }
            if !self.inner.config.preemption || !self.preempt_one() {
                return None;
            }
        }
    }

    /// Evicts the newest-idle preemptible warm instance cluster-wide and
    /// releases its resources. Deterministic: ties break toward the
    /// lower (function, variant) key, then the lower node id. Returns
    /// false if no preemptible instance exists.
    fn preempt_one(&self) -> bool {
        let mut pools = self.inner.pools.borrow_mut();
        let mut best: Option<(SimTime, PoolKey, NodeId)> = None;
        for (key, pool) in pools.iter() {
            for w in pool.iter().filter(|w| w.preemptible) {
                let better = match &best {
                    None => true,
                    Some((t, k, n)) => {
                        w.idle_since > *t || (w.idle_since == *t && (key, w.node) < (k, *n))
                    }
                };
                if better {
                    best = Some((w.idle_since, key.clone(), w.node));
                }
            }
        }
        let Some((idle_since, key, node)) = best else {
            return false;
        };
        let pool = pools.get_mut(&key).expect("candidate pool exists");
        let pos = pool
            .iter()
            .position(|w| w.node == node && w.idle_since == idle_since && w.preemptible)
            .expect("candidate instance exists");
        let victim = pool.remove(pos).expect("position valid");
        self.inner.cluster.release(victim.node, &victim.demand);
        self.inner.preemptions.incr();
        self.inner.journal.with(|j| {
            j.append(
                "faas",
                "preemption",
                format!("fn={} variant={} node={}", key.0, key.1, node.0),
            );
        });
        true
    }

    /// Records an arrival for the autoscaler's estimators — including
    /// phantom arrivals for downstream stages of registered task graphs.
    fn note_arrival(&self, image: &FunctionImage, variant: &Variant) {
        if !self.inner.config.autoscale.enabled {
            return;
        }
        let mut scaler = self.inner.scaler.borrow_mut();
        for edge in self.inner.prewarm_edges.borrow().iter() {
            if edge.upstream == image.name {
                let key = (edge.function.clone(), edge.variant.name.clone());
                scaler
                    .entry(key)
                    .or_insert_with(|| KeyState {
                        est: RateEstimator::default(),
                        variant: edge.variant.clone(),
                        target: 0,
                    })
                    .est
                    .record_arrival();
            }
        }
        scaler
            .entry((image.name.clone(), variant.name.clone()))
            .or_insert_with(|| KeyState {
                est: RateEstimator::default(),
                variant: variant.clone(),
                target: 0,
            })
            .est
            .record_arrival();
    }

    /// Runs an invocation on a reserved lease.
    pub async fn run_lease(
        &self,
        lease: Lease,
        image: &FunctionImage,
        variant: &Variant,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        self.run_lease_traced(lease, image, variant, req, data, None)
            .await
    }

    /// [`Runtime::run_lease`] with an incoming trace context: the
    /// cold-start wait and the body execution record as child spans.
    pub async fn run_lease_traced(
        &self,
        lease: Lease,
        image: &FunctionImage,
        variant: &Variant,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
        trace: Option<pcsi_trace::TraceContext>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        // Resolve the body first: failing here drops `lease`, whose
        // guard releases the reservation (an unknown image used to leak
        // its cold allocation forever).
        let body = self.inner.registry.borrow().body(&image.name)?;
        let (key, node, cold_start, preemptible, epoch, demand) = lease.into_parts();
        let span_of = |name| match self.inner.tracer.borrow().as_ref() {
            Some(t) => t.child_of(trace, name),
            None => pcsi_trace::SpanHandle::disabled(),
        };
        let started = self.inner.handle.now();
        if cold_start {
            self.inner.cold_starts.incr();
            self.inner.journal.with(|j| {
                j.append(
                    "faas",
                    "cold_start",
                    format!("fn={} variant={} node={}", image.name, variant.name, node.0),
                );
            });
            let boot = variant.backend.cold_start();
            if let Some(h) = self.inner.hists.borrow().as_ref() {
                h.cold_start_ns.record_duration(boot);
            }
            let cold_span = span_of("faas.cold_start");
            self.inner.handle.sleep(boot).await;
            cold_span.finish();
        }

        self.inner.invocations.incr();
        self.inner.in_flight.add(1);
        let in_flight = self.inner.in_flight.get().max(0) as u32;
        self.inner
            .peak_in_flight
            .set(self.inner.peak_in_flight.get().max(in_flight));

        let mut invoke_span = span_of("faas.invoke");
        invoke_span.attr("node", u64::from(node.0));

        // The isolation boundary crossing.
        self.inner
            .handle
            .sleep(variant.backend.call_overhead())
            .await;
        let exec_started = self.inner.handle.now();

        let ctx = FnCtx {
            body: req.body,
            inputs: req.inputs,
            outputs: req.outputs,
            data,
            handle: self.inner.handle.clone(),
            speedup: variant.speedup,
        };
        let result = body(ctx).await;
        invoke_span.finish();
        self.inner.in_flight.add(-1);

        let now = self.inner.handle.now();
        if self.inner.config.autoscale.enabled {
            if let Some(st) = self.inner.scaler.borrow_mut().get_mut(&key) {
                st.est.record_service(now - exec_started);
            }
        }

        // Return the instance to the warm pool regardless of outcome (a
        // failed invocation does not destroy the sandbox) — unless the
        // node was evicted mid-flight: then the sandbox died with the
        // node, so discard it and release the allocation `evict_node`
        // could not see (it only frees *pooled* instances).
        if self.inner.node_epochs.borrow()[node.0 as usize] == epoch {
            self.inner
                .pools
                .borrow_mut()
                .entry(key)
                .or_default()
                .push_back(WarmInstance {
                    node,
                    idle_since: now,
                    demand,
                    preemptible,
                });
        } else {
            self.inner.cluster.release(node, &demand);
        }

        // Latency is recorded on every outcome: error latencies (which
        // include cold-start time) count toward SLO attainment too.
        let billed = now - started;
        if let Some(h) = self.inner.hists.borrow().as_ref() {
            h.invoke_ns.record_duration(billed);
        }
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                self.inner.failures.incr();
                return Err(e);
            }
        };
        Ok((
            InvokeResponse {
                body: out,
                billed_ns: billed.as_nanos() as u64,
                cold_start,
            },
            node,
        ))
    }

    /// Evicts every warm instance on `node` and releases its resources —
    /// the control plane's reaction to a node crash. In-flight
    /// invocations on the node fail through their own paths; this purges
    /// the pools so routing stops sending work there, and bumps the
    /// node's eviction epoch so in-flight instances are discarded on
    /// return instead of re-pooled onto a dead node.
    pub fn evict_node(&self, node: NodeId) {
        self.inner.node_epochs.borrow_mut()[node.0 as usize] += 1;
        let mut pools = self.inner.pools.borrow_mut();
        for pool in pools.values_mut() {
            let mut kept = VecDeque::new();
            while let Some(w) = pool.pop_front() {
                if w.node == node {
                    self.inner.cluster.release(w.node, &w.demand);
                } else {
                    kept.push_back(w);
                }
            }
            *pool = kept;
        }
    }

    fn start_reaper(&self) {
        let inner = Rc::clone(&self.inner);
        let h = self.inner.handle.clone();
        h.clone().spawn(async move {
            loop {
                h.sleep(inner.config.reap_interval).await;
                let now = h.now();
                let mut pools = inner.pools.borrow_mut();
                let scaler = inner.scaler.borrow();
                for (key, pool) in pools.iter_mut() {
                    // The autoscaler's predicted working set is a reap
                    // floor: keep-alive only trims the excess, so pools
                    // the estimator still expects traffic for survive
                    // the night. Floors drop to zero as estimators
                    // idle-reset, so quiescent pools still fully drain.
                    let floor = if inner.config.autoscale.enabled {
                        scaler.get(key).map_or(0, |st| st.target)
                    } else {
                        0
                    };
                    let keep_alive = inner.config.keep_alive;
                    let mut kept = VecDeque::new();
                    while let Some(w) = pool.pop_front() {
                        let above_floor = kept.len() + pool.len() >= floor;
                        if above_floor && now.saturating_since(w.idle_since) > keep_alive {
                            inner.cluster.release(w.node, &w.demand);
                        } else {
                            kept.push_back(w);
                        }
                    }
                    *pool = kept;
                }
            }
        });
    }

    /// The pre-warmer: every scan interval, tick the estimators, boot
    /// toward the per-key targets, and run the work-stealing rebalance
    /// pass. Spawned only when the autoscaler is enabled; draws no
    /// randomness (virtual time and arrival counts only).
    fn start_autoscaler(&self) {
        if !self.inner.config.autoscale.enabled {
            return;
        }
        let inner = Rc::clone(&self.inner);
        let h = self.inner.handle.clone();
        h.clone().spawn(async move {
            let cfg = inner.config.autoscale.clone();
            let dt = cfg.interval.as_secs_f64();
            let alpha = cfg.alpha();
            let idle_limit = cfg.idle_limit();
            loop {
                h.sleep(cfg.interval).await;
                let mut actions = 0usize;
                // Tick every estimator and compute targets. Keys are
                // sorted so the scan order (and thus the boot order) is
                // independent of hash-map iteration order.
                let mut plans: Vec<(PoolKey, Variant, usize)> = Vec::new();
                {
                    let mut scaler = inner.scaler.borrow_mut();
                    let mut keys: Vec<PoolKey> = scaler.keys().cloned().collect();
                    keys.sort();
                    for key in keys {
                        let st = scaler.get_mut(&key).expect("key just listed");
                        st.est.tick(dt, alpha, idle_limit);
                        let target = st
                            .est
                            .target(st.variant.backend, cfg.headroom, cfg.max_pool);
                        st.target = target;
                        if target > 0 {
                            plans.push((key, st.variant.clone(), target));
                        }
                    }
                }
                for (key, variant, target) in plans {
                    if actions >= cfg.max_actions_per_scan {
                        break;
                    }
                    let have = {
                        let warm = inner
                            .pools
                            .borrow()
                            .get(&key)
                            .map(VecDeque::len)
                            .unwrap_or(0);
                        let booting = inner.booting.borrow().get(&key).copied().unwrap_or(0);
                        warm + booting
                    };
                    for _ in have..target {
                        if actions >= cfg.max_actions_per_scan
                            || !Self::prewarm_one(&inner, &key, &variant)
                        {
                            break;
                        }
                        actions += 1;
                    }
                }
                Self::rebalance_pass(&inner, &cfg, &mut actions);
            }
        });
    }

    /// Boots one instance toward a pool target. Placement never preempts
    /// (speculative capacity must not evict anything); the allocation is
    /// taken synchronously and the boot sleep runs in a spawned task that
    /// re-checks the node's eviction epoch before pooling.
    fn prewarm_one(inner: &Rc<Inner>, key: &PoolKey, variant: &Variant) -> bool {
        let placed = place_classed(
            &inner.cluster,
            inner.config.policy,
            &PlacementRequest {
                demand: variant.demand,
                prefer_node: None,
                warm_nodes: Vec::new(),
            },
        );
        let Some(placed) = placed else { return false };
        if !inner.cluster.try_allocate(placed.node, &variant.demand) {
            return false;
        }
        *inner.booting.borrow_mut().entry(key.clone()).or_insert(0) += 1;
        inner.prewarms.incr();
        let node = placed.node;
        let preemptible = placed.scavenged;
        let epoch = inner.node_epochs.borrow()[node.0 as usize];
        let demand = variant.demand;
        let boot = variant.backend.cold_start();
        let key = key.clone();
        let inner = Rc::clone(inner);
        let h = inner.handle.clone();
        h.clone().spawn(async move {
            h.sleep(boot).await;
            if let Some(b) = inner.booting.borrow_mut().get_mut(&key) {
                *b = b.saturating_sub(1);
            }
            if inner.node_epochs.borrow()[node.0 as usize] == epoch {
                inner
                    .pools
                    .borrow_mut()
                    .entry(key)
                    .or_default()
                    .push_back(WarmInstance {
                        node,
                        idle_since: h.now(),
                        demand,
                        preemptible,
                    });
            } else {
                inner.cluster.release(node, &demand);
            }
        });
        true
    }

    /// Work stealing: drains idle warm instances off nodes above the
    /// high watermark onto the least-utilized node below the low
    /// watermark, one at a time until watermarks hold or the action
    /// budget runs out. The moved instance re-boots on its new node.
    fn rebalance_pass(inner: &Rc<Inner>, cfg: &AutoscaleConfig, actions: &mut usize) {
        while *actions < cfg.max_actions_per_scan {
            // Newest-idle instance on any overloaded node (deterministic
            // tie-break on key then node, independent of map order).
            let mut cand: Option<(SimTime, PoolKey, NodeId)> = None;
            {
                let pools = inner.pools.borrow();
                for (key, pool) in pools.iter() {
                    for w in pool {
                        if inner.cluster.node_utilization(w.node) <= cfg.steal_high {
                            continue;
                        }
                        let better = match &cand {
                            None => true,
                            Some((t, k, n)) => {
                                w.idle_since > *t || (w.idle_since == *t && (key, w.node) < (k, *n))
                            }
                        };
                        if better {
                            cand = Some((w.idle_since, key.clone(), w.node));
                        }
                    }
                }
            }
            let Some((idle_since, key, node)) = cand else {
                return;
            };
            let victim = {
                let mut pools = inner.pools.borrow_mut();
                let pool = pools.get_mut(&key).expect("candidate pool exists");
                let pos = pool
                    .iter()
                    .position(|w| w.node == node && w.idle_since == idle_since)
                    .expect("candidate instance exists");
                pool.remove(pos).expect("position valid")
            };
            let target = inner
                .cluster
                .nodes()
                .into_iter()
                .filter(|&n| {
                    n != node
                        && inner.cluster.node_utilization(n) < cfg.steal_low
                        && inner.cluster.fits(n, &victim.demand)
                })
                .min_by(|a, b| {
                    crate::scheduler::utilization_key(&inner.cluster, *a)
                        .cmp(&crate::scheduler::utilization_key(&inner.cluster, *b))
                        .then(a.cmp(b))
                });
            let Some(target) = target else {
                // Nowhere to put it: put the instance back and stop.
                inner
                    .pools
                    .borrow_mut()
                    .entry(key)
                    .or_default()
                    .push_back(victim);
                return;
            };
            inner.cluster.release(victim.node, &victim.demand);
            assert!(
                inner.cluster.try_allocate(target, &victim.demand),
                "fits() held in the same synchronous section"
            );
            inner.rebalances.incr();
            *actions += 1;
            // The stolen instance re-boots on its new node; track it as
            // booting so the pre-warmer does not double-fill the gap.
            *inner.booting.borrow_mut().entry(key.clone()).or_insert(0) += 1;
            let demand = victim.demand;
            let preemptible = victim.preemptible;
            let epoch = inner.node_epochs.borrow()[target.0 as usize];
            // Boot cost of the variant if the scaler knows it; a
            // container-class boot otherwise (the conservative case).
            let boot = inner
                .scaler
                .borrow()
                .get(&key)
                .map(|st| st.variant.backend.cold_start())
                .unwrap_or_else(|| crate::isolation::Backend::Container.cold_start());
            let key2 = key.clone();
            let inner2 = Rc::clone(inner);
            let h = inner.handle.clone();
            h.clone().spawn(async move {
                h.sleep(boot).await;
                if let Some(b) = inner2.booting.borrow_mut().get_mut(&key2) {
                    *b = b.saturating_sub(1);
                }
                if inner2.node_epochs.borrow()[target.0 as usize] == epoch {
                    inner2
                        .pools
                        .borrow_mut()
                        .entry(key2)
                        .or_default()
                        .push_back(WarmInstance {
                            node: target,
                            idle_since: h.now(),
                            demand,
                            preemptible,
                        });
                } else {
                    inner2.cluster.release(target, &demand);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::WorkModel;
    use bytes::Bytes;
    use pcsi_core::Reference;
    use pcsi_net::Topology;
    use pcsi_sim::executor::LocalBoxFuture;
    use pcsi_sim::Sim;

    /// A data plane that refuses everything (bodies in these tests only
    /// compute).
    struct NoData;

    impl DataPlane for NoData {
        fn read(&self, _: &Reference, _: u64, _: u64) -> LocalBoxFuture<Result<Bytes, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn write(&self, _: &Reference, _: u64, _: Bytes) -> LocalBoxFuture<Result<(), PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn append(&self, _: &Reference, _: Bytes) -> LocalBoxFuture<Result<u64, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn pop(&self, _: &Reference) -> LocalBoxFuture<Result<Bytes, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn invoke(
            &self,
            _: &Reference,
            _: InvokeRequest,
        ) -> LocalBoxFuture<Result<InvokeResponse, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
    }

    fn setup(sim: &Sim) -> Runtime {
        setup_with(
            sim,
            RuntimeConfig {
                policy: PlacementPolicy::Locality,
                keep_alive: Duration::from_secs(10),
                reap_interval: Duration::from_secs(1),
                ..RuntimeConfig::default()
            },
        )
    }

    fn setup_with(sim: &Sim, config: RuntimeConfig) -> Runtime {
        let cluster = ClusterState::new(&Topology::uniform(2, 2));
        let rt = Runtime::new(sim.handle(), cluster, config);
        rt.register_body(
            "work",
            Rc::new(|ctx: FnCtx| {
                Box::pin(async move {
                    ctx.compute(Duration::from_millis(10)).await;
                    Ok(ctx.body)
                })
            }),
        );
        rt
    }

    fn image() -> FunctionImage {
        FunctionImage::simple("work", WorkModel::fixed(Duration::from_millis(10)), 4)
    }

    fn request() -> InvokeRequest {
        InvokeRequest::with_body(&b"payload"[..])
    }

    fn total_allocated_cpu(rt: &Runtime) -> u32 {
        rt.cluster()
            .nodes()
            .iter()
            .map(|&n| rt.cluster().allocated(n).cpu)
            .sum()
    }

    #[test]
    fn cold_then_warm() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        let (first, second) = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = image();
                let t0 = h.now();
                let (r1, n1) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let d1 = h.now() - t0;
                let t1 = h.now();
                let (r2, n2) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let d2 = h.now() - t1;
                assert!(r1.cold_start);
                assert!(!r2.cold_start);
                assert_eq!(n1, n2, "warm reuse should stay on the same node");
                assert_eq!(&r2.body[..], b"payload");
                (d1, d2)
            }
        });
        // Cold pays the 250 ms container boot; warm is ~10 ms of work.
        assert!(first > Duration::from_millis(250), "first {first:?}");
        assert!(second < Duration::from_millis(15), "second {second:?}");
        assert_eq!(rt.cold_starts(), 1);
        assert_eq!(rt.invocations(), 2);
        assert_eq!(rt.warm_count("work", "cpu"), 1);
    }

    #[test]
    fn concurrency_scales_instances() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                let mut joins = Vec::new();
                for _ in 0..8 {
                    let rt = rt.clone();
                    let img = img.clone();
                    joins.push(h.spawn(async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                            .unwrap()
                    }));
                }
                for j in joins {
                    j.await;
                }
            }
        });
        // 8 concurrent requests, one instance each (FaaS concurrency=1).
        assert_eq!(rt.cold_starts(), 8);
        assert_eq!(rt.peak_concurrency(), 8);
        assert_eq!(rt.warm_count("work", "cpu"), 8);
    }

    #[test]
    fn keep_alive_reaping_frees_resources() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                assert_eq!(
                    total_allocated_cpu(&rt),
                    4,
                    "instance pins its cores while warm"
                );
                // Sleep past keep-alive + reap interval.
                h.sleep(Duration::from_secs(15)).await;
                assert_eq!(
                    total_allocated_cpu(&rt),
                    0,
                    "reaper must release idle instances"
                );
                assert_eq!(rt.warm_count("work", "cpu"), 0);
            }
        });
    }

    #[test]
    fn exhaustion_yields_overloaded() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        // 4 nodes x 32 cores, 4 cores per instance: 32 instances fit.
        let h = sim.handle();
        let errors = sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                let mut joins = Vec::new();
                for _ in 0..40 {
                    let rt = rt.clone();
                    let img = img.clone();
                    joins.push(h.spawn(async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                    }));
                }
                let mut errs = 0;
                for j in joins {
                    if j.await.is_err() {
                        errs += 1;
                    }
                }
                errs
            }
        });
        assert_eq!(errors, 8);
        assert_eq!(rt.rejections(), 8);
    }

    #[test]
    fn explicit_placement_respected() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let node = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = image();
                let variant = img.variant("cpu").unwrap().clone();
                let (_, node) = rt
                    .invoke_on(&img, &variant, NodeId(3), request(), Rc::new(NoData))
                    .await
                    .unwrap();
                node
            }
        });
        assert_eq!(node, NodeId(3));
    }

    #[test]
    fn failing_body_surfaces_error_but_keeps_instance() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        rt.register_body(
            "boom",
            Rc::new(|_ctx| Box::pin(async { Err(PcsiError::FunctionFailed("kaput".into())) })),
        );
        let err = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = FunctionImage::simple("boom", WorkModel::fixed(Duration::ZERO), 1);
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap_err()
            }
        });
        assert!(matches!(err, PcsiError::FunctionFailed(_)));
        assert_eq!(rt.warm_count("boom", "cpu"), 1);
    }

    #[test]
    fn billed_time_reflects_execution() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let (cold_billed, warm_billed) = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = image();
                let (r1, _) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let (r2, _) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                (r1.billed_ns, r2.billed_ns)
            }
        });
        // Cold includes the 250 ms boot; warm is just the ~10 ms of work.
        assert!(cold_billed > 250_000_000);
        assert!(
            (9_000_000..15_000_000).contains(&warm_billed),
            "{warm_billed}"
        );
    }

    #[test]
    fn unknown_body_is_an_error() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let err = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = FunctionImage::simple("ghost", WorkModel::fixed(Duration::ZERO), 1);
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap_err()
            }
        });
        assert!(matches!(err, PcsiError::FunctionFailed(_)));
    }

    /// Regression (leaked cold-boot reservation): an invocation of an
    /// unregistered image allocates resources in `reserve` and then fails
    /// the body lookup — before the `Lease` drop guard, that allocation
    /// leaked forever and permanently shrank the cluster.
    #[test]
    fn unknown_body_releases_its_reservation() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        sim.block_on({
            let rt = rt.clone();
            async move {
                let img = FunctionImage::simple("ghost", WorkModel::fixed(Duration::ZERO), 1);
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap_err();
            }
        });
        assert_eq!(
            total_allocated_cpu(&rt),
            0,
            "failed body lookup must release the cold-boot reservation"
        );
    }

    /// Regression (re-pooling onto an evicted node): an instance whose
    /// node is evicted mid-flight used to return to the warm pool anyway,
    /// routing new work to a dead node and later double-releasing in the
    /// reaper. The eviction epoch discards it and releases its in-flight
    /// allocation (which `evict_node` could not see).
    #[test]
    fn evict_mid_flight_discards_the_returning_instance() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                let join = h.spawn({
                    let rt = rt.clone();
                    let img = img.clone();
                    async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                    }
                });
                // Past the 250 ms boot, inside the 10 ms body.
                h.sleep(Duration::from_millis(255)).await;
                let node = rt.warm_nodes("work", "cpu");
                assert!(node.is_empty(), "instance is in flight, not pooled");
                rt.evict_node(NodeId(0));
                let res = join.await;
                assert!(res.is_ok(), "the body itself completes");
                assert_eq!(
                    rt.warm_count("work", "cpu"),
                    0,
                    "evicted node must not re-enter the pool"
                );
                assert_eq!(total_allocated_cpu(&rt), 0, "allocation must balance");
                // A reap cycle later nothing double-releases (would panic).
                h.sleep(Duration::from_secs(15)).await;
            }
        });
    }

    /// Regression (failed invocations invisible to latency metrics):
    /// error latencies now land in `faas.invoke_ns` and bump the
    /// `faas.failures` counter.
    #[test]
    fn failed_invocations_record_latency_and_failures() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let m = Metrics::new();
        rt.set_metrics(Some(&m));
        rt.register_body(
            "boom",
            Rc::new(|_ctx| Box::pin(async { Err(PcsiError::FunctionFailed("kaput".into())) })),
        );
        sim.block_on({
            let rt = rt.clone();
            async move {
                let img = FunctionImage::simple("boom", WorkModel::fixed(Duration::ZERO), 1);
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap_err();
            }
        });
        assert_eq!(rt.failures(), 1);
        let invoke_ns = m.histogram("faas.invoke_ns", &[]);
        assert_eq!(
            invoke_ns.count(),
            1,
            "the failed invocation's latency must be recorded"
        );
    }

    /// A provisioned placement that finds no room evicts the newest-idle
    /// scavenged instance instead of rejecting.
    #[test]
    fn preemption_reclaims_scavenged_capacity() {
        let mut sim = Sim::new(1);
        let rt = setup_with(
            &sim,
            RuntimeConfig {
                policy: PlacementPolicy::Scavenge,
                keep_alive: Duration::from_secs(100),
                reap_interval: Duration::from_secs(1),
                preemption: true,
                ..RuntimeConfig::default()
            },
        );
        rt.register_body(
            "solo",
            Rc::new(|ctx: FnCtx| Box::pin(async move { Ok(ctx.body) })),
        );
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                // Fill the whole cluster (4 nodes x 32 cores / 4-core
                // instances = 32) with scavenge-placed warm instances.
                let img = image();
                let mut joins = Vec::new();
                for _ in 0..32 {
                    let rt = rt.clone();
                    let img = img.clone();
                    joins.push(h.spawn(async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                            .unwrap()
                    }));
                }
                for j in joins {
                    j.await;
                }
                assert_eq!(rt.warm_count("work", "cpu"), 32);
                // A new function finds no room — preemption makes some.
                let solo = FunctionImage::simple("solo", WorkModel::fixed(Duration::ZERO), 4);
                let res = rt
                    .invoke(&solo, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await;
                assert!(res.is_ok(), "preemption should make room: {res:?}");
            }
        });
        assert_eq!(rt.preemptions(), 1);
        assert_eq!(rt.warm_count("work", "cpu"), 31);
        assert_eq!(rt.rejections(), 0);
    }

    /// The pre-warmer boots instances ahead of steady traffic so later
    /// arrivals stop paying cold starts.
    #[test]
    fn prewarmer_boots_ahead_of_demand() {
        let mut sim = Sim::new(1);
        let rt = setup_with(
            &sim,
            RuntimeConfig {
                policy: PlacementPolicy::Locality,
                keep_alive: Duration::from_secs(10),
                reap_interval: Duration::from_secs(1),
                autoscale: AutoscaleConfig {
                    interval: Duration::from_millis(100),
                    window: Duration::from_secs(2),
                    ..AutoscaleConfig::enabled()
                },
                ..RuntimeConfig::default()
            },
        );
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                let fire = |rt: Runtime, img: FunctionImage| async move {
                    let _ = rt
                        .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                        .await;
                };
                // Ramp: 10 rps for 1.5 s, then a 100 rps burst for 2.5 s.
                // The estimator sees the rise and boots the pool deeper
                // than reactive traffic alone would have.
                for _ in 0..15 {
                    h.spawn(fire(rt.clone(), img.clone()));
                    h.sleep(Duration::from_millis(100)).await;
                }
                for _ in 0..250 {
                    h.spawn(fire(rt.clone(), img.clone()));
                    h.sleep(Duration::from_millis(10)).await;
                }
            }
        });
        assert!(rt.prewarms() >= 1, "prewarms {}", rt.prewarms());
        assert!(
            rt.cold_starts() <= 8,
            "the predictive pool should absorb the burst warm: {} cold starts",
            rt.cold_starts()
        );
    }

    /// Arrivals at an upstream task-graph stage warm the downstream
    /// stage's pool before any downstream invocation happens.
    #[test]
    fn graph_edges_prewarm_downstream_stages() {
        let mut sim = Sim::new(1);
        let rt = setup_with(
            &sim,
            RuntimeConfig {
                policy: PlacementPolicy::Locality,
                keep_alive: Duration::from_secs(10),
                reap_interval: Duration::from_secs(1),
                autoscale: AutoscaleConfig {
                    interval: Duration::from_millis(100),
                    window: Duration::from_secs(2),
                    ..AutoscaleConfig::enabled()
                },
                ..RuntimeConfig::default()
            },
        );
        let graph = TaskGraph::linear(&["work", "transform"]);
        rt.register_prewarm_graph(&graph, |stage| {
            (stage.function == "transform").then(|| Variant::cpu(2))
        });
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                for _ in 0..150 {
                    let rt = rt.clone();
                    let img = img.clone();
                    h.spawn(async move {
                        let _ = rt
                            .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await;
                    });
                    h.sleep(Duration::from_millis(20)).await;
                }
            }
        });
        assert!(
            rt.warm_count("transform", "cpu") > 0,
            "downstream pool must be pre-warmed by upstream arrivals"
        );
    }

    /// Idle instances on a node above the high watermark migrate to an
    /// underutilized node.
    #[test]
    fn rebalance_drains_an_overloaded_node() {
        let mut sim = Sim::new(1);
        let rt = setup_with(
            &sim,
            RuntimeConfig {
                policy: PlacementPolicy::Scavenge,
                keep_alive: Duration::from_secs(100),
                reap_interval: Duration::from_secs(10),
                autoscale: AutoscaleConfig {
                    interval: Duration::from_millis(100),
                    window: Duration::from_secs(2),
                    ..AutoscaleConfig::enabled()
                },
                ..RuntimeConfig::default()
            },
        );
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                // Scavenge packs 8 x 4-core instances onto node 0 (full).
                let img = image();
                let mut joins = Vec::new();
                for _ in 0..8 {
                    let rt = rt.clone();
                    let img = img.clone();
                    joins.push(h.spawn(async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                            .unwrap()
                    }));
                }
                for j in joins {
                    j.await;
                }
                // Let the autoscaler run a few scans.
                h.sleep(Duration::from_secs(2)).await;
            }
        });
        assert!(rt.rebalances() >= 1, "rebalances {}", rt.rebalances());
        let nodes = rt.warm_nodes("work", "cpu");
        assert!(
            nodes.iter().any(|&n| n != NodeId(0)),
            "some instance must have moved off node 0: {nodes:?}"
        );
    }
}
