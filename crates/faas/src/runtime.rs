//! The function runtime: warm pools, cold starts, autoscaling.
//!
//! The runtime realizes serverless execution semantics on the simulated
//! cluster: instances are created on demand (scale from zero), pay a
//! backend-specific cold start, serve one invocation at a time, linger
//! warm for a keep-alive window, and are reaped afterwards — releasing
//! their resources back to the cluster. "Abstraction that hides servers,
//! pay-per-use without capacity reservations, and autoscaling from zero"
//! (§2.4) falls out of this lifecycle.

use std::cell::RefCell;
use std::collections::VecDeque;

use fxhash::FxHashMap;
use std::rc::Rc;
use std::time::Duration;

use pcsi_core::api::{InvokeRequest, InvokeResponse};
use pcsi_core::PcsiError;
use pcsi_metrics::{Counter, Gauge, Histogram, Metrics};
use pcsi_net::NodeId;
use pcsi_sim::{SimHandle, SimTime};
use pcsi_trace::Tracer;

use crate::cluster::ClusterState;
use crate::function::{DataPlane, FnCtx, FunctionImage, Variant};
use crate::registry::{choose_variant, FunctionRegistry, Goal};
use crate::scheduler::{place, PlacementPolicy, PlacementRequest};

/// Runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Placement policy for new instances.
    pub policy: PlacementPolicy,
    /// How long an idle instance stays warm.
    pub keep_alive: Duration,
    /// How often the reaper scans for idle instances.
    pub reap_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            policy: PlacementPolicy::Locality,
            keep_alive: Duration::from_secs(60),
            reap_interval: Duration::from_secs(5),
        }
    }
}

type PoolKey = (String, String); // (function name, variant name)

struct WarmInstance {
    node: NodeId,
    idle_since: SimTime,
    demand: pcsi_net::node::Resources,
}

/// A reserved instance slot (see [`Runtime::reserve`]).
///
/// Holding a lease means either a warm instance was taken out of the
/// pool or resources were allocated for a cold boot; `run_lease` turns it
/// back into a warm pool entry when the invocation finishes.
#[derive(Debug)]
pub struct Lease {
    key: PoolKey,
    node: NodeId,
    cold_start: bool,
    #[allow(dead_code)] // Recorded for debugging leaked leases.
    demand: pcsi_net::node::Resources,
}

impl Lease {
    /// The node this lease is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True if running this lease will pay a cold start.
    pub fn is_cold(&self) -> bool {
        self.cold_start
    }
}

/// The deployed function runtime. Cheap to clone.
#[derive(Clone)]
pub struct Runtime {
    inner: Rc<Inner>,
}

struct Inner {
    handle: SimHandle,
    cluster: ClusterState,
    registry: RefCell<FunctionRegistry>,
    config: RuntimeConfig,
    pools: RefCell<FxHashMap<PoolKey, VecDeque<WarmInstance>>>,
    invocations: Counter,
    cold_starts: Counter,
    rejections: Counter,
    /// Concurrent in-flight invocations right now (a gauge so the
    /// metrics registry can publish the live value).
    in_flight: Gauge,
    peak_in_flight: std::cell::Cell<u32>,
    /// Latency histograms, populated only while a registry is installed.
    hists: RefCell<Option<FaasHists>>,
    /// Optional tracer: invocations record cold-start and body spans
    /// under the caller's context.
    tracer: RefCell<Option<Tracer>>,
}

/// Histograms recorded per invocation when metrics are enabled.
struct FaasHists {
    /// Cold-start boot time, nanoseconds.
    cold_start_ns: Histogram,
    /// End-to-end invocation latency (cold start included), nanoseconds.
    invoke_ns: Histogram,
}

impl Runtime {
    /// Creates the runtime and starts its reaper task.
    pub fn new(handle: SimHandle, cluster: ClusterState, config: RuntimeConfig) -> Self {
        let rt = Runtime {
            inner: Rc::new(Inner {
                handle: handle.clone(),
                cluster,
                registry: RefCell::new(FunctionRegistry::new()),
                config,
                pools: RefCell::new(FxHashMap::default()),
                invocations: Counter::new(),
                cold_starts: Counter::new(),
                rejections: Counter::new(),
                in_flight: Gauge::new(),
                peak_in_flight: std::cell::Cell::new(0),
                hists: RefCell::new(None),
                tracer: RefCell::new(None),
            }),
        };
        rt.start_reaper();
        rt
    }

    /// Registers a host body for an image name.
    pub fn register_body(&self, name: &str, body: crate::function::FunctionBody) {
        self.inner.registry.borrow_mut().register(name, body);
    }

    /// Installs (or removes) the tracer invocation spans record into.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        *self.inner.tracer.borrow_mut() = tracer;
    }

    /// Installs (or removes) the metrics registry: the runtime's
    /// always-on counters are published as named series and the latency
    /// histograms start recording.
    pub fn set_metrics(&self, metrics: Option<&Metrics>) {
        match metrics {
            Some(m) => {
                m.bind_counter("faas.invocations", &[], &self.inner.invocations);
                m.bind_counter("faas.cold_starts", &[], &self.inner.cold_starts);
                m.bind_counter("faas.rejections", &[], &self.inner.rejections);
                m.bind_gauge("faas.in_flight", &[], &self.inner.in_flight);
                *self.inner.hists.borrow_mut() = Some(FaasHists {
                    cold_start_ns: m.histogram("faas.cold_start_ns", &[]),
                    invoke_ns: m.histogram("faas.invoke_ns", &[]),
                });
            }
            None => *self.inner.hists.borrow_mut() = None,
        }
    }

    /// The cluster allocation state (experiments sample utilization here).
    pub fn cluster(&self) -> &ClusterState {
        &self.inner.cluster
    }

    /// Total invocations served.
    pub fn invocations(&self) -> u64 {
        self.inner.invocations.get()
    }

    /// Invocations that paid a cold start.
    pub fn cold_starts(&self) -> u64 {
        self.inner.cold_starts.get()
    }

    /// Invocations rejected for lack of resources.
    pub fn rejections(&self) -> u64 {
        self.inner.rejections.get()
    }

    /// Highest concurrent in-flight invocation count observed.
    pub fn peak_concurrency(&self) -> u32 {
        self.inner.peak_in_flight.get()
    }

    /// Nodes currently holding a warm instance of a variant (the kernel
    /// feeds these to the placement policy).
    pub fn warm_nodes(&self, function: &str, variant: &str) -> Vec<NodeId> {
        self.inner
            .pools
            .borrow()
            .get(&(function.to_owned(), variant.to_owned()))
            .map(|p| p.iter().map(|w| w.node).collect())
            .unwrap_or_default()
    }

    /// Count of currently warm (idle) instances of a variant.
    pub fn warm_count(&self, function: &str, variant: &str) -> usize {
        self.inner
            .pools
            .borrow()
            .get(&(function.to_owned(), variant.to_owned()))
            .map(VecDeque::len)
            .unwrap_or(0)
    }

    /// Invokes `image`, letting the optimizer pick the variant for `goal`
    /// and the placement policy pick the node (optionally biased toward
    /// `hint`). Returns the response and the node that served it.
    pub async fn invoke(
        &self,
        image: &FunctionImage,
        goal: Goal,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
        hint: Option<NodeId>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        let variant = {
            let pools = self.inner.pools.borrow();
            let warm = |vname: &str| {
                pools
                    .get(&(image.name.clone(), vname.to_owned()))
                    .map(|p| !p.is_empty())
                    .unwrap_or(false)
            };
            choose_variant(image, req.body.len(), goal, warm)?.clone()
        };
        self.invoke_variant(image, &variant, req, data, hint).await
    }

    /// Invokes a specific variant with placement.
    pub async fn invoke_variant(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
        hint: Option<NodeId>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        let key: PoolKey = (image.name.clone(), variant.name.clone());
        let warm_nodes: Vec<NodeId> = self
            .inner
            .pools
            .borrow()
            .get(&key)
            .map(|p| p.iter().map(|w| w.node).collect())
            .unwrap_or_default();
        // Warm instances are always preferred — their resources are
        // already pinned and they skip the boot. The placement policy
        // governs where *new* instances go. Prefer a warm instance on the
        // hint node, then the lowest-id warm node (deterministic).
        let warm_choice = hint
            .filter(|h| warm_nodes.contains(h))
            .or_else(|| warm_nodes.iter().copied().min());
        let node = warm_choice
            .or_else(|| {
                place(
                    &self.inner.cluster,
                    self.inner.config.policy,
                    &PlacementRequest {
                        demand: variant.demand,
                        prefer_node: hint,
                        warm_nodes: Vec::new(),
                    },
                )
            })
            .ok_or_else(|| {
                self.inner.rejections.incr();
                PcsiError::Overloaded(format!(
                    "no node fits {:?} for {}/{}",
                    variant.demand, image.name, variant.name
                ))
            })?;
        // `place` and `reserve` share this synchronous section: no other
        // task can interleave between the decision and the allocation.
        let lease = self.reserve(image, variant, node)?;
        self.run_lease(lease, image, variant, req, data).await
    }

    /// Invokes a specific variant on a specific node (graph executors use
    /// this for explicit co-location).
    pub async fn invoke_on(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        node: NodeId,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        let lease = self.reserve(image, variant, node)?;
        self.run_lease(lease, image, variant, req, data).await
    }

    /// Reserves an instance slot on `node` **synchronously**: a warm
    /// instance is taken from the pool, or resources are allocated for a
    /// cold boot. Because no `await` separates the placement decision
    /// from the reservation, callers that place-then-reserve in one
    /// synchronous section cannot race each other onto the same slot.
    ///
    /// The lease must be passed to [`Runtime::run_lease`] (which releases
    /// it into the warm pool afterwards); dropping it leaks the slot
    /// until the node is evicted.
    pub fn reserve(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        node: NodeId,
    ) -> Result<Lease, PcsiError> {
        let key: PoolKey = (image.name.clone(), variant.name.clone());
        let warm = {
            let mut pools = self.inner.pools.borrow_mut();
            match pools.get_mut(&key) {
                Some(pool) => {
                    let pos = pool.iter().position(|w| w.node == node);
                    pos.map(|i| pool.remove(i).expect("position valid"))
                }
                None => None,
            }
        };
        let cold_start = warm.is_none();
        if cold_start && !self.inner.cluster.try_allocate(node, &variant.demand) {
            self.inner.rejections.incr();
            return Err(PcsiError::Overloaded(format!(
                "node {node} cannot fit {:?}",
                variant.demand
            )));
        }
        Ok(Lease {
            key,
            node,
            cold_start,
            demand: variant.demand,
        })
    }

    /// Reserves wherever the policy puts it: warm-first, then placement.
    /// One synchronous section — safe under concurrency.
    pub fn reserve_placed(
        &self,
        image: &FunctionImage,
        variant: &Variant,
        hint: Option<NodeId>,
    ) -> Result<Lease, PcsiError> {
        let warm_nodes = self.warm_nodes(&image.name, &variant.name);
        let node = hint
            .filter(|h| warm_nodes.contains(h))
            .or_else(|| warm_nodes.iter().copied().min())
            .or_else(|| {
                place(
                    &self.inner.cluster,
                    self.inner.config.policy,
                    &PlacementRequest {
                        demand: variant.demand,
                        prefer_node: hint,
                        warm_nodes: Vec::new(),
                    },
                )
            })
            .ok_or_else(|| {
                self.inner.rejections.incr();
                PcsiError::Overloaded(format!(
                    "no node fits {:?} for {}/{}",
                    variant.demand, image.name, variant.name
                ))
            })?;
        self.reserve(image, variant, node)
    }

    /// Runs an invocation on a reserved lease.
    pub async fn run_lease(
        &self,
        lease: Lease,
        image: &FunctionImage,
        variant: &Variant,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        self.run_lease_traced(lease, image, variant, req, data, None)
            .await
    }

    /// [`Runtime::run_lease`] with an incoming trace context: the
    /// cold-start wait and the body execution record as child spans.
    pub async fn run_lease_traced(
        &self,
        lease: Lease,
        image: &FunctionImage,
        variant: &Variant,
        req: InvokeRequest,
        data: Rc<dyn DataPlane>,
        trace: Option<pcsi_trace::TraceContext>,
    ) -> Result<(InvokeResponse, NodeId), PcsiError> {
        let body = self.inner.registry.borrow().body(&image.name)?;
        let Lease {
            key,
            node,
            cold_start,
            demand: _,
        } = lease;
        let span_of = |name| match self.inner.tracer.borrow().as_ref() {
            Some(t) => t.child_of(trace, name),
            None => pcsi_trace::SpanHandle::disabled(),
        };
        let started = self.inner.handle.now();
        if cold_start {
            self.inner.cold_starts.incr();
            let boot = variant.backend.cold_start();
            if let Some(h) = self.inner.hists.borrow().as_ref() {
                h.cold_start_ns.record_duration(boot);
            }
            let cold_span = span_of("faas.cold_start");
            self.inner.handle.sleep(boot).await;
            cold_span.finish();
        }

        self.inner.invocations.incr();
        self.inner.in_flight.add(1);
        let in_flight = self.inner.in_flight.get().max(0) as u32;
        self.inner
            .peak_in_flight
            .set(self.inner.peak_in_flight.get().max(in_flight));

        let mut invoke_span = span_of("faas.invoke");
        invoke_span.attr("node", u64::from(node.0));

        // The isolation boundary crossing.
        self.inner
            .handle
            .sleep(variant.backend.call_overhead())
            .await;

        let ctx = FnCtx {
            body: req.body,
            inputs: req.inputs,
            outputs: req.outputs,
            data,
            handle: self.inner.handle.clone(),
            speedup: variant.speedup,
        };
        let result = body(ctx).await;
        invoke_span.finish();
        self.inner.in_flight.add(-1);

        // Return the instance to the warm pool regardless of outcome
        // (a failed invocation does not destroy the sandbox).
        self.inner
            .pools
            .borrow_mut()
            .entry(key)
            .or_default()
            .push_back(WarmInstance {
                node,
                idle_since: self.inner.handle.now(),
                demand: variant.demand,
            });

        let out = result?;
        let billed = self.inner.handle.now() - started;
        if let Some(h) = self.inner.hists.borrow().as_ref() {
            h.invoke_ns.record_duration(billed);
        }
        Ok((
            InvokeResponse {
                body: out,
                billed_ns: billed.as_nanos() as u64,
                cold_start,
            },
            node,
        ))
    }

    /// Evicts every warm instance on `node` and releases its resources —
    /// the control plane's reaction to a node crash. In-flight
    /// invocations on the node fail through their own paths; this purges
    /// the pools so routing stops sending work there.
    pub fn evict_node(&self, node: NodeId) {
        let mut pools = self.inner.pools.borrow_mut();
        for pool in pools.values_mut() {
            let mut kept = VecDeque::new();
            while let Some(w) = pool.pop_front() {
                if w.node == node {
                    self.inner.cluster.release(w.node, &w.demand);
                } else {
                    kept.push_back(w);
                }
            }
            *pool = kept;
        }
    }

    fn start_reaper(&self) {
        let inner = Rc::clone(&self.inner);
        let h = self.inner.handle.clone();
        h.clone().spawn(async move {
            loop {
                h.sleep(inner.config.reap_interval).await;
                let now = h.now();
                let mut pools = inner.pools.borrow_mut();
                for pool in pools.values_mut() {
                    let keep_alive = inner.config.keep_alive;
                    let mut kept = VecDeque::new();
                    while let Some(w) = pool.pop_front() {
                        if now.saturating_since(w.idle_since) > keep_alive {
                            inner.cluster.release(w.node, &w.demand);
                        } else {
                            kept.push_back(w);
                        }
                    }
                    *pool = kept;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::WorkModel;
    use bytes::Bytes;
    use pcsi_core::Reference;
    use pcsi_net::Topology;
    use pcsi_sim::executor::LocalBoxFuture;
    use pcsi_sim::Sim;

    /// A data plane that refuses everything (bodies in these tests only
    /// compute).
    struct NoData;

    impl DataPlane for NoData {
        fn read(&self, _: &Reference, _: u64, _: u64) -> LocalBoxFuture<Result<Bytes, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn write(&self, _: &Reference, _: u64, _: Bytes) -> LocalBoxFuture<Result<(), PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn append(&self, _: &Reference, _: Bytes) -> LocalBoxFuture<Result<u64, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn pop(&self, _: &Reference) -> LocalBoxFuture<Result<Bytes, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
        fn invoke(
            &self,
            _: &Reference,
            _: InvokeRequest,
        ) -> LocalBoxFuture<Result<InvokeResponse, PcsiError>> {
            Box::pin(async { Err(PcsiError::Fault("no data plane".into())) })
        }
    }

    fn setup(sim: &Sim) -> Runtime {
        let cluster = ClusterState::new(&Topology::uniform(2, 2));
        let rt = Runtime::new(
            sim.handle(),
            cluster,
            RuntimeConfig {
                policy: PlacementPolicy::Locality,
                keep_alive: Duration::from_secs(10),
                reap_interval: Duration::from_secs(1),
            },
        );
        rt.register_body(
            "work",
            Rc::new(|ctx: FnCtx| {
                Box::pin(async move {
                    ctx.compute(Duration::from_millis(10)).await;
                    Ok(ctx.body)
                })
            }),
        );
        rt
    }

    fn image() -> FunctionImage {
        FunctionImage::simple("work", WorkModel::fixed(Duration::from_millis(10)), 4)
    }

    fn request() -> InvokeRequest {
        InvokeRequest::with_body(&b"payload"[..])
    }

    #[test]
    fn cold_then_warm() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        let (first, second) = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = image();
                let t0 = h.now();
                let (r1, n1) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let d1 = h.now() - t0;
                let t1 = h.now();
                let (r2, n2) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let d2 = h.now() - t1;
                assert!(r1.cold_start);
                assert!(!r2.cold_start);
                assert_eq!(n1, n2, "warm reuse should stay on the same node");
                assert_eq!(&r2.body[..], b"payload");
                (d1, d2)
            }
        });
        // Cold pays the 250 ms container boot; warm is ~10 ms of work.
        assert!(first > Duration::from_millis(250), "first {first:?}");
        assert!(second < Duration::from_millis(15), "second {second:?}");
        assert_eq!(rt.cold_starts(), 1);
        assert_eq!(rt.invocations(), 2);
        assert_eq!(rt.warm_count("work", "cpu"), 1);
    }

    #[test]
    fn concurrency_scales_instances() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                let mut joins = Vec::new();
                for _ in 0..8 {
                    let rt = rt.clone();
                    let img = img.clone();
                    joins.push(h.spawn(async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                            .unwrap()
                    }));
                }
                for j in joins {
                    j.await;
                }
            }
        });
        // 8 concurrent requests, one instance each (FaaS concurrency=1).
        assert_eq!(rt.cold_starts(), 8);
        assert_eq!(rt.peak_concurrency(), 8);
        assert_eq!(rt.warm_count("work", "cpu"), 8);
    }

    #[test]
    fn keep_alive_reaping_frees_resources() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let h = sim.handle();
        sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let allocated: u32 = rt
                    .cluster()
                    .nodes()
                    .iter()
                    .map(|&n| rt.cluster().allocated(n).cpu)
                    .sum();
                assert_eq!(allocated, 4, "instance pins its cores while warm");
                // Sleep past keep-alive + reap interval.
                h.sleep(Duration::from_secs(15)).await;
                let allocated: u32 = rt
                    .cluster()
                    .nodes()
                    .iter()
                    .map(|&n| rt.cluster().allocated(n).cpu)
                    .sum();
                assert_eq!(allocated, 0, "reaper must release idle instances");
                assert_eq!(rt.warm_count("work", "cpu"), 0);
            }
        });
    }

    #[test]
    fn exhaustion_yields_overloaded() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        // 4 nodes x 32 cores, 4 cores per instance: 32 instances fit.
        let h = sim.handle();
        let errors = sim.block_on({
            let rt = rt.clone();
            let h = h.clone();
            async move {
                let img = image();
                let mut joins = Vec::new();
                for _ in 0..40 {
                    let rt = rt.clone();
                    let img = img.clone();
                    joins.push(h.spawn(async move {
                        rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                            .await
                    }));
                }
                let mut errs = 0;
                for j in joins {
                    if j.await.is_err() {
                        errs += 1;
                    }
                }
                errs
            }
        });
        assert_eq!(errors, 8);
        assert_eq!(rt.rejections(), 8);
    }

    #[test]
    fn explicit_placement_respected() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let node = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = image();
                let variant = img.variant("cpu").unwrap().clone();
                let (_, node) = rt
                    .invoke_on(&img, &variant, NodeId(3), request(), Rc::new(NoData))
                    .await
                    .unwrap();
                node
            }
        });
        assert_eq!(node, NodeId(3));
    }

    #[test]
    fn failing_body_surfaces_error_but_keeps_instance() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        rt.register_body(
            "boom",
            Rc::new(|_ctx| Box::pin(async { Err(PcsiError::FunctionFailed("kaput".into())) })),
        );
        let err = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = FunctionImage::simple("boom", WorkModel::fixed(Duration::ZERO), 1);
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap_err()
            }
        });
        assert!(matches!(err, PcsiError::FunctionFailed(_)));
        assert_eq!(rt.warm_count("boom", "cpu"), 1);
    }

    #[test]
    fn billed_time_reflects_execution() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let (cold_billed, warm_billed) = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = image();
                let (r1, _) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                let (r2, _) = rt
                    .invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap();
                (r1.billed_ns, r2.billed_ns)
            }
        });
        // Cold includes the 250 ms boot; warm is just the ~10 ms of work.
        assert!(cold_billed > 250_000_000);
        assert!(
            (9_000_000..15_000_000).contains(&warm_billed),
            "{warm_billed}"
        );
    }

    #[test]
    fn unknown_body_is_an_error() {
        let mut sim = Sim::new(1);
        let rt = setup(&sim);
        let err = sim.block_on({
            let rt = rt.clone();
            async move {
                let img = FunctionImage::simple("ghost", WorkModel::fixed(Duration::ZERO), 1);
                rt.invoke(&img, Goal::MinLatency, request(), Rc::new(NoData), None)
                    .await
                    .unwrap_err()
            }
        });
        assert!(matches!(err, PcsiError::FunctionFailed(_)));
    }
}
