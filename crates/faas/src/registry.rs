//! Host function bodies and the variant optimizer.
//!
//! §3.1: "Multiple implementations of the same function can even be
//! provided simultaneously, allowing an optimizer to choose dynamically
//! among them to meet performance and cost goals" (the INFaaS idea the
//! paper cites). [`choose_variant`] is that optimizer: given a goal, the
//! request size, warm-pool state and a price sheet, it ranks the image's
//! variants.

use fxhash::FxHashMap;
use std::time::Duration;

use pcsi_core::PcsiError;
use pcsi_net::node::Resources;

use crate::function::{FunctionBody, FunctionImage, Variant};

/// Optimization goal for variant selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Goal {
    /// Minimize expected end-to-end latency.
    MinLatency,
    /// Minimize expected dollar cost.
    MinCost,
    /// Minimize the latency × cost product.
    #[default]
    Balanced,
}

/// USD per resource-second, the optimizer's price sheet.
///
/// Defaults approximate 2021 public-cloud prices (on-demand, us-west):
/// ~$0.048/vCPU-h, ~$1.10/GPU-h, ~$2.40/TPU-h, ~$0.0065/GiB-h.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// USD per CPU-core-second.
    pub cpu_core_s: f64,
    /// USD per GPU-second.
    pub gpu_s: f64,
    /// USD per TPU-second.
    pub tpu_s: f64,
    /// USD per GiB-second of memory.
    pub mem_gib_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_core_s: 0.048 / 3600.0,
            gpu_s: 1.10 / 3600.0,
            tpu_s: 2.40 / 3600.0,
            mem_gib_s: 0.0065 / 3600.0,
        }
    }
}

impl CostModel {
    /// USD per second of holding `demand`.
    pub fn rate(&self, demand: &Resources) -> f64 {
        f64::from(demand.cpu) * self.cpu_core_s
            + f64::from(demand.gpu) * self.gpu_s
            + f64::from(demand.tpu) * self.tpu_s
            + f64::from(demand.mem_gib) * self.mem_gib_s
    }

    /// USD for holding `demand` for `d`.
    pub fn charge(&self, demand: &Resources, d: Duration) -> f64 {
        self.rate(demand) * d.as_secs_f64()
    }
}

/// Expected latency and cost of running one invocation on a variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantEstimate {
    /// Expected wall-clock latency (cold start included if no warm
    /// instance exists).
    pub latency: Duration,
    /// Expected USD.
    pub cost: f64,
}

/// Estimates one variant.
pub fn estimate(
    image: &FunctionImage,
    variant: &Variant,
    payload_len: usize,
    warm: bool,
) -> VariantEstimate {
    let exec = variant.exec_time(image.work.work(payload_len));
    let cold = if warm {
        Duration::ZERO
    } else {
        variant.backend.cold_start()
    };
    let latency = exec + cold + variant.backend.call_overhead();
    VariantEstimate {
        latency,
        cost: CostModel::default().charge(&variant.demand, exec + cold),
    }
}

/// Picks the best variant of `image` for `goal`.
///
/// `warm` reports whether a warm instance of the named variant exists
/// somewhere. Deterministic: ties break by variant name.
///
/// # Examples
///
/// ```
/// use pcsi_faas::{FunctionImage, Goal, WorkModel};
/// use pcsi_faas::function::Variant;
/// use pcsi_faas::isolation::Backend;
/// use pcsi_faas::registry::choose_variant;
/// use pcsi_net::node::Resources;
/// use std::time::Duration;
///
/// let mut image = FunctionImage::simple("f", WorkModel::fixed(Duration::from_millis(400)), 4);
/// image.variants.push(Variant {
///     name: "gpu".into(),
///     backend: Backend::MicroVm,
///     demand: Resources { cpu: 2, gpu: 1, tpu: 0, mem_gib: 16 },
///     speedup: 20.0,
/// });
/// // With everything warm, the GPU wins on latency.
/// let v = choose_variant(&image, 0, Goal::MinLatency, |_| true).unwrap();
/// assert_eq!(v.name, "gpu");
/// // And, at a 20x speedup, it even wins on cost: it holds the expensive
/// // hardware for 1/20th of the time.
/// let v = choose_variant(&image, 0, Goal::MinCost, |_| true).unwrap();
/// assert_eq!(v.name, "gpu");
/// ```
pub fn choose_variant(
    image: &FunctionImage,
    payload_len: usize,
    goal: Goal,
    warm: impl Fn(&str) -> bool,
) -> Result<&Variant, PcsiError> {
    if image.variants.is_empty() {
        return Err(PcsiError::NoViableVariant(format!(
            "function {:?} has no variants",
            image.name
        )));
    }
    let estimates: Vec<(&Variant, VariantEstimate)> = image
        .variants
        .iter()
        .map(|v| (v, estimate(image, v, payload_len, warm(&v.name))))
        .collect();

    let best = match goal {
        Goal::MinLatency => estimates.iter().min_by(|a, b| {
            (a.1.latency, ordered(a.1.cost), a.0.name.as_str()).cmp(&(
                b.1.latency,
                ordered(b.1.cost),
                b.0.name.as_str(),
            ))
        }),
        Goal::MinCost => estimates.iter().min_by(|a, b| {
            (ordered(a.1.cost), a.1.latency, a.0.name.as_str()).cmp(&(
                ordered(b.1.cost),
                b.1.latency,
                b.0.name.as_str(),
            ))
        }),
        Goal::Balanced => estimates.iter().min_by(|a, b| {
            let pa = ordered(a.1.latency.as_secs_f64() * a.1.cost);
            let pb = ordered(b.1.latency.as_secs_f64() * b.1.cost);
            (pa, a.0.name.as_str()).cmp(&(pb, b.0.name.as_str()))
        }),
    };
    Ok(best.expect("non-empty variants").0)
}

/// Total-orders a non-NaN float (estimates never produce NaN).
fn ordered(v: f64) -> u64 {
    debug_assert!(!v.is_nan());
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// The host-side body table: image name → executable closure.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    bodies: FxHashMap<String, FunctionBody>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the body for `name`.
    pub fn register(&mut self, name: &str, body: FunctionBody) {
        self.bodies.insert(name.to_owned(), body);
    }

    /// Looks a body up.
    pub fn body(&self, name: &str) -> Result<FunctionBody, PcsiError> {
        self.bodies
            .get(name)
            .cloned()
            .ok_or_else(|| PcsiError::FunctionFailed(format!("no body registered for {name:?}")))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.bodies.keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::WorkModel;
    use crate::isolation::Backend;

    fn image_with_gpu(work_ms: u64) -> FunctionImage {
        let mut image =
            FunctionImage::simple("f", WorkModel::fixed(Duration::from_millis(work_ms)), 4);
        image.variants.push(Variant {
            name: "gpu".into(),
            backend: Backend::MicroVm,
            demand: Resources {
                cpu: 2,
                gpu: 1,
                tpu: 0,
                mem_gib: 16,
            },
            speedup: 20.0,
        });
        image
    }

    #[test]
    fn cost_model_rates() {
        let m = CostModel::default();
        let cpu_only = Resources::cpu(4, 8);
        let with_gpu = Resources {
            cpu: 4,
            gpu: 1,
            tpu: 0,
            mem_gib: 8,
        };
        assert!(m.rate(&with_gpu) > m.rate(&cpu_only) * 4.0);
        let hour = m.charge(&Resources::cpu(1, 0), Duration::from_secs(3600));
        assert!((hour - 0.048).abs() < 1e-9);
    }

    #[test]
    fn latency_goal_prefers_fast_hardware_for_heavy_work() {
        let image = image_with_gpu(400);
        let v = choose_variant(&image, 0, Goal::MinLatency, |_| true).unwrap();
        assert_eq!(v.name, "gpu");
    }

    #[test]
    fn cost_goal_weighs_rate_against_speedup() {
        // At 20x speedup the GPU holds its expensive hardware so briefly
        // that it is the cheaper choice.
        let image = image_with_gpu(400);
        let v = choose_variant(&image, 0, Goal::MinCost, |_| true).unwrap();
        assert_eq!(v.name, "gpu");
        // A modest 3x speedup does not amortize the ~5x price premium:
        // the CPU variant wins on cost while the GPU still wins latency.
        let mut modest = image_with_gpu(400);
        modest.variants[1].speedup = 3.0;
        let v = choose_variant(&modest, 0, Goal::MinCost, |_| true).unwrap();
        assert_eq!(v.name, "cpu");
        let v = choose_variant(&modest, 0, Goal::MinLatency, |_| true).unwrap();
        assert_eq!(v.name, "gpu");
    }

    #[test]
    fn cold_start_flips_latency_choice_for_light_work() {
        // 2 ms of work: a warm container (2 ms) beats a cold microVM GPU
        // (125 ms boot + 0.1 ms exec).
        let image = image_with_gpu(2);
        let v = choose_variant(&image, 0, Goal::MinLatency, |name| name == "cpu").unwrap();
        assert_eq!(v.name, "cpu");
        // Warm GPU available: GPU wins again.
        let v = choose_variant(&image, 0, Goal::MinLatency, |_| true).unwrap();
        assert_eq!(v.name, "gpu");
    }

    #[test]
    fn balanced_goal_is_between() {
        let image = image_with_gpu(400);
        // Balanced on heavy work: GPU's 20x latency win outweighs its
        // ~13x cost premium, so product favours the GPU.
        let v = choose_variant(&image, 0, Goal::Balanced, |_| true).unwrap();
        assert_eq!(v.name, "gpu");
        // On trivial work the GPU saves nothing: CPU wins the product.
        let light = image_with_gpu(0);
        let v = choose_variant(&light, 0, Goal::Balanced, |_| true).unwrap();
        assert_eq!(v.name, "cpu");
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut reg = FunctionRegistry::new();
        reg.register(
            "echo",
            std::rc::Rc::new(|ctx| Box::pin(async move { Ok(ctx.body) })),
        );
        assert!(reg.body("echo").is_ok());
        assert!(matches!(
            reg.body("ghost"),
            Err(PcsiError::FunctionFailed(_))
        ));
        assert_eq!(reg.names(), vec!["echo"]);
    }

    #[test]
    fn ordered_is_monotone() {
        let xs = [-5.0, -0.0, 0.0, 1e-9, 1.0, 1e9];
        for w in xs.windows(2) {
            assert!(ordered(w[0]) <= ordered(w[1]), "{} vs {}", w[0], w[1]);
        }
    }
}
