#![warn(missing_docs)]
//! # pcsi-faas — the computation layer (§3.1)
//!
//! Functions in PCSI are "narrow and resource homogeneous" transformations
//! over state, stored as objects, with *no implicit state* across
//! invocations. This crate implements:
//!
//! * [`isolation::Backend`] — execution platforms (container, microVM,
//!   WebAssembly, unikernel) with per-call overheads calibrated to
//!   Table 1 (syscall 500 ns, hypervisor call 700 ns, Wasm call 17 ns)
//!   and realistic cold-start times,
//! * [`function::FunctionImage`] — a function with multiple
//!   implementation [`function::Variant`]s (CPU / GPU / TPU / Wasm), the
//!   "multiple implementations of the same function ... allowing an
//!   optimizer to choose dynamically among them" (§3.1),
//! * [`registry::FunctionRegistry`] — host-side function bodies plus the
//!   INFaaS-style variant optimizer ([`registry::Goal`]),
//! * [`cluster::ClusterState`] — cluster-wide resource accounting,
//! * [`scheduler`] — placement policies (naive, locality/co-location,
//!   scavenging, load-balancing) and autoscaler bookkeeping,
//! * [`runtime::Runtime`] — per-node warm pools, cold starts, scale from
//!   zero, idle reaping, pay-per-use accounting,
//! * [`autoscale`] — the predictive warm-pool autoscaler: deterministic
//!   EWMA arrival-rate estimators, backend-aware pre-warm depth, and
//!   graph-aware phantom arrivals; plus the scavenged (preemptible)
//!   capacity class in the runtime,
//! * [`graph::TaskGraph`] — ahead-of-time task graphs with the
//!   co-location grouping used by experiment E4 (§4.1).
//!
//! The kernel in `pcsi-cloud` glues these to the state layer: function
//! bodies receive a [`function::DataPlane`] capability and the explicit
//! input/output references from the invocation request — nothing else.

pub mod autoscale;
pub mod cluster;
pub mod function;
pub mod graph;
pub mod isolation;
pub mod registry;
pub mod runtime;
pub mod scheduler;

pub use autoscale::AutoscaleConfig;
pub use cluster::ClusterState;
pub use function::{DataPlane, FnCtx, FunctionImage, Variant, WorkModel};
pub use graph::TaskGraph;
pub use isolation::Backend;
pub use registry::{FunctionRegistry, Goal};
pub use runtime::Runtime;
pub use scheduler::PlacementPolicy;
