//! Execution platforms and their isolation costs.
//!
//! §3.1: "A wide and evolving range of platforms may be used to implement
//! functions (e.g., accelerators, containers, unikernels, WebAssembly)."
//! Table 1 quantifies the per-call isolation boundary costs this module
//! encodes; cold-start times follow published measurements for each
//! platform class (Firecracker ~125 ms, containers ~250 ms, Wasm ~1 ms,
//! unikernels ~30 ms).

use std::time::Duration;

/// An isolation platform a function variant runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// OS containers: syscall-grade boundary (Table 1: 500 ns).
    Container,
    /// MicroVMs: hypervisor-call boundary (Table 1: 700 ns).
    MicroVm,
    /// WebAssembly in-process sandboxes (Table 1: 17 ns).
    Wasm,
    /// Unikernels on a hypervisor (700 ns boundary, fast boot).
    Unikernel,
}

impl Backend {
    /// All backends.
    pub const ALL: [Backend; 4] = [
        Backend::Container,
        Backend::MicroVm,
        Backend::Wasm,
        Backend::Unikernel,
    ];

    /// Cost of crossing the isolation boundary once (Table 1 rows
    /// "Linux system call" / "KVM Hypervisor call" / "WebAssembly call").
    pub fn call_overhead(self) -> Duration {
        match self {
            Backend::Container => Duration::from_nanos(500),
            Backend::MicroVm | Backend::Unikernel => Duration::from_nanos(700),
            Backend::Wasm => Duration::from_nanos(17),
        }
    }

    /// Time to bring a fresh instance up (image pull amortized away;
    /// boot + runtime init).
    pub fn cold_start(self) -> Duration {
        match self {
            Backend::Container => Duration::from_millis(250),
            Backend::MicroVm => Duration::from_millis(125),
            Backend::Wasm => Duration::from_millis(1),
            Backend::Unikernel => Duration::from_millis(30),
        }
    }

    /// Warm-pool depth a predictive pre-warmer should hold for this
    /// backend at an arrival rate (per second) and per-invocation service
    /// time: the steady-state concurrency (Little's law, padded by
    /// `headroom`) plus a buffer proportional to the boot cost — the
    /// arrivals that would stall behind a cold start if the prediction
    /// undershoots. Expensive boots (containers, microVMs) justify deep
    /// pools; a Wasm sandbox boots in a millisecond, so its pool stays
    /// shallow.
    ///
    /// Pure integer/float arithmetic over the arguments — deterministic,
    /// no clock or RNG involved.
    pub fn prewarm_depth(self, rate_per_sec: f64, service: Duration, headroom: f64) -> usize {
        if rate_per_sec <= 0.0 {
            return 0;
        }
        let steady = rate_per_sec * service.as_secs_f64() * headroom;
        let boot_buffer =
            rate_per_sec * self.cold_start().as_secs_f64() * (headroom - 1.0).max(0.0);
        let depth = steady + boot_buffer;
        // Rates that predict less than a quarter of an instance round to
        // zero so idle pools drain instead of pinning one slot forever.
        if depth < 0.25 {
            0
        } else {
            depth.ceil() as usize
        }
    }

    /// Table-1-style row label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Container => "container (syscall boundary)",
            Backend::MicroVm => "microVM (hypervisor boundary)",
            Backend::Wasm => "WebAssembly sandbox",
            Backend::Unikernel => "unikernel (hypervisor boundary)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_call_overheads() {
        assert_eq!(
            Backend::Container.call_overhead(),
            Duration::from_nanos(500)
        );
        assert_eq!(Backend::MicroVm.call_overhead(), Duration::from_nanos(700));
        assert_eq!(Backend::Wasm.call_overhead(), Duration::from_nanos(17));
    }

    #[test]
    fn wasm_is_cheapest_boundary_and_fastest_boot() {
        for b in Backend::ALL {
            assert!(Backend::Wasm.call_overhead() <= b.call_overhead());
            assert!(Backend::Wasm.cold_start() <= b.cold_start());
        }
    }

    #[test]
    fn prewarm_pools_scale_with_boot_cost() {
        // Same traffic, same service time: the container pool must run
        // deeper than the Wasm pool because its boot is 250x costlier.
        let svc = Duration::from_millis(20);
        let deep = Backend::Container.prewarm_depth(100.0, svc, 1.5);
        let shallow = Backend::Wasm.prewarm_depth(100.0, svc, 1.5);
        assert!(deep > shallow, "container {deep} vs wasm {shallow}");
        assert!(shallow <= 4, "wasm pools stay shallow: {shallow}");
        // Near-zero rates pin nothing.
        assert_eq!(Backend::Container.prewarm_depth(0.0, svc, 1.5), 0);
        assert_eq!(
            Backend::Container.prewarm_depth(0.05, Duration::from_millis(1), 1.5),
            0
        );
    }

    #[test]
    fn cold_starts_dwarf_call_overheads() {
        // The asymmetry that makes warm pools worth modeling.
        for b in Backend::ALL {
            assert!(b.cold_start() > b.call_overhead() * 1000, "{b:?}");
        }
    }
}
