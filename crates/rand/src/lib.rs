//! Vendored, dependency-free subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the slice of the `rand` 0.8 API it actually uses:
//! the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a
//! [`rngs::StdRng`] implemented as xoshiro256++ (seeded via SplitMix64,
//! as `seed_from_u64` does upstream). The generator is not the upstream
//! ChaCha-based `StdRng` — sequences differ from upstream — but it is a
//! high-quality deterministic PRNG, which is all the simulation needs.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations.
///
/// The vendored generators are infallible; this exists so signatures
/// using `rand::Error` compile unchanged.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high as u128).wrapping_sub(low as u128);
                // Modulo bias is negligible for the sub-2^64 widths the
                // simulation draws from a 128-bit numerator.
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % width;
                ((low as u128).wrapping_add(r)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high as $u).wrapping_sub(low as $u);
                let r = <$u>::sample_range(rng, 0, width);
                (low as $u).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ready-made generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`, the algorithm is fixed and stable across
    /// releases, which suits a deterministic simulation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; avoid it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "range not covered: {seen:?}");
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 37];
        StdRng::seed_from_u64(9).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
