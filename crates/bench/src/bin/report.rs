//! Regenerates every table and figure of "The RESTless Cloud".
//!
//! ```text
//! cargo run --release -p pcsi-bench --bin report            # everything
//! cargo run --release -p pcsi-bench --bin report -- table1  # one artifact
//! ```
//!
//! Artifact names: `table1`, `rest-vs-nfs`, `mutability`, `pipeline`,
//! `efficiency`, `flexibility`, `consistency`, `capability`, `crossover`,
//! `ycsb`, `recovery`, `streaming`.
//!
//! Perf-snapshot modes (opt-in, not part of the default run):
//!
//! ```text
//! cargo run --release -p pcsi-bench --bin report -- bench
//!     # run the hot-path events/sec suite and write BENCH_<pr>.json
//!     # ($BENCH_PR names the pr, default "dev"; $BENCH_BASELINE points
//!     # at a prior snapshot to embed and compute the speedup ratio)
//! cargo run --release -p pcsi-bench --bin report -- bench-check <file>
//!     # validate a snapshot against the current schema; exits nonzero
//!     # on drift
//! cargo run --release -p pcsi-bench --bin report -- trend
//!     # render the perf trajectory across every BENCH_*.json here
//! cargo run --release -p pcsi-bench --bin report -- bench-check --trend
//!     # regression gate: the newest numeric-PR snapshot must not sit
//!     # more than 20% behind the best prior value of any tracked
//!     # metric; exits nonzero when it does
//! ```

use std::time::Duration;

use pcsi_bench::experiments::{
    capability, consistency, crossover, efficiency, flexibility, hotpath, mutability, pipeline,
    recovery, rest_vs_nfs, shard_scaling, stages, streaming, table1, ycsb, DEFAULT_SEED,
};
use pcsi_bench::reportfmt::{ns, Table};
use pcsi_bench::{snapshot, trend};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-check") {
        if args.get(1).map(String::as_str) == Some("--trend") {
            trend_gate();
        } else {
            bench_check(args.get(1).map(String::as_str));
        }
        return;
    }
    // The perf suite is opt-in: it burns real wall-clock by design.
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    if args.iter().any(|a| a == "bench") {
        report_bench();
        if args.len() == 1 {
            return;
        }
    }
    // Trend reads committed files rather than running experiments, so
    // like `bench` it only runs when asked for by name.
    if args.iter().any(|a| a == "trend") {
        report_trend();
        if args.len() == 1 {
            return;
        }
    }

    println!("The RESTless Cloud (HotOS '21) — reproduction report");
    println!("seed = {DEFAULT_SEED:#x}; all simulated numbers are deterministic.\n");

    if want("table1") {
        report_table1();
    }
    if want("rest-vs-nfs") {
        report_rest_vs_nfs();
    }
    if want("mutability") {
        report_mutability();
    }
    if want("pipeline") {
        report_pipeline();
    }
    if want("efficiency") {
        report_efficiency();
    }
    if want("flexibility") {
        report_flexibility();
    }
    if want("consistency") {
        report_consistency();
    }
    if want("capability") {
        report_capability();
    }
    if want("crossover") {
        report_crossover();
    }
    if want("ycsb") {
        report_ycsb();
    }
    if want("recovery") {
        report_recovery();
    }
    if want("streaming") {
        report_streaming();
    }
}

fn report_table1() {
    println!("## Table 1 — representative latency of various operations (E1)\n");
    let rows = table1::run(DEFAULT_SEED);
    let mut t = Table::new(&["operation", "paper", "ours", "source"]);
    for r in &rows {
        t.row(&[
            r.label.clone(),
            r.paper_ns.map(ns).unwrap_or_else(|| "—".into()),
            ns(r.ours_ns),
            r.source.into(),
        ]);
    }
    print!("{}", t.render());
    match table1::shape_holds(&rows) {
        Ok(()) => println!("\nshape check: PASS (orderings of Table 1 hold)\n"),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }
}

fn report_rest_vs_nfs() {
    println!("## §2.1 — 1 KB fetch: NFS vs DynamoDB-style REST (E2)\n");
    let r = rest_vs_nfs::run(DEFAULT_SEED, 500);
    let mut t = Table::new(&[
        "interface",
        "mean",
        "p50",
        "p95",
        "p99",
        "p99.9",
        "compute USD/M",
    ]);
    for i in [&r.nfs, &r.rest, &r.pcsi] {
        let q = i.latency;
        t.row(&[
            i.label.into(),
            ns(q.mean as f64),
            ns(q.p50 as f64),
            ns(q.p95 as f64),
            ns(q.p99 as f64),
            ns(q.p999 as f64),
            format!("{:.5}", i.usd_per_million),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper:   REST/NFS latency 4.3/1.5 = 2.9x, cost 0.18/0.003 = 60x");
    println!(
        "ours:    REST/NFS latency {:.1}x, compute cost {:.0}x",
        r.latency_ratio(),
        r.cost_ratio()
    );
    println!("         (absolute values differ with the substrate; ratios are the claim)\n");

    println!("### trace-derived stage breakdown of one warm 1 KB GET\n");
    let s = rest_vs_nfs::stage_breakdown(DEFAULT_SEED);
    let mut t = Table::new(&["interface", "protocol", "network", "storage", "other"]);
    for (label, b) in [
        ("NFS-like stateful protocol", &s.nfs),
        ("DynamoDB-like REST", &s.rest),
        ("PCSI-native (reference + binary)", &s.pcsi),
    ] {
        t.row(&[
            label.into(),
            ns(b.ns(stages::PROTOCOL) as f64),
            ns(b.ns(stages::NETWORK) as f64),
            ns(b.ns(stages::STORAGE) as f64),
            ns(b.ns(stages::OTHER) as f64),
        ]);
    }
    print!("{}", t.render());
    println!("\n(self time per span category over one traced request; the interfaces differ");
    println!("in protocol CPU, not in wire or media time)\n");
}

fn report_mutability() {
    println!("## Figure 1 — object mutability transitions (E3)\n");
    let (labels, m) = mutability::matrix();
    let mut t = Table::new(&["from \\ to", labels[0], labels[1], labels[2], labels[3]]);
    for (i, from) in labels.iter().enumerate() {
        let cells: Vec<String> = (0..4)
            .map(|j| if m[i][j] { "yes".into() } else { "–".into() })
            .collect();
        t.row(&[
            from.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    print!("{}", t.render());
    println!("\narrows (excluding self-loops):");
    for (a, b) in mutability::arrows() {
        println!("  {a} -> {b}");
    }
    println!();
}

fn report_pipeline() {
    println!("## Figure 2 / §4.1 — model-serving placement strategies (E4)\n");
    let reports = pipeline::run(DEFAULT_SEED, 2, 8);
    let mut t = Table::new(&["strategy", "mean", "p99", "net bytes/req"]);
    for r in &reports {
        let s = r.latency.summary();
        t.row(&[
            r.strategy.label().into(),
            ns(s.mean),
            ns(s.p99 as f64),
            format!("{}", r.network_bytes_per_req),
        ]);
    }
    print!("{}", t.render());
    match pipeline::shape_holds(&reports) {
        Ok(()) => println!("\nshape check: PASS (colocated ~ monolithic; naive >= 1.8x)\n"),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }

    println!("### upload-size sweep: the disaggregation penalty\n");
    let mut t = Table::new(&["upload", "naive", "colocated", "monolithic", "penalty"]);
    for p in pipeline::sweep(DEFAULT_SEED, 4) {
        t.row(&[
            format!("{} MiB", p.upload_bytes >> 20),
            ns(p.naive_ns),
            ns(p.colocated_ns),
            ns(p.monolithic_ns),
            format!("{:.2}x", p.penalty()),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn report_efficiency() {
    println!("## §4.2 — scavenged pay-per-use vs peak-provisioned fleet (E5)\n");
    let (s, d) = efficiency::run(DEFAULT_SEED, 200.0, Duration::from_secs(30));
    let mut t = Table::new(&[
        "mode",
        "requests",
        "p50",
        "p99",
        "p99.9",
        "SLO(300ms)",
        "cost",
        "efficiency",
        "cold starts",
    ]);
    for m in [&s, &d] {
        t.row(&[
            m.mode.label().into(),
            format!("{}", m.completed),
            ns(m.p50_ns as f64),
            ns(m.p99_ns as f64),
            ns(m.p999_ns as f64),
            format!("{:.1}%", 100.0 * m.slo_attainment),
            format!("${:.6}", m.cost_usd),
            format!("{:.0}%", 100.0 * m.efficiency),
            format!("{}", m.cold_starts),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nscavenged is {:.1}x cheaper at {:.1}x the resource efficiency; the price is the",
        d.cost_usd / s.cost_usd,
        s.efficiency / d.efficiency
    );
    println!("cold-start tail — \"good enough\" SLOs absorb it (§4.2).");
    match efficiency::shape_holds(&s, &d) {
        Ok(()) => println!("shape check: PASS\n"),
        Err(e) => println!("shape check: FAIL — {e}\n"),
    }

    println!("### burstiness sweep: when does scavenging pay?\n");
    let mut t = Table::new(&["burst rps", "cost advantage", "scavenged SLO"]);
    for p in efficiency::sweep(DEFAULT_SEED, Duration::from_secs(20)) {
        t.row(&[
            format!("{:.0}", p.burst_rps),
            format!("{:.1}x", p.cost_advantage),
            format!("{:.1}%", 100.0 * p.scavenged_slo),
        ]);
    }
    print!("{}", t.render());

    println!("\n### diurnal multi-tenant re-run: reactive vs predictive autoscaling\n");
    let (r, p) = efficiency::run_diurnal_pair(DEFAULT_SEED, Duration::from_secs(180));
    let mut t = Table::new(&[
        "policy",
        "requests",
        "cold starts",
        "cold/1k req",
        "SLO(300ms)",
        "mean CPU util",
        "prewarms",
        "steals",
    ]);
    for m in [&r, &p] {
        t.row(&[
            m.policy.label().into(),
            format!("{}", m.completed),
            format!("{}", m.cold_starts),
            format!("{:.2}", 1000.0 * m.cold_start_rate()),
            format!("{:.2}%", 100.0 * m.slo_attainment),
            format!("{:.1}%", 100.0 * m.mean_cpu_util),
            format!("{}", m.prewarms),
            format!("{}", m.rebalances),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\npredictive pre-warming cuts the diurnal cold-start rate {:.1}x at {:.2}x the",
        r.cold_start_rate() / p.cold_start_rate().max(1e-12),
        p.mean_cpu_util / r.mean_cpu_util.max(1e-12)
    );
    println!("cluster utilization, with equal-or-better SLO attainment.");
    match efficiency::diurnal_shape_holds(&r, &p) {
        Ok(()) => println!("shape check: PASS\n"),
        Err(e) => println!("shape check: FAIL — {e}\n"),
    }
}

fn report_flexibility() {
    println!("## §4.3 — flexibility: accelerator swap + variant optimizer (E6)\n");
    println!("### same pipeline, different inference variant (zero app changes)\n");
    let mut t = Table::new(&["inference variant", "pipeline mean latency"]);
    for (name, mean) in pipeline::variant_latencies(DEFAULT_SEED, 5) {
        t.row(&[name, ns(mean)]);
    }
    print!("{}", t.render());

    println!("\n### INFaaS-style optimizer choices for the NN image\n");
    let mut t = Table::new(&[
        "goal",
        "pool state",
        "chosen",
        "est latency",
        "est cost/invoke",
    ]);
    for c in flexibility::optimizer_table() {
        t.row(&[
            c.goal.into(),
            if c.warm { "warm".into() } else { "cold".into() },
            c.variant.clone(),
            ns(c.est_latency_ns),
            format!("${:.8}", c.est_cost_usd),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn report_consistency() {
    println!("## §3.3 — the two-item consistency menu (E7)\n");
    let cells = consistency::run(DEFAULT_SEED, 60);
    let mut t = Table::new(&[
        "N",
        "consistency",
        "write mean",
        "read mean",
        "stale reads",
        "read repairs",
    ]);
    for c in &cells {
        t.row(&[
            format!("{}", c.n_replicas),
            c.consistency.as_str().into(),
            ns(c.write_ns),
            ns(c.read_ns),
            format!("{:.1}%", 100.0 * c.stale_fraction),
            format!("{}", c.repaired),
        ]);
    }
    print!("{}", t.render());
    match consistency::shape_holds(&cells) {
        Ok(()) => {
            println!("\nshape check: PASS (strong: never stale, dearer; weak: cheap, stale)\n")
        }
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }
}

fn report_capability() {
    println!("## §3.2 — stateful references vs per-request auth; GC (E8)\n");
    let r = capability::run(DEFAULT_SEED, 300);
    let mut t = Table::new(&["path", "1 KB read mean", "interface tax"]);
    t.row(&["raw replicated store".into(), ns(r.raw_read_ns), "—".into()]);
    t.row(&[
        "PCSI reference (bind once)".into(),
        ns(r.pcsi_read_ns),
        ns(r.pcsi_tax_ns()),
    ]);
    t.row(&[
        "signed REST (auth every request)".into(),
        ns(r.rest_read_ns),
        ns(r.rest_tax_ns()),
    ]);
    print!("{}", t.render());
    println!(
        "\nGC: {} live objects, {} unreachable reclaimed by one mark-and-sweep.",
        r.gc_objects, r.gc_reclaimed
    );
    match capability::shape_holds(&r) {
        Ok(()) => println!("shape check: PASS\n"),
        Err(e) => println!("shape check: FAIL — {e}\n"),
    }
}

fn report_ycsb() {
    println!("## supporting — YCSB-style KV mixes on both interfaces\n");
    let cells = ycsb::run(DEFAULT_SEED, 200);
    let mut t = Table::new(&["mix", "interface", "mean", "p99"]);
    for c in &cells {
        t.row(&[
            c.mix.label().into(),
            c.interface.into(),
            ns(c.mean_ns),
            ns(c.p99_ns),
        ]);
    }
    print!("{}", t.render());
    match ycsb::shape_holds(&cells) {
        Ok(()) => println!("\nshape check: PASS (the REST tax holds on every mix)\n"),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }

    println!("### mix C over IMMUTABLE objects — the mutability-aware cache\n");
    let cell = ycsb::run_immutable(DEFAULT_SEED, 300);
    let mut t = Table::new(&[
        "read mean",
        "cache hits",
        "cache misses",
        "hit rate",
        "fabric msgs/read",
    ]);
    t.row(&[
        ns(cell.mean_ns),
        format!("{}", cell.hits),
        format!("{}", cell.misses),
        format!(
            "{:.1}%",
            100.0 * cell.hits as f64 / (cell.hits + cell.misses).max(1) as f64
        ),
        format!("{:.2}", cell.fabric_calls_per_read),
    ]);
    print!("{}", t.render());
    match ycsb::immutable_shape_holds(&cell) {
        Ok(()) => println!("\nshape check: PASS (immutable working set served node-locally)\n"),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }
}

fn report_recovery() {
    println!("## supporting — client fault recovery under message loss\n");
    let cells = recovery::run(DEFAULT_SEED, 200);
    let mut t = Table::new(&[
        "fabric",
        "write mean",
        "read mean",
        "retries",
        "failovers",
        "timeouts",
        "client errors",
    ]);
    for c in &cells {
        t.row(&[
            c.label.into(),
            ns(c.write_ns),
            ns(c.read_ns),
            format!("{}", c.retry.retries),
            format!("{}", c.retry.failovers),
            format!("{}", c.retry.timeouts),
            format!("{}", c.client_errors),
        ]);
    }
    print!("{}", t.render());
    match recovery::shape_holds(&cells) {
        Ok(()) => {
            println!("\nshape check: PASS (drops cost latency, never a client-visible error)\n")
        }
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }
}

fn report_crossover() {
    println!("## §2.1 — interface overhead vs network generation (E9)\n");
    let points = crossover::run(DEFAULT_SEED, 100);
    let mut t = Table::new(&["network", "RTT", "interface", "1 KB fetch", "x RTT"]);
    for p in &points {
        t.row(&[
            p.generation.label().into(),
            ns(p.rtt_ns),
            p.interface.into(),
            ns(p.mean_ns),
            format!("{:.1}", p.rtt_multiple()),
        ]);
    }
    print!("{}", t.render());
    match crossover::shape_holds(&points) {
        Ok(()) => println!(
            "\nshape check: PASS (REST flattens at its CPU floor; PCSI rides the hardware)\n"
        ),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }

    println!("### trace-derived stage shares of one signed-REST 1 KB GET\n");
    let bps = crossover::breakdowns(DEFAULT_SEED);
    let mut t = Table::new(&["network", "interface", "protocol", "network", "storage"]);
    for p in &bps {
        t.row(&[
            p.generation.label().into(),
            p.interface.into(),
            format!("{:.0}%", 100.0 * p.stages.share(stages::PROTOCOL)),
            format!("{:.0}%", 100.0 * p.stages.share(stages::NETWORK)),
            format!("{:.0}%", 100.0 * p.stages.share(stages::STORAGE)),
        ]);
    }
    print!("{}", t.render());
    match crossover::breakdown_shape_holds(&bps) {
        Ok(()) => println!(
            "\nshape check: PASS (protocol share: minority at 1 ms RTT, dominant at 1 us RTT)\n"
        ),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }
}

fn report_streaming() {
    println!("## E10 — streaming: PCSI push vs SSE across network generations\n");
    let r = streaming::run_all(DEFAULT_SEED);
    print_streaming(&r);
    match streaming::shape_holds(&r) {
        Ok(()) => println!(
            "\nshape check: PASS (PCSI push beats SSE per event on the fast network;\ndeltas reconstruct; PCSI TTFT <= SSE TTFT)\n"
        ),
        Err(e) => println!("\nshape check: FAIL — {e}\n"),
    }
}

fn print_streaming(r: &streaming::StreamingResult) {
    let mut t = Table::new(&[
        "network",
        "RTT",
        "PCSI/event",
        "SSE/event",
        "SSE tax",
        "PCSI x8",
        "SSE x8",
    ]);
    for p in &r.points {
        t.row(&[
            p.generation.label().into(),
            ns(p.rtt_ns),
            ns(p.pcsi_event_ns),
            ns(p.sse_event_ns),
            format!("{:.1}x", p.sse_tax()),
            ns(p.pcsi_fanout_ns),
            ns(p.sse_fanout_ns),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nmetrics-delta streaming: {:.0} B/update vs {:.0} B full snapshot ({:.1}x smaller), \
         reconstruction {}",
        r.delta.mean_delta_bytes,
        r.delta.mean_full_bytes,
        r.delta.compression(),
        if r.delta.reconstructed {
            "byte-exact"
        } else {
            "FAILED"
        }
    );
    println!(
        "token streaming ({} tokens, 1 ms/token compute, 2021 network): \
         TTFT {} (PCSI) vs {} (SSE); full stream {} vs {}",
        r.tokens.tokens,
        ns(r.tokens.pcsi_ttft_ns),
        ns(r.tokens.sse_ttft_ns),
        ns(r.tokens.pcsi_total_ns),
        ns(r.tokens.sse_total_ns),
    );
}

fn report_bench() {
    println!("## Hot-path events/sec suite (perf snapshot)\n");
    let suite = hotpath::run_suite(DEFAULT_SEED);
    let mut t = Table::new(&["experiment", "wall", "events", "events/sec"]);
    for e in &suite.experiments {
        t.row(&[
            e.name.into(),
            format!("{:.1}ms", e.wall_ms()),
            e.events.to_string(),
            format!("{:.0}", e.events_per_sec()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nheadline (driver_sweep): {:.0} events/sec; buffer pool {} hits / {} misses",
        suite.headline_events_per_sec(),
        suite.pool_hits,
        suite.pool_misses
    );

    println!(
        "\n## Shard scaling (ring {} -> {} under live load)\n",
        shard_scaling::RING_BEFORE,
        shard_scaling::RING_AFTER
    );
    let shard = shard_scaling::run(DEFAULT_SEED);
    let mut t = Table::new(&["window", "ring", "ops/sec", "p99"]);
    t.row(&[
        "before".into(),
        shard.nodes_before.to_string(),
        format!("{:.0}", shard.tput_before),
        format!("{:.0}us", shard.p99_before_us),
    ]);
    t.row(&[
        "migration".into(),
        format!("{}->{}", shard.nodes_before, shard.nodes_after),
        "-".into(),
        format!("{:.0}us", shard.p99_migration_us),
    ]);
    t.row(&[
        "after".into(),
        shard.nodes_after.to_string(),
        format!("{:.0}", shard.tput_after),
        format!("{:.0}us", shard.p99_after_us),
    ]);
    print!("{}", t.render());
    println!(
        "\nscale-out gain: {:.2}x aggregate throughput; {} objects migrated",
        shard.ratio(),
        shard.objects_moved
    );

    println!("\n## Diurnal autoscale comparison (reactive vs predictive)\n");
    let autoscale = efficiency::run_diurnal_pair(DEFAULT_SEED, Duration::from_secs(180));
    println!(
        "cold-start rate: {:.4} -> {:.4} ({:.1}x); mean CPU util {:.3} -> {:.3}; SLO {:.4} -> {:.4}",
        autoscale.0.cold_start_rate(),
        autoscale.1.cold_start_rate(),
        autoscale.0.cold_start_rate() / autoscale.1.cold_start_rate().max(1e-12),
        autoscale.0.mean_cpu_util,
        autoscale.1.mean_cpu_util,
        autoscale.0.slo_attainment,
        autoscale.1.slo_attainment,
    );

    println!("\n## Streaming: PCSI push vs SSE\n");
    let stream = streaming::run_all(DEFAULT_SEED);
    print_streaming(&stream);
    streaming::shape_holds(&stream).expect("streaming claims must hold in the snapshot run");

    let pr = std::env::var("BENCH_PR").unwrap_or_else(|_| "dev".into());
    let baseline = std::env::var("BENCH_BASELINE").ok().map(|path| {
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read BENCH_BASELINE {path}: {e}"))
    });
    let json = snapshot::render(
        &suite,
        Some(&shard),
        Some(&autoscale),
        Some(&stream),
        &pr,
        baseline.as_deref(),
    );
    snapshot::validate(&json).expect("emitted snapshot must conform to its own schema");
    let path = format!("BENCH_{pr}.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
    if let Some(ratio) = snapshot::parse(&json)
        .ok()
        .and_then(|doc| doc.get("ratio_events_per_sec").and_then(|r| r.as_num()))
    {
        println!("speedup vs baseline: {ratio:.2}x events/sec");
    }
    println!();
}

fn report_trend() {
    println!("## Perf trajectory (committed BENCH_*.json snapshots)\n");
    let rows = trend::load_dir(std::path::Path::new(".")).unwrap_or_else(|e| {
        eprintln!("trend: {e}");
        std::process::exit(2);
    });
    if rows.is_empty() {
        println!("no BENCH_*.json snapshots found\n");
        return;
    }
    print!("{}", trend::render_table(&rows));
    println!();
    match trend::check(&rows, trend::DEFAULT_TOLERANCE) {
        Ok(verdicts) => {
            for v in verdicts {
                println!("  {v}");
            }
            println!("\ntrend gate: PASS\n");
        }
        Err(regressions) => {
            for r in regressions {
                println!("  {r}");
            }
            println!("\ntrend gate: FAIL (informational here; `bench-check --trend` enforces)\n");
        }
    }
}

fn trend_gate() {
    let rows = trend::load_dir(std::path::Path::new(".")).unwrap_or_else(|e| {
        eprintln!("bench-check --trend: {e}");
        std::process::exit(2);
    });
    match trend::check(&rows, trend::DEFAULT_TOLERANCE) {
        Ok(verdicts) => {
            for v in verdicts {
                println!("bench-check --trend: {v}");
            }
            println!("bench-check --trend: PASS");
        }
        Err(regressions) => {
            for r in regressions {
                eprintln!("bench-check --trend: {r}");
            }
            std::process::exit(1);
        }
    }
}

fn bench_check(path: Option<&str>) {
    let path = path.unwrap_or_else(|| {
        eprintln!("usage: report bench-check <BENCH_*.json>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-check: cannot read {path}: {e}");
        std::process::exit(2);
    });
    match snapshot::validate(&text) {
        Ok(()) => println!("bench-check: {path} conforms to {}", snapshot::SCHEMA),
        Err(e) => {
            eprintln!("bench-check: schema drift in {path}: {e}");
            std::process::exit(1);
        }
    }
}
