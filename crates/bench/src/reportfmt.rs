//! Plain-text/markdown table rendering for the report binary.

/// Formats nanoseconds with a human unit (aligned, fixed width).
pub fn ns(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.0} ns")
    } else if v < 1e6 {
        format!("{:.1} us", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2} ms", v / 1e6)
    } else {
        format!("{:.2} s", v / 1e9)
    }
}

/// A markdown-ish table printer with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push_str(&format!(" {:<w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units() {
        assert_eq!(ns(17.0), "17 ns");
        assert_eq!(ns(50_000.0), "50.0 us");
        assert_eq!(ns(4_300_000.0), "4.30 ms");
        assert_eq!(ns(2.5e9), "2.50 s");
    }

    #[test]
    fn table_aligns() {
        let mut t = Table::new(&["op", "latency"]);
        t.row(&["read".into(), "1 ns".into()]);
        t.row(&["a-much-longer-op".into(), "2 ns".into()]);
        let r = t.render();
        assert!(r.contains("| op               | latency |"), "{r}");
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
