#![warn(missing_docs)]
//! # pcsi-bench — the experiment harness
//!
//! One module per table/figure/claim of the paper (see `DESIGN.md`'s
//! experiment index). Each experiment is a pure function of a seed that
//! runs a deterministic simulation and returns structured results; the
//! `report` binary renders them next to the paper's numbers, and the
//! criterion benches in `benches/` re-measure the same operations —
//! wall-clock for the real protocol code, virtual-time (via
//! `iter_custom`) for the simulated systems.
//!
//! | module | artifact |
//! |--------|----------|
//! | [`experiments::table1`] | Table 1 — representative operation latencies |
//! | [`experiments::rest_vs_nfs`] | §2.1 — NFS vs DynamoDB-style fetch (E2) |
//! | [`experiments::mutability`] | Figure 1 — transition matrix (E3) |
//! | [`experiments::pipeline`] | Figure 2 / §4.1 — placement strategies (E4) |
//! | [`experiments::efficiency`] | §4.2 — scavenged vs provisioned (E5) |
//! | [`experiments::flexibility`] | §4.3 — variant swap + optimizer (E6) |
//! | [`experiments::consistency`] | §3.3 — the consistency menu (E7) |
//! | [`experiments::capability`] | §3.2 — stateful refs vs per-request auth (E8) |
//! | [`experiments::crossover`] | §2.1 — overhead share as networks speed up (E9) |
//! | [`experiments::hotpath`] | hot-path events/sec suite → `BENCH_<pr>.json` |

pub mod experiments;
pub mod reportfmt;
pub mod snapshot;
pub mod trend;
