//! Per-PR performance snapshots (`BENCH_<pr>.json`).
//!
//! The report binary's `bench` artifact runs the hot-path microbench
//! suite ([`crate::experiments::hotpath`]) and writes one JSON snapshot
//! per PR so the repository carries a perf trajectory, not just a
//! current number. The schema is versioned ([`SCHEMA`]); CI's
//! `bench-smoke` job re-validates every emitted file with
//! [`validate`] and fails on drift, so a snapshot written by one PR
//! stays machine-readable for all later ones.
//!
//! The workspace has no serde (all dependencies are vendored), so this
//! module hand-rolls both directions: a small escaping writer and a
//! strict recursive-descent JSON reader sufficient for the snapshot
//! grammar.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::experiments::efficiency::DiurnalResult;
use crate::experiments::hotpath::SuiteResult;
use crate::experiments::shard_scaling::ShardScalingResult;
use crate::experiments::streaming::{self, StreamingResult};

/// Schema identifier embedded in (and required of) every snapshot.
pub const SCHEMA: &str = "pcsi-bench-snapshot/v1";

/// A parsed JSON value (the subset the snapshot grammar needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; parsed as f64 (snapshot numbers all fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) — good enough here, the
    /// snapshot grammar never depends on member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The f64 value of a number node.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value of a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Renders the suite result as a schema-conformant snapshot document.
///
/// `shard` is the horizontal-scaling experiment's outcome
/// ([`crate::experiments::shard_scaling`]); when present the snapshot
/// carries a `shard_scaling` block proving the measured scale-out gain
/// and migration-window tail inside the committed artifact itself.
///
/// `autoscale` is the diurnal reactive-vs-predictive comparison
/// ([`crate::experiments::efficiency::run_diurnal_pair`]); when present
/// the snapshot carries an `autoscale` block proving the measured
/// cold-start reduction and utilization lift inside the artifact.
///
/// `streaming` is the push-vs-SSE streaming comparison
/// ([`crate::experiments::streaming::run_all`]); when present the
/// snapshot carries a `streaming` block with the per-generation
/// per-event latencies, fan-out means, metrics-delta wire savings, and
/// token-serving TTFT — and [`validate`] additionally enforces the
/// headline claim (PCSI beats SSE per event on the fast network)
/// against the emitted numbers.
///
/// `baseline` is a previously emitted snapshot (the pre-change tree,
/// same harness); when present its headline events/sec is embedded and
/// the speedup ratio computed, which is how a PR proves its measured
/// improvement inside the committed artifact itself.
pub fn render(
    suite: &SuiteResult,
    shard: Option<&ShardScalingResult>,
    autoscale: Option<&(DiurnalResult, DiurnalResult)>,
    streaming: Option<&StreamingResult>,
    pr: &str,
    baseline: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
    let _ = writeln!(out, "  \"pr\": {},", quote(pr));
    let _ = writeln!(out, "  \"seed\": {},", suite.seed);
    out.push_str("  \"snapshot\": {\n");
    let _ = writeln!(
        out,
        "    \"events_per_sec\": {},",
        num(suite.headline_events_per_sec())
    );
    out.push_str("    \"experiments\": {\n");
    for (i, e) in suite.experiments.iter().enumerate() {
        let comma = if i + 1 == suite.experiments.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "      {}: {{\"wall_ms\": {}, \"events\": {}, \"events_per_sec\": {}}}{}",
            quote(e.name),
            num(e.wall_ms()),
            e.events,
            num(e.events_per_sec()),
            comma
        );
    }
    out.push_str("    },\n");
    out.push_str("    \"table1_ns\": {\n");
    for (i, (label, ns)) in suite.table1_ns.iter().enumerate() {
        let comma = if i + 1 == suite.table1_ns.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "      {}: {}{}", quote(label), num(*ns), comma);
    }
    out.push_str("    },\n");
    let _ = write!(
        out,
        "    \"alloc\": {{\"pool_hits\": {}, \"pool_misses\": {}}}",
        suite.pool_hits, suite.pool_misses
    );
    if let Some(s) = shard {
        out.push_str(",\n    \"shard_scaling\": {\n");
        let _ = writeln!(out, "      \"nodes_before\": {},", s.nodes_before);
        let _ = writeln!(out, "      \"nodes_after\": {},", s.nodes_after);
        let _ = writeln!(out, "      \"tput_before\": {},", num(s.tput_before));
        let _ = writeln!(out, "      \"tput_after\": {},", num(s.tput_after));
        let _ = writeln!(out, "      \"ratio\": {},", num(s.ratio()));
        let _ = writeln!(out, "      \"p99_before_us\": {},", num(s.p99_before_us));
        let _ = writeln!(
            out,
            "      \"p99_migration_us\": {},",
            num(s.p99_migration_us)
        );
        let _ = writeln!(out, "      \"p99_after_us\": {},", num(s.p99_after_us));
        let _ = writeln!(out, "      \"objects_moved\": {}", s.objects_moved);
        out.push_str("    }");
    }
    if let Some((reactive, predictive)) = autoscale {
        out.push_str(",\n    \"autoscale\": {\n");
        let _ = writeln!(
            out,
            "      \"reactive_cold_start_rate\": {:.6},",
            reactive.cold_start_rate()
        );
        let _ = writeln!(
            out,
            "      \"predictive_cold_start_rate\": {:.6},",
            predictive.cold_start_rate()
        );
        let ratio = reactive.cold_start_rate() / predictive.cold_start_rate().max(1e-12);
        let _ = writeln!(out, "      \"cold_start_ratio\": {},", num(ratio));
        let _ = writeln!(
            out,
            "      \"reactive_mean_cpu_util\": {:.6},",
            reactive.mean_cpu_util
        );
        let _ = writeln!(
            out,
            "      \"predictive_mean_cpu_util\": {:.6},",
            predictive.mean_cpu_util
        );
        let _ = writeln!(
            out,
            "      \"reactive_slo_attainment\": {:.6},",
            reactive.slo_attainment
        );
        let _ = writeln!(
            out,
            "      \"predictive_slo_attainment\": {:.6},",
            predictive.slo_attainment
        );
        let _ = writeln!(out, "      \"prewarms\": {},", predictive.prewarms);
        let _ = writeln!(out, "      \"preemptions\": {},", predictive.preemptions);
        let _ = writeln!(out, "      \"rebalances\": {}", predictive.rebalances);
        out.push_str("    }");
    }
    if let Some(st) = streaming {
        out.push_str(",\n    \"streaming\": {\n");
        let _ = writeln!(out, "      \"fan_out\": {},", streaming::FAN_OUT);
        for p in &st.points {
            let k = streaming::key(p.generation);
            let _ = writeln!(out, "      \"{k}_rtt_ns\": {},", num(p.rtt_ns));
            let _ = writeln!(
                out,
                "      \"{k}_pcsi_event_ns\": {},",
                num(p.pcsi_event_ns)
            );
            let _ = writeln!(out, "      \"{k}_sse_event_ns\": {},", num(p.sse_event_ns));
            let _ = writeln!(
                out,
                "      \"{k}_pcsi_fanout_ns\": {},",
                num(p.pcsi_fanout_ns)
            );
            let _ = writeln!(
                out,
                "      \"{k}_sse_fanout_ns\": {},",
                num(p.sse_fanout_ns)
            );
        }
        let _ = writeln!(
            out,
            "      \"metrics_delta_bytes\": {},",
            num(st.delta.mean_delta_bytes)
        );
        let _ = writeln!(
            out,
            "      \"metrics_full_bytes\": {},",
            num(st.delta.mean_full_bytes)
        );
        let _ = writeln!(
            out,
            "      \"delta_compression\": {},",
            num(st.delta.compression())
        );
        let _ = writeln!(
            out,
            "      \"ttft_pcsi_ns\": {},",
            num(st.tokens.pcsi_ttft_ns)
        );
        let _ = writeln!(
            out,
            "      \"ttft_sse_ns\": {},",
            num(st.tokens.sse_ttft_ns)
        );
        let _ = writeln!(
            out,
            "      \"total_pcsi_ns\": {},",
            num(st.tokens.pcsi_total_ns)
        );
        let _ = writeln!(
            out,
            "      \"total_sse_ns\": {}",
            num(st.tokens.sse_total_ns)
        );
        out.push_str("    }");
    }
    out.push('\n');
    out.push_str("  }");
    if let Some(base) = baseline.and_then(extract_baseline) {
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "  \"baseline\": {{\"pr\": {}, \"events_per_sec\": {}}},",
            quote(&base.0),
            num(base.1)
        );
        let ratio = if base.1 > 0.0 {
            suite.headline_events_per_sec() / base.1
        } else {
            0.0
        };
        let _ = writeln!(out, "  \"ratio_events_per_sec\": {}", num(ratio));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Pulls `(pr, headline events/sec)` out of a baseline snapshot; `None`
/// when the text is not a valid snapshot.
fn extract_baseline(text: &str) -> Option<(String, f64)> {
    let doc = parse(text).ok()?;
    let pr = doc.get("pr")?.as_str()?.to_owned();
    let eps = doc.get("snapshot")?.get("events_per_sec")?.as_num()?;
    Some((pr, eps))
}

/// Checks that `text` is a valid snapshot under the current [`SCHEMA`].
///
/// Every structural requirement is spelled out so a drifted producer
/// fails with a message naming the missing piece.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field: schema")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    doc.get("pr")
        .and_then(Json::as_str)
        .ok_or("missing string field: pr")?;
    doc.get("seed")
        .and_then(Json::as_num)
        .ok_or("missing number field: seed")?;
    let snap = doc
        .get("snapshot")
        .ok_or("missing object field: snapshot")?;
    snap.get("events_per_sec")
        .and_then(Json::as_num)
        .ok_or("missing number field: snapshot.events_per_sec")?;
    let exps = match snap.get("experiments") {
        Some(Json::Obj(m)) if !m.is_empty() => m,
        _ => return Err("snapshot.experiments must be a non-empty object".into()),
    };
    for (name, exp) in exps {
        for field in ["wall_ms", "events", "events_per_sec"] {
            exp.get(field).and_then(Json::as_num).ok_or(format!(
                "missing number field: snapshot.experiments.{name}.{field}"
            ))?;
        }
    }
    match snap.get("table1_ns") {
        Some(Json::Obj(m)) if !m.is_empty() => {
            for (label, v) in m {
                v.as_num()
                    .ok_or(format!("snapshot.table1_ns[{label:?}] must be a number"))?;
            }
        }
        _ => return Err("snapshot.table1_ns must be a non-empty object".into()),
    }
    let alloc = snap
        .get("alloc")
        .ok_or("missing object field: snapshot.alloc")?;
    for field in ["pool_hits", "pool_misses"] {
        alloc
            .get(field)
            .and_then(Json::as_num)
            .ok_or(format!("missing number field: snapshot.alloc.{field}"))?;
    }
    // The shard-scaling block is optional (older snapshots predate it),
    // but when present must carry every measured field.
    if let Some(shard) = snap.get("shard_scaling") {
        for field in [
            "nodes_before",
            "nodes_after",
            "tput_before",
            "tput_after",
            "ratio",
            "p99_before_us",
            "p99_migration_us",
            "p99_after_us",
            "objects_moved",
        ] {
            shard.get(field).and_then(Json::as_num).ok_or(format!(
                "missing number field: snapshot.shard_scaling.{field}"
            ))?;
        }
    }
    // The autoscale block is optional (older snapshots predate it), but
    // when present must carry every measured field.
    if let Some(auto) = snap.get("autoscale") {
        for field in [
            "reactive_cold_start_rate",
            "predictive_cold_start_rate",
            "cold_start_ratio",
            "reactive_mean_cpu_util",
            "predictive_mean_cpu_util",
            "reactive_slo_attainment",
            "predictive_slo_attainment",
            "prewarms",
            "preemptions",
            "rebalances",
        ] {
            auto.get(field)
                .and_then(Json::as_num)
                .ok_or(format!("missing number field: snapshot.autoscale.{field}"))?;
        }
    }
    // The streaming block is optional (older snapshots predate it), but
    // when present must carry every measured field — and must uphold
    // the headline claim: PCSI push beats SSE per-event latency on the
    // fast network generation.
    if let Some(stream) = snap.get("streaming") {
        let mut fields = vec![
            "fan_out".to_owned(),
            "metrics_delta_bytes".to_owned(),
            "metrics_full_bytes".to_owned(),
            "delta_compression".to_owned(),
            "ttft_pcsi_ns".to_owned(),
            "ttft_sse_ns".to_owned(),
            "total_pcsi_ns".to_owned(),
            "total_sse_ns".to_owned(),
        ];
        for gen in ["dc2005", "dc2021", "fast"] {
            for metric in [
                "rtt_ns",
                "pcsi_event_ns",
                "sse_event_ns",
                "pcsi_fanout_ns",
                "sse_fanout_ns",
            ] {
                fields.push(format!("{gen}_{metric}"));
            }
        }
        for field in &fields {
            stream
                .get(field)
                .and_then(Json::as_num)
                .ok_or(format!("missing number field: snapshot.streaming.{field}"))?;
        }
        let fast_pcsi = stream.get("fast_pcsi_event_ns").and_then(Json::as_num);
        let fast_sse = stream.get("fast_sse_event_ns").and_then(Json::as_num);
        if let (Some(p), Some(s)) = (fast_pcsi, fast_sse) {
            if p >= s {
                return Err(format!(
                    "streaming claim violated: fast-network PCSI per-event \
                     ({p:.0}ns) must beat SSE ({s:.0}ns)"
                ));
            }
        }
    }
    // Baseline block is optional, but when present must be well-formed.
    if let Some(base) = doc.get("baseline") {
        base.get("pr")
            .and_then(Json::as_str)
            .ok_or("baseline.pr must be a string")?;
        base.get("events_per_sec")
            .and_then(Json::as_num)
            .ok_or("baseline.events_per_sec must be a number")?;
        doc.get("ratio_events_per_sec")
            .and_then(Json::as_num)
            .ok_or("ratio_events_per_sec must accompany baseline")?;
    }
    Ok(())
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 so it round-trips through the parser (always carries
/// a decimal point or exponent, never `NaN`/`inf` which JSON forbids).
fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".into();
    }
    let s = format!("{v:.3}");
    s
}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Snapshot strings never use surrogate pairs.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
            }
            c => {
                // Re-decode multi-byte UTF-8 starting at c.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::hotpath::ExpResult;
    use std::time::Duration;

    fn suite() -> SuiteResult {
        SuiteResult {
            seed: 7,
            experiments: vec![
                ExpResult::new("timer_churn", Duration::from_millis(120), 100_000),
                ExpResult::new("driver_sweep", Duration::from_millis(800), 1_000_000),
            ],
            table1_ns: vec![("within-server function call".into(), 5_000.0)],
            pool_hits: 10,
            pool_misses: 2,
        }
    }

    fn shard() -> ShardScalingResult {
        ShardScalingResult {
            nodes_before: 3,
            nodes_after: 12,
            tput_before: 45_000.0,
            tput_after: 160_000.0,
            p99_before_us: 1_500.0,
            p99_migration_us: 4_000.0,
            p99_after_us: 400.0,
            objects_moved: 64,
        }
    }

    fn diurnal() -> (DiurnalResult, DiurnalResult) {
        use crate::experiments::efficiency::ScalePolicy;
        let base = DiurnalResult {
            policy: ScalePolicy::Reactive,
            completed: 20_000,
            cold_starts: 160,
            p99_ns: 150_000_000,
            slo_attainment: 0.994,
            mean_cpu_util: 0.18,
            prewarms: 0,
            preemptions: 0,
            rebalances: 0,
        };
        let predictive = DiurnalResult {
            policy: ScalePolicy::Predictive,
            completed: 20_000,
            cold_starts: 20,
            slo_attainment: 0.999,
            mean_cpu_util: 0.35,
            prewarms: 700,
            preemptions: 2,
            rebalances: 500,
            ..base.clone()
        };
        (base, predictive)
    }

    fn streaming_fixture() -> StreamingResult {
        use crate::experiments::streaming::{MetricsDeltaResult, StreamPoint, TokenServingResult};
        use pcsi_net::NetworkGeneration;
        let point = |generation: NetworkGeneration, pcsi: f64, sse: f64| StreamPoint {
            generation,
            rtt_ns: generation.rtt().as_nanos() as f64,
            pcsi_event_ns: pcsi,
            sse_event_ns: sse,
            pcsi_fanout_ns: pcsi * 1.4,
            sse_fanout_ns: sse * 1.4,
        };
        StreamingResult {
            points: vec![
                point(NetworkGeneration::Dc2005, 600_000.0, 1_400_000.0),
                point(NetworkGeneration::Dc2021, 130_000.0, 520_000.0),
                point(NetworkGeneration::FastEmerging, 2_000.0, 310_000.0),
            ],
            delta: MetricsDeltaResult {
                ticks: 20,
                mean_delta_bytes: 400.0,
                mean_full_bytes: 4_000.0,
                reconstructed: true,
            },
            tokens: TokenServingResult {
                tokens: 32,
                pcsi_ttft_ns: 1_200_000.0,
                sse_ttft_ns: 1_700_000.0,
                pcsi_total_ns: 33_000_000.0,
                sse_total_ns: 49_000_000.0,
            },
        }
    }

    #[test]
    fn rendered_snapshot_validates() {
        let text = render(&suite(), None, None, None, "6", None);
        validate(&text).unwrap();
    }

    #[test]
    fn streaming_block_renders_and_validates() {
        // Alone, and stacked behind the other optional blocks — every
        // comma path.
        for (shard_block, auto_block) in [
            (None, None),
            (Some(shard()), None),
            (None, Some(diurnal())),
            (Some(shard()), Some(diurnal())),
        ] {
            let text = render(
                &suite(),
                shard_block.as_ref(),
                auto_block.as_ref(),
                Some(&streaming_fixture()),
                "9",
                None,
            );
            validate(&text).unwrap();
            let doc = parse(&text).unwrap();
            let block = doc.get("snapshot").unwrap().get("streaming").unwrap();
            assert_eq!(block.get("fan_out").unwrap().as_num(), Some(8.0));
            assert_eq!(
                block.get("fast_pcsi_event_ns").unwrap().as_num(),
                Some(2_000.0)
            );
            let comp = block.get("delta_compression").unwrap().as_num().unwrap();
            assert!((comp - 10.0).abs() < 1e-3, "compression {comp}");
            // A block missing a measured field is schema drift.
            let drifted = text.replace("\"dc2021_sse_fanout_ns\"", "\"dc2021_sse_fo\"");
            assert!(validate(&drifted)
                .unwrap_err()
                .contains("streaming.dc2021_sse_fanout_ns"));
        }
    }

    #[test]
    fn streaming_claim_is_enforced_on_the_artifact() {
        // A snapshot whose fast-network numbers show SSE winning is
        // rejected even though it is structurally well-formed.
        let mut fixture = streaming_fixture();
        fixture.points[2].pcsi_event_ns = 500_000.0;
        let text = render(&suite(), None, None, Some(&fixture), "9", None);
        assert!(validate(&text).unwrap_err().contains("streaming claim"));
    }

    #[test]
    fn shard_scaling_block_renders_and_validates() {
        let text = render(&suite(), Some(&shard()), None, None, "7", None);
        validate(&text).unwrap();
        let doc = parse(&text).unwrap();
        let block = doc.get("snapshot").unwrap().get("shard_scaling").unwrap();
        assert_eq!(block.get("nodes_after").unwrap().as_num(), Some(12.0));
        let ratio = block.get("ratio").unwrap().as_num().unwrap();
        assert!((ratio - 160.0 / 45.0).abs() < 1e-3, "ratio {ratio}");
        // A block missing a measured field is schema drift.
        let drifted = text.replace("\"p99_migration_us\"", "\"p99_mig\"");
        assert!(validate(&drifted)
            .unwrap_err()
            .contains("shard_scaling.p99_migration_us"));
    }

    #[test]
    fn autoscale_block_renders_and_validates() {
        // With and without the shard block — both comma paths.
        for shard_block in [None, Some(shard())] {
            let text = render(
                &suite(),
                shard_block.as_ref(),
                Some(&diurnal()),
                None,
                "8",
                None,
            );
            validate(&text).unwrap();
            let doc = parse(&text).unwrap();
            let block = doc.get("snapshot").unwrap().get("autoscale").unwrap();
            let ratio = block.get("cold_start_ratio").unwrap().as_num().unwrap();
            assert!((ratio - 8.0).abs() < 1e-3, "ratio {ratio}");
            assert_eq!(block.get("prewarms").unwrap().as_num(), Some(700.0));
            // A block missing a measured field is schema drift.
            let drifted = text.replace("\"predictive_mean_cpu_util\"", "\"util\"");
            assert!(validate(&drifted)
                .unwrap_err()
                .contains("autoscale.predictive_mean_cpu_util"));
        }
    }

    #[test]
    fn baseline_embedding_and_ratio() {
        let base = render(&suite(), None, None, None, "base", None);
        let text = render(
            &suite(),
            Some(&shard()),
            Some(&diurnal()),
            None,
            "6",
            Some(&base),
        );
        validate(&text).unwrap();
        let doc = parse(&text).unwrap();
        assert_eq!(
            doc.get("baseline").unwrap().get("pr").unwrap().as_str(),
            Some("base")
        );
        let ratio = doc.get("ratio_events_per_sec").unwrap().as_num().unwrap();
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn schema_drift_is_rejected() {
        let text = render(&suite(), None, None, None, "6", None);
        // Wrong schema tag.
        let drifted = text.replace(SCHEMA, "pcsi-bench-snapshot/v0");
        assert!(validate(&drifted).unwrap_err().contains("schema"));
        // Dropped field.
        let drifted = text.replace("\"events_per_sec\"", "\"eps\"");
        assert!(validate(&drifted).is_err());
        // Not JSON at all.
        assert!(validate("not json").is_err());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc =
            parse(r#"{"a": [1, -2.5, 1e3], "s": "x\n\"y\" A", "b": true, "n": null}"#).unwrap();
        let arr = match doc.get("a").unwrap() {
            Json::Arr(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[2].as_num(), Some(1000.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\n\"y\" A"));
        assert_eq!(doc.get("b").unwrap(), &Json::Bool(true));
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
    }
}
