//! Perf trajectory over the committed `BENCH_*.json` snapshots.
//!
//! Each PR that touches performance commits one snapshot
//! ([`crate::snapshot`]); this module reads them *all* back and turns
//! the pile of per-PR files into a per-metric trajectory:
//!
//! * `report -- trend` renders the table — one row per snapshot, one
//!   column per tracked metric (headline events/sec, shard scale-out
//!   ratio, diurnal cold-start reduction, fast-network streaming
//!   latency, token TTFT) — so the repository's perf history is
//!   readable without opening a single JSON file;
//! * `report -- bench-check --trend` is the regression gate: the
//!   newest numeric-PR snapshot is compared against the **best prior**
//!   value of every tracked metric, and any regression beyond
//!   [`DEFAULT_TOLERANCE`] (20%) fails with a nonzero exit.
//!
//! Only snapshots whose `pr` field parses as a number participate in
//! the gate: those are the numbers of record (see README "Perf
//! snapshots"). Ad-hoc snapshots (`dev`, `ci`) still show up in the
//! table — CI runners are too noisy to gate on, but the trajectory
//! should display what was measured.
//!
//! Metrics split by provenance. **Virtual-time** metrics (shard
//! scale-out ratio, cold-start reduction, streaming latencies) come
//! out of the deterministic simulator: the same code produces the same
//! number on any machine, so a slide past tolerance can only be a real
//! code change and the gate fails hard. **Wall-clock** metrics
//! (events/sec) move with the hardware that captured the snapshot —
//! the committed history already swings ±40% across machines — so
//! they are compared and reported but never fail the gate.

use std::path::Path;

use crate::reportfmt::Table;
use crate::snapshot::{self, Json};

/// Maximum tolerated regression of the latest snapshot against the
/// best prior value of a metric, as a fraction (0.20 = 20%).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// One tracked metric: where it lives in the snapshot document and
/// which direction is an improvement.
struct Metric {
    /// Column header and the name used in regression messages.
    label: &'static str,
    /// Path below `snapshot`, e.g. `["shard_scaling", "ratio"]`.
    path: &'static [&'static str],
    /// `true` when larger values are better (throughput, ratios);
    /// `false` when smaller values are better (latencies).
    higher_is_better: bool,
    /// `true` for metrics measured in real wall-clock time, which vary
    /// with the capturing machine: reported, never gated. Virtual-time
    /// metrics are machine-independent and gate hard.
    wall_clock: bool,
}

/// The tracked metrics, in table-column order. Every entry is optional
/// per snapshot — older snapshots predate the newer blocks — and a
/// metric only gates when both the latest and some prior snapshot
/// carry it.
const METRICS: &[Metric] = &[
    Metric {
        label: "events/sec",
        path: &["events_per_sec"],
        higher_is_better: true,
        wall_clock: true,
    },
    Metric {
        label: "shard ratio",
        path: &["shard_scaling", "ratio"],
        higher_is_better: true,
        wall_clock: false,
    },
    Metric {
        label: "cold-start ratio",
        path: &["autoscale", "cold_start_ratio"],
        higher_is_better: true,
        wall_clock: false,
    },
    Metric {
        label: "fast push ns",
        path: &["streaming", "fast_pcsi_event_ns"],
        higher_is_better: false,
        wall_clock: false,
    },
    Metric {
        label: "ttft ns",
        path: &["streaming", "ttft_pcsi_ns"],
        higher_is_better: false,
        wall_clock: false,
    },
];

/// One snapshot's tracked metrics, in [`METRICS`] order (`None` where
/// the snapshot predates the metric's block).
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// The snapshot's `pr` field, verbatim.
    pub pr: String,
    /// `pr` parsed as a number, when it is one — only these rows gate.
    pub pr_num: Option<u64>,
    /// Metric values in [`METRICS`] order.
    values: Vec<Option<f64>>,
}

fn extract(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut node = doc.get("snapshot")?;
    for key in path {
        node = node.get(key)?;
    }
    node.as_num()
}

/// Parses one snapshot document into a trend row. The document must
/// validate against the current schema — a drifted snapshot is an
/// error, not a silent gap in the trajectory.
pub fn parse_row(text: &str) -> Result<TrendRow, String> {
    snapshot::validate(text)?;
    let doc = snapshot::parse(text)?;
    let pr = doc
        .get("pr")
        .and_then(Json::as_str)
        .ok_or("missing string field: pr")?
        .to_owned();
    let pr_num = pr.parse::<u64>().ok();
    let values = METRICS.iter().map(|m| extract(&doc, m.path)).collect();
    Ok(TrendRow { pr, pr_num, values })
}

/// Reads every `BENCH_*.json` in `dir` into trend rows, sorted:
/// numeric PRs ascending first, then the rest by name. Any unreadable
/// or schema-drifted file is an error naming the file.
pub fn load_dir(dir: &Path) -> Result<Vec<TrendRow>, String> {
    let mut rows = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir:?}: {e}"))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let path = dir.join(&name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {name}: {e}"))?;
        let row = parse_row(&text).map_err(|e| format!("{name}: {e}"))?;
        rows.push(row);
    }
    rows.sort_by(|a, b| match (a.pr_num, b.pr_num) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.pr.cmp(&b.pr),
    });
    Ok(rows)
}

/// Renders the trajectory table: one row per snapshot, one column per
/// tracked metric, `—` where a snapshot predates the metric.
pub fn render_table(rows: &[TrendRow]) -> String {
    let mut headers = vec!["pr"];
    headers.extend(METRICS.iter().map(|m| m.label));
    let mut t = Table::new(&headers);
    for row in rows {
        let mut cells = vec![row.pr.clone()];
        for v in &row.values {
            cells.push(match v {
                Some(v) => format!("{v:.3}"),
                None => "—".into(),
            });
        }
        t.row(&cells);
    }
    t.render()
}

/// The regression gate: compares the newest numeric-PR snapshot
/// against the best prior numeric-PR value of each tracked metric.
///
/// Returns the per-metric verdict lines on success, or the regression
/// messages when any virtual-time metric slid more than `tolerance`
/// (wall-clock metrics are reported but never fail — see the module
/// docs). Fewer than two numeric-PR snapshots means there is nothing
/// to gate yet — trivially ok.
pub fn check(rows: &[TrendRow], tolerance: f64) -> Result<Vec<String>, Vec<String>> {
    let numeric: Vec<&TrendRow> = rows.iter().filter(|r| r.pr_num.is_some()).collect();
    let Some((latest, priors)) = numeric.split_last() else {
        return Ok(vec!["no numeric-PR snapshots; nothing to gate".into()]);
    };
    if priors.is_empty() {
        return Ok(vec![format!(
            "only one numeric-PR snapshot (pr {}); nothing to gate",
            latest.pr
        )]);
    }
    let mut verdicts = Vec::new();
    let mut regressions = Vec::new();
    for (i, m) in METRICS.iter().enumerate() {
        let Some(cur) = latest.values[i] else {
            verdicts.push(format!(
                "{}: absent from pr {}, skipped",
                m.label, latest.pr
            ));
            continue;
        };
        let best = priors
            .iter()
            .filter_map(|r| r.values[i].map(|v| (v, r.pr.as_str())))
            .reduce(|a, b| {
                let a_wins = if m.higher_is_better {
                    a.0 >= b.0
                } else {
                    a.0 <= b.0
                };
                if a_wins {
                    a
                } else {
                    b
                }
            });
        let Some((best, best_pr)) = best else {
            verdicts.push(format!(
                "{}: no prior snapshot carries it, skipped",
                m.label
            ));
            continue;
        };
        if best <= 0.0 {
            verdicts.push(format!("{}: prior best is nonpositive, skipped", m.label));
            continue;
        }
        let slide = if m.higher_is_better {
            (best - cur) / best
        } else {
            (cur - best) / best
        };
        let line = format!(
            "{}: pr {} at {:.3} vs best {:.3} (pr {best_pr}) — {}{:.1}%",
            m.label,
            latest.pr,
            cur,
            best,
            if slide <= 0.0 {
                "ahead by "
            } else {
                "behind by "
            },
            slide.abs() * 100.0
        );
        if m.wall_clock {
            verdicts.push(format!("{line} (wall-clock, informational)"));
        } else if slide > tolerance {
            regressions.push(format!(
                "{line} — exceeds the {:.0}% tolerance",
                tolerance * 100.0
            ));
        } else {
            verdicts.push(line);
        }
    }
    if regressions.is_empty() {
        Ok(verdicts)
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pr: &str, eps: f64, shard_ratio: Option<f64>) -> String {
        let shard = shard_ratio
            .map(|r| {
                format!(
                    ",\n    \"shard_scaling\": {{\"nodes_before\": 3, \"nodes_after\": 12, \
                     \"tput_before\": 1.0, \"tput_after\": 2.0, \"ratio\": {r:.3}, \
                     \"p99_before_us\": 1.0, \"p99_migration_us\": 2.0, \"p99_after_us\": 0.5, \
                     \"objects_moved\": 4}}"
                )
            })
            .unwrap_or_default();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"pr\": \"{pr}\",\n  \"seed\": 7,\n  \"snapshot\": {{\n    \
             \"events_per_sec\": {eps:.3},\n    \
             \"experiments\": {{\"driver_sweep\": {{\"wall_ms\": 1.0, \"events\": 10, \
             \"events_per_sec\": {eps:.3}}}}},\n    \
             \"table1_ns\": {{\"x\": 1.0}},\n    \
             \"alloc\": {{\"pool_hits\": 1, \"pool_misses\": 0}}{shard}\n  }}\n}}\n",
            snapshot::SCHEMA
        )
    }

    #[test]
    fn rows_sort_numeric_prs_first_and_ascending() {
        let texts = [
            doc("10", 1.0, None),
            doc("ci", 1.0, None),
            doc("9", 1.0, None),
        ];
        let mut rows: Vec<TrendRow> = texts.iter().map(|t| parse_row(t).unwrap()).collect();
        rows.sort_by(|a, b| match (a.pr_num, b.pr_num) {
            (Some(x), Some(y)) => x.cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.pr.cmp(&b.pr),
        });
        let order: Vec<&str> = rows.iter().map(|r| r.pr.as_str()).collect();
        assert_eq!(order, ["9", "10", "ci"]);
    }

    #[test]
    fn gate_passes_within_tolerance_and_ignores_ad_hoc_snapshots() {
        // 10% below the best prior: within the 20% gate. The "dev" row
        // with a catastrophic number must not participate.
        let rows: Vec<TrendRow> = [
            doc("8", 1000.0, Some(3.0)),
            doc("9", 900.0, Some(3.1)),
            doc("dev", 1.0, None),
        ]
        .iter()
        .map(|t| parse_row(t).unwrap())
        .collect();
        let verdicts = check(&rows, DEFAULT_TOLERANCE).unwrap();
        assert!(
            verdicts.iter().any(|v| v.contains("events/sec")),
            "{verdicts:?}"
        );
    }

    #[test]
    fn gate_fails_on_a_virtual_time_regression_beyond_tolerance() {
        let rows: Vec<TrendRow> = [doc("8", 1000.0, Some(3.0)), doc("9", 1000.0, Some(2.0))]
            .iter()
            .map(|t| parse_row(t).unwrap())
            .collect();
        let regressions = check(&rows, DEFAULT_TOLERANCE).unwrap_err();
        assert_eq!(regressions.len(), 1);
        assert!(
            regressions[0].contains("shard ratio") && regressions[0].contains("tolerance"),
            "{regressions:?}"
        );
    }

    #[test]
    fn gate_compares_against_the_best_prior_not_the_last() {
        // PR 8 dipped; PR 9 must still be judged against PR 7's peak.
        let rows: Vec<TrendRow> = [
            doc("7", 1000.0, Some(4.0)),
            doc("8", 1000.0, Some(2.0)),
            doc("9", 1000.0, Some(3.1)),
        ]
        .iter()
        .map(|t| parse_row(t).unwrap())
        .collect();
        let regressions = check(&rows, DEFAULT_TOLERANCE).unwrap_err();
        assert!(
            regressions[0].contains("shard ratio") && regressions[0].contains("pr 7"),
            "{regressions:?}"
        );
    }

    #[test]
    fn wall_clock_metrics_report_but_never_fail() {
        // A 60% events/sec collapse — the kind a slower capture machine
        // produces — must surface in the verdict lines, not the gate.
        let rows: Vec<TrendRow> = [doc("8", 1000.0, None), doc("9", 400.0, None)]
            .iter()
            .map(|t| parse_row(t).unwrap())
            .collect();
        let verdicts = check(&rows, DEFAULT_TOLERANCE).unwrap();
        assert!(
            verdicts
                .iter()
                .any(|v| v.contains("events/sec") && v.contains("informational")),
            "{verdicts:?}"
        );
    }

    #[test]
    fn lower_is_better_metrics_gate_in_the_right_direction() {
        // A streaming latency that *rose* past tolerance must fail even
        // while throughput improves.
        let mk = |pr: &str, eps: f64, fast_ns: f64| {
            let mut row = parse_row(&doc(pr, eps, None)).unwrap();
            let idx = METRICS
                .iter()
                .position(|m| m.label == "fast push ns")
                .unwrap();
            row.values[idx] = Some(fast_ns);
            row
        };
        let rows = vec![mk("8", 1000.0, 2000.0), mk("9", 1200.0, 2600.0)];
        let regressions = check(&rows, DEFAULT_TOLERANCE).unwrap_err();
        assert!(regressions[0].contains("fast push ns"), "{regressions:?}");
        // And a drop in latency is an improvement, not a regression.
        let rows = vec![mk("8", 1000.0, 2000.0), mk("9", 1200.0, 1500.0)];
        assert!(check(&rows, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn missing_blocks_skip_rather_than_gate() {
        // The latest snapshot lacks shard scaling; the metric skips.
        let rows: Vec<TrendRow> = [doc("8", 1000.0, Some(3.0)), doc("9", 950.0, None)]
            .iter()
            .map(|t| parse_row(t).unwrap())
            .collect();
        let verdicts = check(&rows, DEFAULT_TOLERANCE).unwrap();
        assert!(
            verdicts
                .iter()
                .any(|v| v.contains("shard ratio") && v.contains("skipped")),
            "{verdicts:?}"
        );
    }

    #[test]
    fn fewer_than_two_numeric_snapshots_is_trivially_ok() {
        let rows = vec![parse_row(&doc("ci", 1.0, None)).unwrap()];
        assert!(check(&rows, DEFAULT_TOLERANCE).is_ok());
        let rows = vec![parse_row(&doc("6", 1.0, None)).unwrap()];
        assert!(check(&rows, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn table_renders_every_row_with_gaps_dashed() {
        let rows: Vec<TrendRow> = [doc("6", 1000.0, None), doc("7", 900.0, Some(3.1))]
            .iter()
            .map(|t| parse_row(t).unwrap())
            .collect();
        let table = render_table(&rows);
        assert!(table.contains("| 6 "), "{table}");
        assert!(table.contains("—"), "{table}");
        assert!(table.contains("3.100"), "{table}");
    }
}
