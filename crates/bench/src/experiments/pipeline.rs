//! E4 — Figure 2 / §4.1: placement strategies for the model-serving
//! pipeline, plus an upload-size sweep showing when disaggregation bites.

use pcsi_cloud::pipelines::{compare_strategies, ModelServing, PipelineReport, Strategy};
use pcsi_cloud::CloudBuilder;
use pcsi_net::NodeId;
use pcsi_sim::Sim;

/// Standard E4 parameters: 64 MiB weights, 32 MiB uploads.
pub const WEIGHTS: usize = 64 << 20;
/// Default upload size (bytes).
pub const UPLOAD: usize = 32 << 20;

/// Runs the headline three-strategy comparison.
pub fn run(seed: u64, warmup: u64, requests: u64) -> Vec<PipelineReport> {
    run_with_upload(seed, warmup, requests, UPLOAD)
}

/// Runs the comparison at a specific upload size.
pub fn run_with_upload(
    seed: u64,
    warmup: u64,
    requests: u64,
    upload: usize,
) -> Vec<PipelineReport> {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new().deterministic_network().build(&h);
        compare_strategies(&cloud, NodeId(0), WEIGHTS, upload, warmup, requests)
            .await
            .expect("pipeline run")
    })
}

/// One sweep point: upload size → naive/colocated mean latencies.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Upload size in bytes.
    pub upload_bytes: usize,
    /// Naive strategy mean latency (ns).
    pub naive_ns: f64,
    /// Co-located strategy mean latency (ns).
    pub colocated_ns: f64,
    /// Monolithic baseline mean latency (ns).
    pub monolithic_ns: f64,
}

impl SweepPoint {
    /// Disaggregation penalty: naive / colocated.
    pub fn penalty(&self) -> f64 {
        self.naive_ns / self.colocated_ns
    }
}

/// Sweeps intermediate-data size: the disaggregation penalty grows with
/// the bytes shuttled through remote storage.
pub fn sweep(seed: u64, requests: u64) -> Vec<SweepPoint> {
    [1usize << 20, 4 << 20, 16 << 20, 32 << 20, 64 << 20]
        .into_iter()
        .map(|upload| {
            let reports = run_with_upload(seed, 1, requests, upload);
            SweepPoint {
                upload_bytes: upload,
                naive_ns: reports[0].latency.mean(),
                colocated_ns: reports[1].latency.mean(),
                monolithic_ns: reports[2].latency.mean(),
            }
        })
        .collect()
}

/// The §4.1 shape claims, machine-checkable.
pub fn shape_holds(reports: &[PipelineReport]) -> Result<(), String> {
    assert_eq!(reports[0].strategy, Strategy::NaiveRemote);
    let naive = reports[0].latency.mean();
    let colocated = reports[1].latency.mean();
    let monolithic = reports[2].latency.mean();
    if colocated > monolithic * 1.25 {
        return Err(format!(
            "colocated ({colocated:.0}) not within 25% of monolithic ({monolithic:.0})"
        ));
    }
    if naive < colocated * 1.8 {
        return Err(format!(
            "naive ({naive:.0}) not >=1.8x colocated ({colocated:.0})"
        ));
    }
    if reports[0].network_bytes_per_req < reports[1].network_bytes_per_req * 2 {
        return Err("naive should move >=2x the network bytes".into());
    }
    Ok(())
}

// Re-exported for the report binary.
pub use pcsi_cloud::pipelines::tpu_variant;

/// E6 helper placed here to share the deployment: mean latency per
/// inference variant under co-location.
pub fn variant_latencies(seed: u64, requests: u64) -> Vec<(String, f64)> {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new().deterministic_network().build(&h);
        let mut app = ModelServing::deploy(&cloud, NodeId(0), WEIGHTS)
            .await
            .expect("deploy");
        app.add_infer_variant(tpu_variant(40.0));
        let mut out = Vec::new();
        for variant in ["cpu", "gpu", "tpu"] {
            let report = app
                .run(Strategy::Colocated, 2, requests, UPLOAD, variant)
                .await
                .expect("run");
            out.push((variant.to_owned(), report.latency.mean()));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn headline_shape_holds() {
        let reports = run(DEFAULT_SEED, 2, 5);
        shape_holds(&reports).unwrap();
    }

    #[test]
    fn penalty_grows_with_intermediate_size() {
        let points = sweep(DEFAULT_SEED, 3);
        let first = points.first().unwrap().penalty();
        let last = points.last().unwrap().penalty();
        assert!(last > first, "penalty should grow: {first:.2} -> {last:.2}");
    }

    #[test]
    fn faster_accelerators_win_under_colocation() {
        let v = variant_latencies(DEFAULT_SEED, 4);
        let get = |name: &str| v.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(get("gpu") < get("cpu"));
        assert!(get("tpu") < get("gpu"));
    }
}
