//! E7 — §3.3: the consistency menu, quantified.
//!
//! Sweeps replication factor × consistency level and measures write
//! latency, read latency, and read staleness (fraction of immediate
//! cross-node reads that observed an old version). The paper's position:
//! expose exactly these two points and hide the quorum machinery.

use bytes::Bytes;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency};
use pcsi_net::NodeId;
use pcsi_sim::metrics::Histogram;
use pcsi_sim::Sim;
use pcsi_store::{MediaTier, StoreConfig};

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Replication factor.
    pub n_replicas: usize,
    /// Consistency level.
    pub consistency: Consistency,
    /// Mean write latency (ns).
    pub write_ns: f64,
    /// Mean read latency (ns).
    pub read_ns: f64,
    /// Fraction of immediate remote reads that were stale.
    pub stale_fraction: f64,
    /// Objects pushed to lagging replicas by quorum read repair.
    pub repaired: u64,
}

/// Runs one cell with `rounds` write-then-read-everywhere iterations.
pub fn run_cell(seed: u64, n_replicas: usize, consistency: Consistency, rounds: u32) -> Cell {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        // Jittered network (still seed-deterministic): replication races
        // need timing variation to surface staleness, exactly as in a
        // real fabric.
        let cloud = CloudBuilder::new()
            .store(StoreConfig {
                n_replicas,
                tier: MediaTier::Nvme,
                anti_entropy: Some(std::time::Duration::from_millis(100)),
                ..StoreConfig::default()
            })
            .build(&h);
        let writer = cloud.kernel.client(NodeId(0), "e7");
        let obj = writer
            .create(
                CreateOptions::regular()
                    .with_consistency(consistency)
                    .with_initial(vec![0u8; 1024]),
            )
            .await
            .unwrap();

        let writes = Histogram::new();
        let reads = Histogram::new();
        let mut stale = 0u64;
        let mut total = 0u64;
        // Read from clients co-located with each replica: a local read
        // arrives in microseconds and races the cross-rack replication
        // message — the sharpest staleness probe the system offers.
        let reader_nodes = cloud.store.placement().replicas(obj.id());

        for round in 1..=rounds {
            let t0 = h.now();
            writer
                .write(&obj, 0, Bytes::from(vec![(round % 251) as u8; 1024]))
                .await
                .unwrap();
            writes.record_duration(h.now() - t0);

            for &node in reader_nodes.iter() {
                let reader = cloud.kernel.client(node, "e7");
                let t1 = h.now();
                let data = reader.read(&obj, 0, 1).await.unwrap();
                reads.record_duration(h.now() - t1);
                total += 1;
                if data[0] != (round % 251) as u8 {
                    stale += 1;
                }
            }
        }
        Cell {
            n_replicas,
            consistency,
            write_ns: writes.mean(),
            read_ns: reads.mean(),
            stale_fraction: stale as f64 / total as f64,
            repaired: cloud
                .store
                .replicas()
                .iter()
                .map(|r| r.repaired_count())
                .sum(),
        }
    })
}

/// The full sweep: N ∈ {3, 5} × both menu items.
pub fn run(seed: u64, rounds: u32) -> Vec<Cell> {
    let mut out = Vec::new();
    for n in [3usize, 5] {
        for consistency in Consistency::ALL {
            out.push(run_cell(seed, n, consistency, rounds));
        }
    }
    out
}

/// §3.3's claims, machine-checkable.
pub fn shape_holds(cells: &[Cell]) -> Result<(), String> {
    for n in [3usize, 5] {
        let lin = cells
            .iter()
            .find(|c| c.n_replicas == n && c.consistency == Consistency::Linearizable)
            .ok_or("missing cell")?;
        let ev = cells
            .iter()
            .find(|c| c.n_replicas == n && c.consistency == Consistency::Eventual)
            .ok_or("missing cell")?;
        if lin.stale_fraction != 0.0 {
            return Err(format!("linearizable must never be stale (N={n})"));
        }
        if ev.write_ns >= lin.write_ns {
            return Err(format!("eventual writes should be cheaper (N={n})"));
        }
        if ev.read_ns >= lin.read_ns {
            return Err(format!("eventual reads should be cheaper (N={n})"));
        }
        if ev.stale_fraction <= 0.0 {
            return Err(format!(
                "eventual reads should show some staleness under write pressure (N={n})"
            ));
        }
    }
    // Strong writes get more expensive as the quorum grows.
    let lin3 = cells
        .iter()
        .find(|c| c.n_replicas == 3 && c.consistency == Consistency::Linearizable)
        .unwrap();
    let lin5 = cells
        .iter()
        .find(|c| c.n_replicas == 5 && c.consistency == Consistency::Linearizable)
        .unwrap();
    // The means differ by an order statistic of jittered RTTs (2nd of 4
    // secondary acks vs 1st of 2) while rack-diverse N=5 sets also gain
    // *closer* secondaries, so the gap is well under the jitter noise
    // floor. Guard against gross inversions only.
    if lin5.write_ns < lin3.write_ns * 0.95 {
        return Err("N=5 linearizable writes should cost at least N=3's".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn menu_shape_holds() {
        let cells = run(DEFAULT_SEED, 40);
        shape_holds(&cells).unwrap();
    }
}
