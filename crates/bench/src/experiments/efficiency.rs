//! E5 — §4.2: scavenged pay-per-use vs a peak-provisioned fleet.
//!
//! "Rather than wait for a large enough server ... the provider is free
//! to scavenge underutilized resources from around the cluster for each
//! function independently. Even though this may affect performance, it
//! makes much more efficient use of expensive resources."
//!
//! Both modes serve the *same* bursty open-loop workload. The dedicated
//! fleet is sized for the peak with standard 2× headroom and paid for
//! every second; the scavenged mode scales from zero, pays cold starts at
//! burst fronts, and is billed only for held instance-time. Reported:
//! dollars, efficiency (useful-work seconds / paid seconds), p99, and
//! SLO attainment.

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_cloud::workload::{boxed, drive_open_loop, RateShape};
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::{CreateOptions, InvokeRequest};
use pcsi_core::{CloudInterface, Consistency, Mutability, ObjectKind};
use pcsi_faas::function::{FunctionImage, WorkModel};
use pcsi_faas::registry::CostModel;
use pcsi_faas::scheduler::PlacementPolicy;
use pcsi_net::node::Resources;
use pcsi_net::NodeId;
use pcsi_sim::Sim;

/// Per-invocation work and footprint of the benchmark function.
pub const WORK: Duration = Duration::from_millis(20);
/// Cores per instance.
pub const CORES: u32 = 2;

/// Provisioning mode under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// PCSI serverless: scale from zero, scavenging placement, short
    /// keep-alive.
    Scavenged,
    /// Dedicated fleet: pre-warmed for peak, never scaled down.
    Dedicated,
}

impl Mode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Scavenged => "PCSI scavenged (pay-per-use)",
            Mode::Dedicated => "dedicated fleet (peak-provisioned)",
        }
    }
}

/// Results for one mode.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// Which mode.
    pub mode: Mode,
    /// Requests completed.
    pub completed: u64,
    /// p50 latency (ns).
    pub p50_ns: u64,
    /// p99 latency (ns).
    pub p99_ns: u64,
    /// p99.9 latency (ns) — where burst-front cold starts live.
    pub p999_ns: u64,
    /// Fraction of requests within the SLO.
    pub slo_attainment: f64,
    /// Dollars paid for compute over the run.
    pub cost_usd: f64,
    /// Useful-work core-seconds / paid core-seconds.
    pub efficiency: f64,
    /// Cold starts paid.
    pub cold_starts: u64,
}

/// The workload: 10 s bursts at `burst_rps` alternating with near-idle.
fn shape(burst_rps: f64) -> RateShape {
    RateShape::OnOff {
        burst_rps,
        idle_rps: burst_rps / 50.0,
        period: Duration::from_secs(10),
    }
}

/// The SLO both modes are judged against.
pub const SLO: Duration = Duration::from_millis(300);

/// Runs one mode.
pub fn run_mode(seed: u64, mode: Mode, burst_rps: f64, run_for: Duration) -> ModeResult {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let (policy, keep_alive) = match mode {
            Mode::Scavenged => (PlacementPolicy::Scavenge, Duration::from_secs(3)),
            Mode::Dedicated => (PlacementPolicy::LoadBalance, Duration::from_secs(100_000)),
        };
        let cloud = CloudBuilder::new()
            .placement(policy)
            .keep_alive(keep_alive)
            .build(&h);
        cloud.kernel.register_body(
            "svc",
            Rc::new(|ctx| {
                Box::pin(async move {
                    ctx.compute(WORK).await;
                    Ok(Bytes::new())
                })
            }),
        );
        let client = cloud.kernel.client(NodeId(0), "svc-acct");
        let image = FunctionImage::simple("svc", WorkModel::fixed(WORK), CORES);
        let f = client
            .create(CreateOptions {
                kind: ObjectKind::Function,
                mutability: Mutability::Mutable,
                consistency: Consistency::Linearizable,
                initial: image.encode(),
            })
            .await
            .unwrap();

        // Peak sizing: concurrent demand at the burst = rps x service
        // time; 3x headroom absorbs Poisson spikes (the point of a
        // dedicated fleet is that it never boots under load).
        let peak_instances = ((burst_rps * WORK.as_secs_f64()) * 3.0).ceil().max(1.0) as usize;

        if mode == Mode::Dedicated {
            // Pre-warm the fleet: one concurrent invocation per instance.
            let mut joins = Vec::new();
            for _ in 0..peak_instances {
                let c = client.clone();
                let f = f.clone();
                joins.push(h.spawn(async move {
                    c.invoke(&f, InvokeRequest::default()).await.unwrap();
                }));
            }
            for j in joins {
                j.await;
            }
        }
        let warmup_cold = cloud.runtime.cold_starts();
        let billed_before = cloud.billing.invoice("svc-acct").compute;

        let rng = h.rng().stream("efficiency-driver");
        let t_start = h.now();
        let stats = drive_open_loop(&h, &rng, shape(burst_rps), run_for, {
            let client = client.clone();
            let f = f.clone();
            move |_| {
                let client = client.clone();
                let f = f.clone();
                boxed(async move {
                    client
                        .invoke(&f, InvokeRequest::default())
                        .await
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
            }
        })
        .await;
        let elapsed = h.now() - t_start;

        // Paid core-seconds.
        let prices = CostModel::default();
        let demand = Resources::cpu(CORES, 2 * CORES);
        let (cost, paid_core_s) = match mode {
            Mode::Scavenged => {
                // Billed per held instance-time (the meter already saw it).
                let usd = cloud.billing.invoice("svc-acct").compute - billed_before;
                (usd, usd / (prices.rate(&demand) / f64::from(CORES)))
            }
            Mode::Dedicated => {
                // The fleet is paid for wall time regardless of use.
                let core_s = f64::from(CORES) * peak_instances as f64 * elapsed.as_secs_f64();
                let usd = prices.rate(&demand) * peak_instances as f64 * elapsed.as_secs_f64();
                (usd, core_s)
            }
        };
        let useful_core_s = stats.ok.get() as f64 * WORK.as_secs_f64() * f64::from(CORES);

        ModeResult {
            mode,
            completed: stats.ok.get(),
            p50_ns: stats.latency.quantile(0.50),
            p99_ns: stats.latency.quantile(0.99),
            p999_ns: stats.latency.quantile(0.999),
            slo_attainment: stats.slo_attainment(SLO),
            cost_usd: cost,
            efficiency: (useful_core_s / paid_core_s).min(1.0),
            cold_starts: cloud.runtime.cold_starts() - warmup_cold,
        }
    })
}

/// Runs both modes on identical workloads.
pub fn run(seed: u64, burst_rps: f64, run_for: Duration) -> (ModeResult, ModeResult) {
    (
        run_mode(seed, Mode::Scavenged, burst_rps, run_for),
        run_mode(seed, Mode::Dedicated, burst_rps, run_for),
    )
}

/// One sweep point: burstiness vs the cost advantage of scavenging.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Burst rate (requests per second during the on-phase).
    pub burst_rps: f64,
    /// Dedicated-fleet cost / scavenged cost.
    pub cost_advantage: f64,
    /// Scavenged-mode SLO attainment.
    pub scavenged_slo: f64,
}

/// Sweeps burst intensity: the spikier the load, the more a fleet sized
/// for the peak wastes, and the bigger scavenging's advantage.
pub fn sweep(seed: u64, run_for: Duration) -> Vec<SweepPoint> {
    [50.0f64, 100.0, 200.0, 400.0]
        .into_iter()
        .map(|burst_rps| {
            let (s, d) = run(seed, burst_rps, run_for);
            SweepPoint {
                burst_rps,
                cost_advantage: d.cost_usd / s.cost_usd,
                scavenged_slo: s.slo_attainment,
            }
        })
        .collect()
}

/// §4.2's claims, machine-checkable.
pub fn shape_holds(scavenged: &ModeResult, dedicated: &ModeResult) -> Result<(), String> {
    if scavenged.cost_usd >= dedicated.cost_usd {
        return Err(format!(
            "scavenged (${:.6}) should cost less than dedicated (${:.6})",
            scavenged.cost_usd, dedicated.cost_usd
        ));
    }
    if scavenged.efficiency <= dedicated.efficiency {
        return Err(format!(
            "scavenged efficiency ({:.2}) should beat dedicated ({:.2})",
            scavenged.efficiency, dedicated.efficiency
        ));
    }
    if scavenged.slo_attainment < 0.9 {
        return Err(format!(
            "scavenged must still hold the SLO (got {:.1}%)",
            100.0 * scavenged.slo_attainment
        ));
    }
    // The price of efficiency: burst-front cold starts live in the far
    // tail (a 250 ms boot against a 20 ms service time).
    if scavenged.p999_ns <= dedicated.p999_ns {
        return Err("scavenged p99.9 should exceed dedicated's (cold starts)".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn scavenged_cheaper_dedicated_faster_tail() {
        let (s, d) = run(DEFAULT_SEED, 200.0, Duration::from_secs(30));
        shape_holds(&s, &d).unwrap();
        assert!(s.completed > 1000);
        assert!(d.completed > 1000);
        assert!(
            d.cold_starts <= 5,
            "dedicated fleet must (almost) never boot: {}",
            d.cold_starts
        );
        assert!(s.cold_starts > 0, "scavenged pays cold starts");
    }
}
