//! E5 — §4.2: scavenged pay-per-use vs a peak-provisioned fleet.
//!
//! "Rather than wait for a large enough server ... the provider is free
//! to scavenge underutilized resources from around the cluster for each
//! function independently. Even though this may affect performance, it
//! makes much more efficient use of expensive resources."
//!
//! Both modes serve the *same* bursty open-loop workload. The dedicated
//! fleet is sized for the peak with standard 2× headroom and paid for
//! every second; the scavenged mode scales from zero, pays cold starts at
//! burst fronts, and is billed only for held instance-time. Reported:
//! dollars, efficiency (useful-work seconds / paid seconds), p99, and
//! SLO attainment.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_cloud::workload::{boxed, drive_open_loop, RateShape, RunStats};
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::{CreateOptions, InvokeRequest};
use pcsi_core::{CloudInterface, Consistency, Mutability, ObjectKind};
use pcsi_faas::autoscale::AutoscaleConfig;
use pcsi_faas::function::{FunctionImage, Variant, WorkModel};
use pcsi_faas::registry::CostModel;
use pcsi_faas::scheduler::PlacementPolicy;
use pcsi_faas::TaskGraph;
use pcsi_net::node::Resources;
use pcsi_net::NodeId;
use pcsi_sim::Sim;

/// Per-invocation work and footprint of the benchmark function.
pub const WORK: Duration = Duration::from_millis(20);
/// Cores per instance.
pub const CORES: u32 = 2;

/// Provisioning mode under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// PCSI serverless: scale from zero, scavenging placement, short
    /// keep-alive.
    Scavenged,
    /// Dedicated fleet: pre-warmed for peak, never scaled down.
    Dedicated,
}

impl Mode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Scavenged => "PCSI scavenged (pay-per-use)",
            Mode::Dedicated => "dedicated fleet (peak-provisioned)",
        }
    }
}

/// Results for one mode.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// Which mode.
    pub mode: Mode,
    /// Requests completed.
    pub completed: u64,
    /// p50 latency (ns).
    pub p50_ns: u64,
    /// p99 latency (ns).
    pub p99_ns: u64,
    /// p99.9 latency (ns) — where burst-front cold starts live.
    pub p999_ns: u64,
    /// Fraction of requests within the SLO.
    pub slo_attainment: f64,
    /// Dollars paid for compute over the run.
    pub cost_usd: f64,
    /// Useful-work core-seconds / paid core-seconds.
    pub efficiency: f64,
    /// Cold starts paid.
    pub cold_starts: u64,
}

/// The workload: 10 s bursts at `burst_rps` alternating with near-idle.
fn shape(burst_rps: f64) -> RateShape {
    RateShape::OnOff {
        burst_rps,
        idle_rps: burst_rps / 50.0,
        period: Duration::from_secs(10),
    }
}

/// The SLO both modes are judged against.
pub const SLO: Duration = Duration::from_millis(300);

/// Runs one mode.
pub fn run_mode(seed: u64, mode: Mode, burst_rps: f64, run_for: Duration) -> ModeResult {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let (policy, keep_alive) = match mode {
            Mode::Scavenged => (PlacementPolicy::Scavenge, Duration::from_secs(3)),
            Mode::Dedicated => (PlacementPolicy::LoadBalance, Duration::from_secs(100_000)),
        };
        let cloud = CloudBuilder::new()
            .placement(policy)
            .keep_alive(keep_alive)
            .build(&h);
        cloud.kernel.register_body(
            "svc",
            Rc::new(|ctx| {
                Box::pin(async move {
                    ctx.compute(WORK).await;
                    Ok(Bytes::new())
                })
            }),
        );
        let client = cloud.kernel.client(NodeId(0), "svc-acct");
        let image = FunctionImage::simple("svc", WorkModel::fixed(WORK), CORES);
        let f = client
            .create(CreateOptions {
                kind: ObjectKind::Function,
                mutability: Mutability::Mutable,
                consistency: Consistency::Linearizable,
                initial: image.encode(),
                fifo_capacity: None,
            })
            .await
            .unwrap();

        // Peak sizing: concurrent demand at the burst = rps x service
        // time; 3x headroom absorbs Poisson spikes (the point of a
        // dedicated fleet is that it never boots under load).
        let peak_instances = ((burst_rps * WORK.as_secs_f64()) * 3.0).ceil().max(1.0) as usize;

        if mode == Mode::Dedicated {
            // Pre-warm the fleet: one concurrent invocation per instance.
            let mut joins = Vec::new();
            for _ in 0..peak_instances {
                let c = client.clone();
                let f = f.clone();
                joins.push(h.spawn(async move {
                    c.invoke(&f, InvokeRequest::default()).await.unwrap();
                }));
            }
            for j in joins {
                j.await;
            }
        }
        let warmup_cold = cloud.runtime.cold_starts();
        let billed_before = cloud.billing.invoice("svc-acct").compute;

        let rng = h.rng().stream("efficiency-driver");
        let t_start = h.now();
        let stats = drive_open_loop(&h, &rng, shape(burst_rps), run_for, {
            let client = client.clone();
            let f = f.clone();
            move |_| {
                let client = client.clone();
                let f = f.clone();
                boxed(async move {
                    client
                        .invoke(&f, InvokeRequest::default())
                        .await
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
            }
        })
        .await;
        let elapsed = h.now() - t_start;

        // Paid core-seconds.
        let prices = CostModel::default();
        let demand = Resources::cpu(CORES, 2 * CORES);
        let (cost, paid_core_s) = match mode {
            Mode::Scavenged => {
                // Billed per held instance-time (the meter already saw it).
                let usd = cloud.billing.invoice("svc-acct").compute - billed_before;
                (usd, usd / (prices.rate(&demand) / f64::from(CORES)))
            }
            Mode::Dedicated => {
                // The fleet is paid for wall time regardless of use.
                let core_s = f64::from(CORES) * peak_instances as f64 * elapsed.as_secs_f64();
                let usd = prices.rate(&demand) * peak_instances as f64 * elapsed.as_secs_f64();
                (usd, core_s)
            }
        };
        let useful_core_s = stats.ok.get() as f64 * WORK.as_secs_f64() * f64::from(CORES);

        ModeResult {
            mode,
            completed: stats.ok.get(),
            p50_ns: stats.latency.quantile(0.50),
            p99_ns: stats.latency.quantile(0.99),
            p999_ns: stats.latency.quantile(0.999),
            slo_attainment: stats.slo_attainment(SLO),
            cost_usd: cost,
            efficiency: (useful_core_s / paid_core_s).min(1.0),
            cold_starts: cloud.runtime.cold_starts() - warmup_cold,
        }
    })
}

/// Runs both modes on identical workloads.
pub fn run(seed: u64, burst_rps: f64, run_for: Duration) -> (ModeResult, ModeResult) {
    (
        run_mode(seed, Mode::Scavenged, burst_rps, run_for),
        run_mode(seed, Mode::Dedicated, burst_rps, run_for),
    )
}

/// One sweep point: burstiness vs the cost advantage of scavenging.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Burst rate (requests per second during the on-phase).
    pub burst_rps: f64,
    /// Dedicated-fleet cost / scavenged cost.
    pub cost_advantage: f64,
    /// Scavenged-mode SLO attainment.
    pub scavenged_slo: f64,
}

/// Sweeps burst intensity: the spikier the load, the more a fleet sized
/// for the peak wastes, and the bigger scavenging's advantage.
pub fn sweep(seed: u64, run_for: Duration) -> Vec<SweepPoint> {
    [50.0f64, 100.0, 200.0, 400.0]
        .into_iter()
        .map(|burst_rps| {
            let (s, d) = run(seed, burst_rps, run_for);
            SweepPoint {
                burst_rps,
                cost_advantage: d.cost_usd / s.cost_usd,
                scavenged_slo: s.slo_attainment,
            }
        })
        .collect()
}

/// §4.2's claims, machine-checkable.
pub fn shape_holds(scavenged: &ModeResult, dedicated: &ModeResult) -> Result<(), String> {
    if scavenged.cost_usd >= dedicated.cost_usd {
        return Err(format!(
            "scavenged (${:.6}) should cost less than dedicated (${:.6})",
            scavenged.cost_usd, dedicated.cost_usd
        ));
    }
    if scavenged.efficiency <= dedicated.efficiency {
        return Err(format!(
            "scavenged efficiency ({:.2}) should beat dedicated ({:.2})",
            scavenged.efficiency, dedicated.efficiency
        ));
    }
    if scavenged.slo_attainment < 0.9 {
        return Err(format!(
            "scavenged must still hold the SLO (got {:.1}%)",
            100.0 * scavenged.slo_attainment
        ));
    }
    // The price of efficiency: burst-front cold starts live in the far
    // tail (a 250 ms boot against a 20 ms service time).
    if scavenged.p999_ns <= dedicated.p999_ns {
        return Err("scavenged p99.9 should exceed dedicated's (cold starts)".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// E5b — the diurnal re-run: reactive scavenging vs the predictive
// warm-pool autoscaler.
// ---------------------------------------------------------------------

/// The SLO of the diurnal comparison. A container cold boot (250 ms)
/// on top of the 150 ms web service time pushes a request over it, so
/// attainment directly measures how many invocations paid a deep cold
/// start.
pub const DIURNAL_SLO: Duration = Duration::from_millis(300);

/// Warm-pool scaling policy under test on the diurnal workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePolicy {
    /// The seed E5 configuration: scavenging placement, 3 s keep-alive,
    /// cold boots on every burst front.
    Reactive,
    /// Scavenging plus the predictive autoscaler: EWMA-driven pre-warm,
    /// preemptible scavenged instances, work stealing, graph pre-warm.
    Predictive,
}

impl ScalePolicy {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            ScalePolicy::Reactive => "reactive scavenge (keep-alive only)",
            ScalePolicy::Predictive => "predictive autoscale (EWMA pre-warm)",
        }
    }
}

/// Results for one scaling policy over the diurnal multi-tenant run.
#[derive(Debug, Clone)]
pub struct DiurnalResult {
    /// Which policy.
    pub policy: ScalePolicy,
    /// Requests completed across all tenants.
    pub completed: u64,
    /// Cold starts paid across all tenants.
    pub cold_starts: u64,
    /// Worst per-tenant p99 (ns).
    pub p99_ns: u64,
    /// Fraction of issued requests (all tenants) inside [`DIURNAL_SLO`].
    pub slo_attainment: f64,
    /// Time-averaged [`pcsi_faas::ClusterState::mean_cpu_utilization`].
    pub mean_cpu_util: f64,
    /// Predictive boots issued by the autoscaler.
    pub prewarms: u64,
    /// Scavenged instances evicted for provisioned demand.
    pub preemptions: u64,
    /// Work-stealing moves between nodes.
    pub rebalances: u64,
}

impl DiurnalResult {
    /// Cold starts per completed request — the burst-front tax.
    pub fn cold_start_rate(&self) -> f64 {
        self.cold_starts as f64 / self.completed.max(1) as f64
    }
}

/// The three diurnal tenants: a container web tier, a microVM API tier,
/// and a two-stage wasm→container pipeline (the E4 tie-in — under the
/// predictive policy, ingest arrivals pre-warm the transform pool).
fn tenant_shapes() -> [(&'static str, RateShape); 3] {
    // Deep troughs (≈1 rps for seconds at a time against a 3 s
    // keep-alive) force real scale-to-zero nights; 60 s days give the
    // reactive policy a fresh morning cold-boot wave every day.
    [
        (
            "web",
            RateShape::Diurnal {
                base_rps: 60.0,
                amplitude_rps: 59.0,
                day: Duration::from_secs(60),
            },
        ),
        (
            "api",
            RateShape::Diurnal {
                base_rps: 40.0,
                amplitude_rps: 39.5,
                day: Duration::from_secs(60),
            },
        ),
        (
            "pipeline",
            RateShape::Diurnal {
                base_rps: 25.0,
                amplitude_rps: 24.5,
                day: Duration::from_secs(60),
            },
        ),
    ]
}

/// Runs the diurnal multi-tenant workload under one scaling policy.
///
/// Both policies share the scavenging placement and 3 s keep-alive of
/// the seed E5 run; the predictive mode adds the autoscaler (100 ms
/// scans over a 2 s window), preemption and the ingest→transform
/// pre-warm edge. Deep troughs (rate ≈ 2 rps for several seconds) let
/// the reaper drain every pool each simulated "night", so the reactive
/// policy pays a fresh wave of cold boots every "morning".
pub fn run_diurnal(seed: u64, policy: ScalePolicy, run_for: Duration) -> DiurnalResult {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let mut builder = CloudBuilder::new()
            .placement(PlacementPolicy::Scavenge)
            .keep_alive(Duration::from_secs(3));
        if policy == ScalePolicy::Predictive {
            builder = builder
                .autoscale(AutoscaleConfig {
                    interval: Duration::from_millis(100),
                    window: Duration::from_secs(2),
                    ..AutoscaleConfig::enabled()
                })
                .preemption(true);
        }
        let cloud = builder.build(&h);
        for (name, work) in [
            ("web", Duration::from_millis(150)),
            ("api", Duration::from_millis(80)),
            ("ingest", Duration::from_millis(5)),
            ("transform", Duration::from_millis(80)),
        ] {
            cloud.kernel.register_body(
                name,
                Rc::new(move |ctx| {
                    Box::pin(async move {
                        ctx.compute(work).await;
                        Ok(Bytes::new())
                    })
                }),
            );
        }
        let client = cloud.kernel.client(NodeId(0), "diurnal");
        let create = |image: FunctionImage| {
            let client = client.clone();
            async move {
                client
                    .create(CreateOptions {
                        kind: ObjectKind::Function,
                        mutability: Mutability::Mutable,
                        consistency: Consistency::Linearizable,
                        initial: image.encode(),
                        fifo_capacity: None,
                    })
                    .await
                    .unwrap()
            }
        };
        let web = create(FunctionImage {
            name: "web".into(),
            work: WorkModel::fixed(Duration::from_millis(150)),
            variants: vec![Variant::cpu(2)],
        })
        .await;
        let api = create(FunctionImage {
            name: "api".into(),
            work: WorkModel::fixed(Duration::from_millis(80)),
            variants: vec![Variant::microvm(1)],
        })
        .await;
        let ingest = create(FunctionImage {
            name: "ingest".into(),
            work: WorkModel::fixed(Duration::from_millis(5)),
            variants: vec![Variant::wasm(1)],
        })
        .await;
        let transform = create(FunctionImage {
            name: "transform".into(),
            work: WorkModel::fixed(Duration::from_millis(80)),
            variants: vec![Variant::cpu(2)],
        })
        .await;
        if policy == ScalePolicy::Predictive {
            let graph = TaskGraph::linear(&["ingest", "transform"]);
            cloud.runtime.register_prewarm_graph(&graph, |stage| {
                (stage.function == "transform").then(|| Variant::cpu(2))
            });
        }

        // The sine starts at `base_rps` (mid-morning); idle until the
        // first trough so the measured run opens on a "night" and every
        // ramp the drivers see is a genuine diurnal dawn rather than a
        // step from nothing at t=0.
        h.sleep(Duration::from_secs(45)).await;

        // Time-averaged cluster utilization, sampled every 100 ms.
        let stop = Rc::new(Cell::new(false));
        let util = Rc::new(Cell::new((0.0f64, 0u64)));
        let sampler = h.spawn({
            let stop = Rc::clone(&stop);
            let util = Rc::clone(&util);
            let cluster = cloud.runtime.cluster().clone();
            let h = h.clone();
            async move {
                while !stop.get() {
                    let (sum, n) = util.get();
                    util.set((sum + cluster.mean_cpu_utilization(), n + 1));
                    h.sleep(Duration::from_millis(100)).await;
                }
            }
        });

        let mut joins = Vec::new();
        for (tenant, shape) in tenant_shapes() {
            let h2 = h.clone();
            let client = client.clone();
            let (f, g) = match tenant {
                "web" => (web.clone(), None),
                "api" => (api.clone(), None),
                _ => (ingest.clone(), Some(transform.clone())),
            };
            joins.push(h.spawn(async move {
                let rng = h2.rng().stream_indexed(
                    "diurnal-tenant",
                    match tenant {
                        "web" => 0,
                        "api" => 1,
                        _ => 2,
                    },
                );
                drive_open_loop(&h2, &rng, shape, run_for, move |_| {
                    let client = client.clone();
                    let f = f.clone();
                    let g = g.clone();
                    boxed(async move {
                        client
                            .invoke(&f, InvokeRequest::default())
                            .await
                            .map_err(|e| e.to_string())?;
                        if let Some(g) = g {
                            client
                                .invoke(&g, InvokeRequest::default())
                                .await
                                .map_err(|e| e.to_string())?;
                        }
                        Ok(())
                    })
                })
                .await
            }));
        }
        let mut stats: Vec<Rc<RunStats>> = Vec::new();
        for j in joins {
            stats.push(j.await);
        }
        stop.set(true);
        sampler.await;

        let issued: u64 = stats.iter().map(|s| s.issued.get()).sum();
        let within: f64 = stats
            .iter()
            .map(|s| s.slo_attainment(DIURNAL_SLO) * s.issued.get() as f64)
            .sum();
        let (sum, n) = util.get();
        DiurnalResult {
            policy,
            completed: stats.iter().map(|s| s.ok.get()).sum(),
            cold_starts: cloud.runtime.cold_starts(),
            p99_ns: stats
                .iter()
                .map(|s| s.latency.quantile(0.99))
                .max()
                .unwrap_or(0),
            slo_attainment: within / issued.max(1) as f64,
            mean_cpu_util: sum / n.max(1) as f64,
            prewarms: cloud.runtime.prewarms(),
            preemptions: cloud.runtime.preemptions(),
            rebalances: cloud.runtime.rebalances(),
        }
    })
}

/// Runs both scaling policies on identical diurnal workloads.
pub fn run_diurnal_pair(seed: u64, run_for: Duration) -> (DiurnalResult, DiurnalResult) {
    (
        run_diurnal(seed, ScalePolicy::Reactive, run_for),
        run_diurnal(seed, ScalePolicy::Predictive, run_for),
    )
}

/// The autoscaler PR's acceptance criteria, machine-checkable: the
/// predictive policy must lift utilization at equal-or-better SLO
/// attainment and cut the diurnal-burst cold-start rate at least 5×.
pub fn diurnal_shape_holds(
    reactive: &DiurnalResult,
    predictive: &DiurnalResult,
) -> Result<(), String> {
    if predictive.mean_cpu_util <= reactive.mean_cpu_util {
        return Err(format!(
            "predictive mean CPU utilization ({:.3}) should exceed reactive ({:.3})",
            predictive.mean_cpu_util, reactive.mean_cpu_util
        ));
    }
    if predictive.slo_attainment + 1e-9 < reactive.slo_attainment {
        return Err(format!(
            "predictive SLO attainment ({:.4}) fell below reactive ({:.4})",
            predictive.slo_attainment, reactive.slo_attainment
        ));
    }
    let ratio = reactive.cold_start_rate() / predictive.cold_start_rate().max(1e-12);
    if ratio < 5.0 {
        return Err(format!(
            "cold-start rate should drop >= 5x (got {:.1}x: reactive {:.4}, predictive {:.4})",
            ratio,
            reactive.cold_start_rate(),
            predictive.cold_start_rate()
        ));
    }
    if predictive.prewarms == 0 {
        return Err("the predictive run never issued a pre-warm boot".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn predictive_autoscaler_beats_reactive_on_diurnal_load() {
        let (r, p) = run_diurnal_pair(DEFAULT_SEED, Duration::from_secs(180));
        diurnal_shape_holds(&r, &p).unwrap();
        assert!(r.completed > 3_000, "reactive completed {}", r.completed);
        assert!(p.completed > 3_000, "predictive completed {}", p.completed);
    }

    #[test]
    fn scavenged_cheaper_dedicated_faster_tail() {
        let (s, d) = run(DEFAULT_SEED, 200.0, Duration::from_secs(30));
        shape_holds(&s, &d).unwrap();
        assert!(s.completed > 1000);
        assert!(d.completed > 1000);
        assert!(
            d.cold_starts <= 5,
            "dedicated fleet must (almost) never boot: {}",
            d.cold_starts
        );
        assert!(s.cold_starts > 0, "scavenged pays cold starts");
    }
}
