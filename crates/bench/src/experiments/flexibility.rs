//! E6 — §4.3: flexibility. Swap the accelerator behind a function without
//! touching the application; let the optimizer pick variants per goal.
//!
//! Two parts:
//!
//! 1. the pipeline's inference stage re-run on CPU/GPU/TPU variants (see
//!    [`crate::experiments::pipeline::variant_latencies`]) — only the
//!    variant list changed, not a line of application structure;
//! 2. the INFaaS-style optimizer's choices across goals and payload
//!    sizes, with its latency/cost estimates.

use std::time::Duration;

use pcsi_faas::function::{FunctionImage, Variant, WorkModel};
use pcsi_faas::isolation::Backend;
use pcsi_faas::registry::{choose_variant, estimate, Goal};
use pcsi_net::node::Resources;

/// One optimizer decision row.
#[derive(Debug, Clone)]
pub struct Choice {
    /// Optimization goal.
    pub goal: &'static str,
    /// Whether warm instances were assumed.
    pub warm: bool,
    /// The chosen variant.
    pub variant: String,
    /// Its estimated latency (ns).
    pub est_latency_ns: f64,
    /// Its estimated cost (USD per invocation).
    pub est_cost_usd: f64,
}

/// The inference image used by the optimizer table: CPU, GPU (12×),
/// TPU (40×) and a Wasm edge variant (0.7×, near-zero cold start).
pub fn nn_image() -> FunctionImage {
    FunctionImage {
        name: "nn".into(),
        work: WorkModel::fixed(Duration::from_millis(100)),
        variants: vec![
            Variant::cpu(8),
            Variant {
                name: "gpu".into(),
                backend: Backend::MicroVm,
                demand: Resources {
                    cpu: 2,
                    gpu: 1,
                    tpu: 0,
                    mem_gib: 16,
                },
                speedup: 12.0,
            },
            Variant {
                name: "tpu".into(),
                backend: Backend::MicroVm,
                demand: Resources {
                    cpu: 2,
                    gpu: 0,
                    tpu: 1,
                    mem_gib: 16,
                },
                speedup: 40.0,
            },
            Variant {
                name: "wasm-edge".into(),
                backend: Backend::Wasm,
                demand: Resources::cpu(1, 1),
                speedup: 0.7,
            },
        ],
    }
}

/// Runs the optimizer across goals × warm/cold.
pub fn optimizer_table() -> Vec<Choice> {
    let image = nn_image();
    let mut out = Vec::new();
    for (goal, label) in [
        (Goal::MinLatency, "min-latency"),
        (Goal::MinCost, "min-cost"),
        (Goal::Balanced, "balanced"),
    ] {
        for warm in [true, false] {
            let v = choose_variant(&image, 0, goal, |_| warm).expect("variant");
            let e = estimate(&image, v, 0, warm);
            out.push(Choice {
                goal: label,
                warm,
                variant: v.name.clone(),
                est_latency_ns: e.latency.as_nanos() as f64,
                est_cost_usd: e.cost,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_latency_goal_takes_the_tpu() {
        let t = optimizer_table();
        let pick = |goal: &str, warm: bool| {
            t.iter()
                .find(|c| c.goal == goal && c.warm == warm)
                .unwrap()
                .variant
                .clone()
        };
        assert_eq!(pick("min-latency", true), "tpu");
        // Cold, the Wasm variant's ~1 ms start can beat a 125 ms microVM
        // boot for latency even though it computes slower (100/0.7 =
        // 143 ms vs 125 + 2.5 ms) — close call decided by the numbers:
        let cold_pick = pick("min-latency", false);
        assert!(
            cold_pick == "tpu" || cold_pick == "wasm-edge",
            "{cold_pick}"
        );
    }

    #[test]
    fn cost_goal_never_picks_the_gpu_over_the_tpu_here() {
        // TPU at 40x is cheaper per invocation than GPU at 12x despite
        // the higher rate; CPU/wasm compete on the other side.
        let t = optimizer_table();
        for c in t.iter().filter(|c| c.goal == "min-cost") {
            assert_ne!(c.variant, "gpu", "{c:?}");
        }
    }

    #[test]
    fn estimates_are_positive_and_ordered() {
        for c in optimizer_table() {
            assert!(c.est_latency_ns > 0.0);
            assert!(c.est_cost_usd > 0.0);
        }
    }
}
