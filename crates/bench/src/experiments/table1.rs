//! E1 — Table 1: representative latency of various operations.
//!
//! Three kinds of rows, each labeled with its provenance:
//!
//! * **simulated** — network RTTs measured by actually ping-ponging a
//!   message across the simulated fabric at each generation (validating
//!   that the model reproduces its calibration),
//! * **measured (host)** — the real wire-protocol implementations in
//!   `pcsi-proto`, timed on the machine running the experiment (expect
//!   these to be *faster* than the paper's 2021 production stacks — the
//!   ordering and growth, not the absolutes, are the claim),
//! * **modeled** — isolation-boundary costs taken from the paper/vendor
//!   documentation and used as constants by the FaaS runtime.

use std::time::Instant;

use bytes::Bytes;
use pcsi_faas::isolation::Backend;
use pcsi_net::{Fabric, LatencyModel, NetworkGeneration, NodeId, Topology, Transport};
use pcsi_proto::http::{Method, Request, Response};
use pcsi_proto::sign::{sign_request, verify_request, Credentials, Scope};
use pcsi_proto::{binary, json, Value};
use pcsi_sim::Sim;

/// One Table-1 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Operation label (matches the paper where applicable).
    pub label: String,
    /// The paper's number (ns), if it lists one.
    pub paper_ns: Option<f64>,
    /// Our number (ns).
    pub ours_ns: f64,
    /// Provenance: `simulated`, `measured (host)`, or `modeled`.
    pub source: &'static str,
}

/// Times `op` on the host, amortized over enough iterations to be stable.
pub fn measure_host(mut op: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..64 {
        op();
    }
    let mut best = f64::INFINITY;
    // Best-of-5 batches to shed scheduler noise.
    for _ in 0..5 {
        let iters = 2_000u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        let per = t0.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
        best = best.min(per);
    }
    best
}

/// Measures one cross-rack RTT on the simulated fabric at `generation`.
pub fn simulated_rtt(generation: NetworkGeneration, seed: u64) -> f64 {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let rtt = sim.block_on(async move {
        let fabric = Fabric::new(
            h.clone(),
            Topology::uniform(2, 2),
            LatencyModel::deterministic(generation),
        );
        // Raw propagation: two one-way transfers of an empty frame using
        // the RDMA transport so endpoint overheads stay negligible.
        let t0 = h.now();
        fabric
            .transfer(NodeId(0), NodeId(2), 0, Transport::Rdma)
            .await
            .unwrap();
        fabric
            .transfer(NodeId(2), NodeId(0), 0, Transport::Rdma)
            .await
            .unwrap();
        (h.now() - t0)
            .saturating_sub(4 * pcsi_net::fabric::RDMA_OVERHEAD)
            .as_nanos() as f64
    });
    rtt
}

/// Mean simulated latency (ns) of a linearizable 1 KiB read against a
/// 3-replica store, from a client that is *not* co-located with any
/// replica. `one_rtt` selects the fan-out read path (`ReadWithTag` to all
/// replicas, newest tag among the first majority wins); otherwise the
/// read pays the legacy two-phase tag-quorum-then-directed-read protocol.
/// Client caching is disabled so the number isolates protocol cost.
pub fn linearizable_read_ns(seed: u64, one_rtt: bool) -> f64 {
    use pcsi_core::{Consistency, Mutability, ObjectId};
    use pcsi_store::{MediaTier, ReplicatedStore, StoreConfig};

    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let fabric = Fabric::new(
            h.clone(),
            Topology::uniform(3, 3),
            LatencyModel::deterministic(NetworkGeneration::Dc2021),
        );
        let store = ReplicatedStore::launch(
            fabric.clone(),
            fabric.topology().node_ids(),
            StoreConfig {
                n_replicas: 3,
                tier: MediaTier::Dram,
                anti_entropy: None,
                inline_read_max: if one_rtt { 64 * 1024 } else { 0 },
                cache_bytes: 0,
                ..StoreConfig::default()
            },
        );
        let id = ObjectId::from_parts(1, 1);
        let replicas = store.placement().replicas(id);
        let outsider = fabric
            .topology()
            .node_ids()
            .into_iter()
            .find(|n| !replicas.contains(n))
            .unwrap();
        let client = store.client(outsider);
        client
            .put(
                id,
                Bytes::from(vec![0xCDu8; 1024]),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .unwrap();

        let rounds = 32u32;
        let t0 = h.now();
        for _ in 0..rounds {
            client
                .read_all(id, Consistency::Linearizable)
                .await
                .unwrap();
        }
        (h.now() - t0).as_nanos() as f64 / f64::from(rounds)
    })
}

/// A representative 1 KB payload: a KV item with a binary value, the shape
/// REST data planes marshal all day.
pub fn sample_item() -> Value {
    Value::object([
        ("table", Value::from("users")),
        ("key", Value::from("user-000042")),
        ("version", Value::from(7i64)),
        ("value", Value::Bytes(Bytes::from(vec![0xABu8; 900]))),
    ])
}

/// Runs all Table-1 rows.
pub fn run(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();

    // Network generations (simulated, calibrated to the paper).
    for (generation, paper) in [
        (NetworkGeneration::Dc2005, 1_000_000.0),
        (NetworkGeneration::Dc2021, 200_000.0),
    ] {
        rows.push(Row {
            label: generation.label().to_owned(),
            paper_ns: Some(paper),
            ours_ns: simulated_rtt(generation, seed),
            source: "simulated",
        });
    }

    // Linearizable store reads: the legacy two-phase protocol vs. the
    // one-RTT quorum read (not in the paper's table; it quantifies this
    // repository's own fast path against the same fabric model).
    rows.push(Row {
        label: "Linearizable read, two-phase (1 KiB, sim)".into(),
        paper_ns: None,
        ours_ns: linearizable_read_ns(seed, false),
        source: "simulated",
    });
    rows.push(Row {
        label: "Linearizable read, one-RTT (1 KiB, sim)".into(),
        paper_ns: None,
        ours_ns: linearizable_read_ns(seed, true),
        source: "simulated",
    });

    // Object marshaling of a ~1 KB item: JSON encode + decode (the REST
    // path does both per request).
    let item = sample_item();
    let encoded = json::encode(&item);
    let marshal = measure_host(|| {
        let text = json::encode(std::hint::black_box(&item));
        let back = json::decode(std::hint::black_box(&text)).unwrap();
        std::hint::black_box(back);
    });
    rows.push(Row {
        label: format!("Object marshaling ({} B JSON)", encoded.len()),
        paper_ns: Some(50_000.0),
        ours_ns: marshal,
        source: "measured (host)",
    });

    // The PCSI-native binary codec, for contrast (not in the paper's
    // table; it is the paper's *proposal*).
    let bin = measure_host(|| {
        let wire = binary::encode(std::hint::black_box(&item));
        let back = binary::decode(std::hint::black_box(&wire)).unwrap();
        std::hint::black_box(back);
    });
    rows.push(Row {
        label: "Object marshaling (PCSI binary codec)".into(),
        paper_ns: None,
        ours_ns: bin,
        source: "measured (host)",
    });

    // HTTP protocol: frame + parse a request and a response.
    let body = Bytes::from(json::encode(&item).into_bytes());
    let http = measure_host(|| {
        let req = Request::new(Method::Put, "/kv/users/user-000042")
            .with_header("host", "api.pcsi.cloud")
            .with_body(body.clone());
        let wire = req.encode();
        let parsed = Request::decode(std::hint::black_box(&wire)).unwrap();
        let resp = Response::new(200).with_body(&b"{\"ok\":true}"[..]);
        let rwire = resp.encode();
        let rparsed = Response::decode(std::hint::black_box(&rwire)).unwrap();
        std::hint::black_box((parsed, rparsed));
    });
    rows.push(Row {
        label: "HTTP protocol (frame + parse, req + resp)".into(),
        paper_ns: Some(50_000.0),
        ours_ns: http,
        source: "measured (host)",
    });

    // Request signature: sign + verify (the stateless auth tax).
    let creds = Credentials::new("AK", b"secret".to_vec());
    let scope = Scope::new("w", "kv");
    let auth = measure_host(|| {
        let mut req = Request::new(Method::Get, "/kv/users/user-000042")
            .with_header("host", "api.pcsi.cloud");
        sign_request(&mut req, &creds, &scope, 1_700_000_000);
        verify_request(
            std::hint::black_box(&req),
            |_| Some(creds.clone()),
            &scope,
            1_700_000_000,
            300,
        )
        .unwrap();
    });
    rows.push(Row {
        label: "Request signing + verification (HMAC-SHA256)".into(),
        paper_ns: None,
        ours_ns: auth,
        source: "measured (host)",
    });

    // Socket overhead: the per-endpoint constant charged by the fabric.
    rows.push(Row {
        label: "Socket overhead".into(),
        paper_ns: Some(5_000.0),
        ours_ns: pcsi_net::fabric::SOCKET_OVERHEAD.as_nanos() as f64,
        source: "modeled",
    });

    rows.push(Row {
        label: NetworkGeneration::FastEmerging.label().to_owned(),
        paper_ns: Some(1_000.0),
        ours_ns: simulated_rtt(NetworkGeneration::FastEmerging, seed),
        source: "simulated",
    });

    // Isolation boundaries (the runtime's per-call constants).
    for (backend, label, paper) in [
        (Backend::MicroVm, "KVM Hypervisor call", 700.0),
        (Backend::Container, "Linux System call", 500.0),
        (Backend::Wasm, "WebAssembly call - V8 Engine", 17.0),
    ] {
        rows.push(Row {
            label: label.into(),
            paper_ns: Some(paper),
            ours_ns: backend.call_overhead().as_nanos() as f64,
            source: "modeled",
        });
    }

    // A real syscall on the host, as a sanity anchor for the 500 ns row.
    let syscall = measure_host(|| {
        std::thread::yield_now(); // sched_yield(2).
    });
    rows.push(Row {
        label: "sched_yield(2) on this machine".into(),
        paper_ns: None,
        ours_ns: syscall,
        source: "measured (host)",
    });

    rows
}

/// The ordering invariants Table 1 exists to convey; asserted by tests
/// and the report.
pub fn shape_holds(rows: &[Row]) -> Result<(), String> {
    let get = |label: &str| -> f64 {
        rows.iter()
            .find(|r| r.label.contains(label))
            .map(|r| r.ours_ns)
            .unwrap_or(f64::NAN)
    };
    let checks: Vec<(&str, bool)> = vec![
        (
            "2005 RTT > 2021 RTT > fast RTT",
            get("2005") > get("2021") && get("2021") > get("Emerging"),
        ),
        (
            "fast network RTT < socket overhead",
            get("Emerging") < get("Socket"),
        ),
        (
            "JSON marshal > binary codec",
            get("JSON") > get("binary codec"),
        ),
        (
            "one-RTT linearizable read beats two-phase",
            get("one-RTT") < get("two-phase"),
        ),
        (
            "hypervisor > syscall > wasm",
            get("Hypervisor") > get("System call") && get("System call") > get("WebAssembly"),
        ),
        (
            "2021 RTT >> wasm call",
            get("2021") > 1000.0 * get("WebAssembly"),
        ),
    ];
    for (name, ok) in checks {
        if !ok {
            return Err(format!("shape violated: {name}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn rtts_match_calibration_exactly() {
        assert_eq!(simulated_rtt(NetworkGeneration::Dc2005, 1), 1_000_000.0);
        assert_eq!(simulated_rtt(NetworkGeneration::Dc2021, 1), 200_000.0);
        assert_eq!(simulated_rtt(NetworkGeneration::FastEmerging, 1), 1_000.0);
    }

    #[test]
    fn table_shape_holds() {
        let rows = run(DEFAULT_SEED);
        assert!(rows.len() >= 10);
        shape_holds(&rows).unwrap();
    }

    #[test]
    fn sample_item_is_about_1kb() {
        let len = json::encode(&sample_item()).len();
        assert!((900..1600).contains(&len), "{len}");
    }

    #[test]
    fn measure_host_is_sane() {
        let x = measure_host(|| {
            std::hint::black_box(1 + 1);
        });
        assert!(x < 1_000.0, "trivial op measured at {x} ns");
    }
}
