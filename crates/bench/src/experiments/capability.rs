//! E8 — §3.2: stateful references vs stateless per-request authentication,
//! and reachability garbage collection.
//!
//! "In clear contrast to web services, references make the PCSI API
//! stateful. One benefit is that object access possibilities are known
//! and constrained ... Another benefit is automated resource reclamation
//! for unreachable objects."
//!
//! Measured: the per-operation *interface tax* — everything a 1 KB read
//! costs beyond the raw storage fetch — for the PCSI capability path vs
//! the signed-REST path; plus a GC run over a realistic object graph.

use std::collections::HashMap;

use pcsi_cloud::rest::RestGateway;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency, Rights};
use pcsi_net::NodeId;
use pcsi_proto::sign::Credentials;
use pcsi_sim::metrics::Histogram;
use pcsi_sim::Sim;

/// E8 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// Raw replicated-store 1 KB read (ns) — the floor.
    pub raw_read_ns: f64,
    /// PCSI read through a bound reference (ns).
    pub pcsi_read_ns: f64,
    /// Signed-REST read (ns).
    pub rest_read_ns: f64,
    /// Objects created in the GC scenario.
    pub gc_objects: usize,
    /// Objects reclaimed by the reachability GC.
    pub gc_reclaimed: usize,
}

impl Results {
    /// PCSI interface tax over the raw store read (ns).
    pub fn pcsi_tax_ns(&self) -> f64 {
        (self.pcsi_read_ns - self.raw_read_ns).max(0.0)
    }

    /// REST interface tax over the raw store read (ns).
    pub fn rest_tax_ns(&self) -> f64 {
        (self.rest_read_ns - self.raw_read_ns).max(0.0)
    }
}

/// Runs the measurement with `ops` reads per interface.
pub fn run(seed: u64, ops: u32) -> Results {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new().deterministic_network().build(&h);
        let payload = vec![0xC4u8; 1024];
        let client_node = NodeId(0);

        // PCSI: bind once (create returns the capability), then read.
        let kc = cloud.kernel.client(client_node, "e8");
        let obj = kc
            .create(
                CreateOptions::regular()
                    .with_consistency(Consistency::Eventual)
                    .with_initial(payload.clone()),
            )
            .await
            .unwrap();
        let read_ref = obj.attenuate(Rights::READ).unwrap();
        let pcsi = Histogram::new();
        for _ in 0..ops {
            let t0 = h.now();
            kc.read(&read_ref, 0, 1024).await.unwrap();
            pcsi.record_duration(h.now() - t0);
        }

        // Raw store read of the *same object* (identical replica
        // placement), bypassing the interface entirely — the floor the
        // interface taxes are measured against.
        let store_client = cloud.store.client(client_node);
        let raw = Histogram::new();
        for _ in 0..ops {
            let t0 = h.now();
            store_client
                .read(obj.id(), 0, 1024, Consistency::Eventual)
                .await
                .unwrap();
            raw.record_duration(h.now() - t0);
        }

        // REST: every request re-authenticates.
        let mut keys = HashMap::new();
        keys.insert("AK1".to_owned(), Credentials::new("AK1", b"k".to_vec()));
        let rest = RestGateway::deploy(
            cloud.fabric.clone(),
            cloud.store.clone(),
            cloud.billing.clone(),
            NodeId(1),
            NodeId(5),
            keys,
        );
        let rc = rest.client(client_node, Credentials::new("AK1", b"k".to_vec()));
        rc.kv_put("e8", "obj", &payload).await.unwrap();
        let rest_h = Histogram::new();
        for _ in 0..ops {
            let t0 = h.now();
            rc.kv_get("e8", "obj").await.unwrap();
            rest_h.record_duration(h.now() - t0);
        }

        // GC scenario: a tenant tree plus ephemeral intermediates whose
        // references were dropped.
        let root = kc.create(CreateOptions::directory()).await.unwrap();
        let mut kept = 0usize;
        let mut dropped = 0usize;
        for i in 0..40u32 {
            let o = kc
                .create(CreateOptions::regular().with_initial(vec![i as u8; 128]))
                .await
                .unwrap();
            if i % 4 == 0 {
                kc.link(&root, &format!("keep-{i}"), &o).await.unwrap();
                kept += 1;
            } else {
                dropped += 1; // Reference forgotten: unreachable.
            }
        }
        let before = cloud.kernel.live_objects();
        let reclaimed = cloud.kernel.run_gc(&[root.clone(), obj.clone()]);
        assert_eq!(reclaimed, dropped);
        let _ = kept;

        Results {
            raw_read_ns: raw.mean(),
            pcsi_read_ns: pcsi.mean(),
            rest_read_ns: rest_h.mean(),
            gc_objects: before,
            gc_reclaimed: reclaimed,
        }
    })
}

/// §3.2's claims, machine-checkable.
pub fn shape_holds(r: &Results) -> Result<(), String> {
    // The PCSI interface adds little over the raw store...
    if r.pcsi_tax_ns() > r.raw_read_ns * 0.5 {
        return Err(format!(
            "PCSI tax {:.0} ns too large vs raw {:.0} ns",
            r.pcsi_tax_ns(),
            r.raw_read_ns
        ));
    }
    // ...while the stateless REST interface multiplies the cost.
    if r.rest_tax_ns() < r.pcsi_tax_ns() * 10.0 {
        return Err(format!(
            "REST tax {:.0} ns should dwarf PCSI tax {:.0} ns",
            r.rest_tax_ns(),
            r.pcsi_tax_ns()
        ));
    }
    if r.gc_reclaimed == 0 {
        return Err("GC reclaimed nothing".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn capability_shape_holds() {
        let r = run(DEFAULT_SEED, 100);
        shape_holds(&r).unwrap();
        assert_eq!(r.gc_reclaimed, 30);
    }
}
