//! Supporting experiment — YCSB-style KV workloads on both interfaces.
//!
//! Not a paper table, but the standard way to characterize a cloud KV
//! data plane: Zipf-popular keys, workload mixes A (50/50 read/update),
//! B (95/5) and C (read-only), run against the PCSI-native path and the
//! signed-REST gateway over the *same* replicated store. The per-op gap
//! from E2/E8 holds across mixes and skew, which is the generalization
//! the §2.1 argument needs.

use std::collections::HashMap;

use bytes::Bytes;
use pcsi_cloud::rest::RestGateway;
use pcsi_cloud::workload::ZipfKeys;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency, Reference};
use pcsi_net::NodeId;
use pcsi_proto::sign::Credentials;
use pcsi_sim::metrics::Histogram;
use pcsi_sim::Sim;

/// Number of keys in the table.
pub const KEYS: u64 = 200;
/// Value size in bytes.
pub const VALUE: usize = 1024;

/// A YCSB workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% reads / 50% updates.
    A,
    /// 95% reads / 5% updates.
    B,
    /// 100% reads.
    C,
}

impl Mix {
    /// All mixes.
    pub const ALL: [Mix; 3] = [Mix::A, Mix::B, Mix::C];

    /// Read fraction.
    pub fn read_fraction(self) -> f64 {
        match self {
            Mix::A => 0.5,
            Mix::B => 0.95,
            Mix::C => 1.0,
        }
    }

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            Mix::A => "A (50/50)",
            Mix::B => "B (95/5)",
            Mix::C => "C (read-only)",
        }
    }
}

/// One `(mix, interface)` measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload mix.
    pub mix: Mix,
    /// Interface label.
    pub interface: &'static str,
    /// Mean operation latency (ns).
    pub mean_ns: f64,
    /// p99 operation latency (ns).
    pub p99_ns: f64,
}

/// Runs all mixes on both interfaces with `ops` operations each.
pub fn run(seed: u64, ops: u32) -> Vec<Cell> {
    let mut out = Vec::new();
    for mix in Mix::ALL {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let (pcsi, rest) = sim.block_on(async move {
            let cloud = CloudBuilder::new().build(&h);
            let value = vec![0x42u8; VALUE];

            // PCSI: one object per key, eventual consistency (the
            // DynamoDB-default equivalent), references bound once.
            let kc = cloud.kernel.client(NodeId(0), "ycsb");
            let mut refs: Vec<Reference> = Vec::with_capacity(KEYS as usize);
            for _ in 0..KEYS {
                refs.push(
                    kc.create(
                        CreateOptions::regular()
                            .with_consistency(Consistency::Eventual)
                            .with_initial(value.clone()),
                    )
                    .await
                    .unwrap(),
                );
            }

            let zipf = ZipfKeys::new(h.rng().stream("ycsb-keys"), KEYS, 0.99);
            let coin = h.rng().stream("ycsb-mix");
            let pcsi_hist = Histogram::new();
            for _ in 0..ops {
                let key = zipf.next_key() as usize;
                let is_read = coin.bool(mix.read_fraction());
                let t0 = h.now();
                if is_read {
                    kc.read(&refs[key], 0, VALUE as u64).await.unwrap();
                } else {
                    kc.write(&refs[key], 0, Bytes::from(value.clone()))
                        .await
                        .unwrap();
                }
                pcsi_hist.record_duration(h.now() - t0);
            }

            // REST on the same store.
            let mut keys = HashMap::new();
            keys.insert("AK".to_owned(), Credentials::new("AK", b"k".to_vec()));
            let rest = RestGateway::deploy(
                cloud.fabric.clone(),
                cloud.store.clone(),
                cloud.billing.clone(),
                NodeId(1),
                NodeId(5),
                keys,
            );
            let rc = rest.client(NodeId(0), Credentials::new("AK", b"k".to_vec()));
            for k in 0..KEYS {
                rc.kv_put("ycsb", &format!("k{k}"), &value).await.unwrap();
            }
            let zipf = ZipfKeys::new(h.rng().stream("ycsb-keys-rest"), KEYS, 0.99);
            let coin = h.rng().stream("ycsb-mix-rest");
            let rest_hist = Histogram::new();
            for _ in 0..ops {
                let key = zipf.next_key();
                let name = format!("k{key}");
                let is_read = coin.bool(mix.read_fraction());
                let t0 = h.now();
                if is_read {
                    rc.kv_get("ycsb", &name).await.unwrap();
                } else {
                    rc.kv_put("ycsb", &name, &value).await.unwrap();
                }
                rest_hist.record_duration(h.now() - t0);
            }
            (
                (pcsi_hist.mean(), pcsi_hist.quantile(0.99) as f64),
                (rest_hist.mean(), rest_hist.quantile(0.99) as f64),
            )
        });
        out.push(Cell {
            mix,
            interface: "PCSI-native",
            mean_ns: pcsi.0,
            p99_ns: pcsi.1,
        });
        out.push(Cell {
            mix,
            interface: "signed REST",
            mean_ns: rest.0,
            p99_ns: rest.1,
        });
    }
    out
}

/// Mix-C over `IMMUTABLE` objects: the mutability-aware client cache at
/// work. After the first (cold) fetch of each popular key, repeats are
/// served node-locally — the fabric-calls-per-read column collapses.
#[derive(Debug, Clone)]
pub struct ImmutableCell {
    /// Mean read latency (ns).
    pub mean_ns: f64,
    /// Cache hits over the read loop.
    pub hits: u64,
    /// Cache misses over the read loop.
    pub misses: u64,
    /// Fabric messages per read (both directions of every RPC).
    pub fabric_calls_per_read: f64,
}

/// Runs a read-only Zipf workload against immutable objects and reports
/// cache efficacy alongside latency.
pub fn run_immutable(seed: u64, ops: u32) -> ImmutableCell {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new().build(&h);
        let value = vec![0x42u8; VALUE];
        let kc = cloud.kernel.client(NodeId(0), "ycsb-im");
        let mut refs: Vec<Reference> = Vec::with_capacity(KEYS as usize);
        for _ in 0..KEYS {
            refs.push(
                kc.create(CreateOptions::immutable(value.clone()))
                    .await
                    .unwrap(),
            );
        }

        let zipf = ZipfKeys::new(h.rng().stream("ycsb-keys-im"), KEYS, 0.99);
        let hist = Histogram::new();
        let stats0 = cloud.store.cache_stats();
        let msgs0 = cloud.fabric.message_count();
        for _ in 0..ops {
            let key = zipf.next_key() as usize;
            let t0 = h.now();
            kc.read(&refs[key], 0, VALUE as u64).await.unwrap();
            hist.record_duration(h.now() - t0);
        }
        let stats1 = cloud.store.cache_stats();
        let msgs1 = cloud.fabric.message_count();
        ImmutableCell {
            mean_ns: hist.mean(),
            hits: stats1.hits - stats0.hits,
            misses: stats1.misses - stats0.misses,
            fabric_calls_per_read: (msgs1 - msgs0) as f64 / f64::from(ops),
        }
    })
}

/// The cache claim: a Zipf-popular immutable working set is served almost
/// entirely node-locally.
pub fn immutable_shape_holds(cell: &ImmutableCell) -> Result<(), String> {
    if cell.hits == 0 {
        return Err("immutable reads should hit the cache".into());
    }
    if cell.hits < cell.misses {
        return Err(format!(
            "Zipf immutable reads should mostly hit ({} hits / {} misses)",
            cell.hits, cell.misses
        ));
    }
    if cell.fabric_calls_per_read >= 1.0 {
        return Err(format!(
            "cached reads should average below one fabric message per read, got {:.2}",
            cell.fabric_calls_per_read
        ));
    }
    Ok(())
}

/// The generalization claim: REST pays a multiple of PCSI on every mix.
pub fn shape_holds(cells: &[Cell]) -> Result<(), String> {
    for mix in Mix::ALL {
        let get = |iface: &str| {
            cells
                .iter()
                .find(|c| c.mix == mix && c.interface == iface)
                .map(|c| c.mean_ns)
                .unwrap_or(f64::NAN)
        };
        let ratio = get("signed REST") / get("PCSI-native");
        if !(2.0..20.0).contains(&ratio) {
            return Err(format!(
                "mix {:?}: REST/PCSI ratio {ratio:.2} outside (2, 20)",
                mix
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn rest_tax_holds_across_mixes() {
        let cells = run(DEFAULT_SEED, 150);
        shape_holds(&cells).unwrap();
    }

    #[test]
    fn immutable_working_set_is_cache_served() {
        let cell = run_immutable(DEFAULT_SEED, 300);
        immutable_shape_holds(&cell).unwrap();
    }

    #[test]
    fn write_heavier_mixes_are_slower() {
        let cells = run(DEFAULT_SEED, 150);
        let mean = |mix: Mix, iface: &str| {
            cells
                .iter()
                .find(|c| c.mix == mix && c.interface == iface)
                .unwrap()
                .mean_ns
        };
        // Writes replicate; reads hit the closest replica. A must cost
        // more than C on the PCSI path.
        assert!(mean(Mix::A, "PCSI-native") > mean(Mix::C, "PCSI-native"));
    }
}
