//! E10 — pricing the streaming layer: PCSI push subscriptions vs an SSE
//! baseline, across network generations.
//!
//! The streaming analogue of [`super::crossover`]: for each Table-1
//! network generation, one producer publishes timestamped events to a
//! FIFO with kernel subscriptions (credit-based push) and to an SSE hub
//! (signed REST POST in, chunk-framed HTTP out), with 1 subscriber and
//! with a [`FAN_OUT`]-wide subscriber set. The per-event latency is the
//! producer-stamp-to-consumer delta in virtual time, measured
//! identically on both paths, so the gap is pure interface overhead.
//! The paper's argument carries over from request/response: the SSE
//! path is pinned to its protocol CPU floor (signing, HTTP parse, hub
//! forwarding), while the PCSI path rides the hardware down to the
//! microsecond network.
//!
//! Two scenario measurements ride along:
//!
//! * [`metrics_delta`] — the "metrics as a streamed file" scenario: a
//!   producer tails the deployment's metrics registry and publishes
//!   line-diffs ([`pcsi_metrics::delta`]) through a FIFO subscription; a
//!   consumer on another node reconstructs each snapshot byte-exactly
//!   with [`pcsi_metrics::apply_delta`]. The measured quantity is wire
//!   bytes per update, delta vs whole-snapshot.
//! * [`token_serving`] — the model-serving scenario: a server computes
//!   tokens at a fixed cadence and streams each one out; time-to-first
//!   token and full-stream time are compared across the two transports
//!   with identical compute, so only the delivery path differs.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_cloud::sse::{SseHub, SsePublisher, SseSubscriber};
use pcsi_cloud::{Cloud, CloudBuilder};
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, PcsiError, Rights};
use pcsi_net::NetworkGeneration;
use pcsi_proto::sign::Credentials;
use pcsi_sim::metrics::Histogram;
use pcsi_sim::{Sim, SimHandle};

/// Subscriber count for the fan-out measurement.
pub const FAN_OUT: usize = 8;

/// Snapshot key for one generation (`streaming.<key>_*` fields).
pub fn key(generation: NetworkGeneration) -> &'static str {
    match generation {
        NetworkGeneration::Dc2005 => "dc2005",
        NetworkGeneration::Dc2021 => "dc2021",
        NetworkGeneration::FastEmerging => "fast",
    }
}

/// Per-event delivery latency at one network generation, both
/// transports, 1 subscriber and [`FAN_OUT`] subscribers.
#[derive(Debug, Clone)]
pub struct StreamPoint {
    /// Network generation.
    pub generation: NetworkGeneration,
    /// The generation's cross-rack RTT (ns).
    pub rtt_ns: f64,
    /// Mean producer-to-consumer latency (ns), PCSI push, 1 subscriber.
    pub pcsi_event_ns: f64,
    /// Mean producer-to-consumer latency (ns), SSE, 1 subscriber.
    pub sse_event_ns: f64,
    /// Mean latency (ns) across [`FAN_OUT`] PCSI subscribers.
    pub pcsi_fanout_ns: f64,
    /// Mean latency (ns) across [`FAN_OUT`] SSE subscribers.
    pub sse_fanout_ns: f64,
}

impl StreamPoint {
    /// SSE per-event latency as a multiple of PCSI's — the streaming
    /// interface tax at this generation.
    pub fn sse_tax(&self) -> f64 {
        self.sse_event_ns / self.pcsi_event_ns
    }
}

/// Measures both transports at every generation.
pub fn run(seed: u64, events: u32) -> Vec<StreamPoint> {
    let mut out = Vec::new();
    for generation in NetworkGeneration::ALL {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let point = sim.block_on(async move {
            let cloud = CloudBuilder::new()
                .network(generation)
                .deterministic_network()
                .build(&h);
            // Pace publishes a few RTTs apart so each event's latency is
            // delivery time, not queueing behind its predecessors.
            let pace = generation.rtt().max(Duration::from_micros(20)) * 4;
            let pcsi_event_ns = pcsi_mean(&h, &cloud, 1, events, pace, "e10-p1").await;
            let pcsi_fanout_ns = pcsi_mean(&h, &cloud, FAN_OUT, events, pace, "e10-pn").await;
            let sse_event_ns = sse_mean(&h, &cloud, 1, events, pace, "e10-s1").await;
            let sse_fanout_ns = sse_mean(&h, &cloud, FAN_OUT, events, pace, "e10-sn").await;
            StreamPoint {
                generation,
                rtt_ns: generation.rtt().as_nanos() as f64,
                pcsi_event_ns,
                sse_event_ns,
                pcsi_fanout_ns,
                sse_fanout_ns,
            }
        });
        out.push(point);
    }
    out
}

/// Events carry the producer's virtual-time stamp in-band so both
/// transports are measured by the same clock at the same two points.
fn stamp(h: &SimHandle, i: u32) -> String {
    format!("{} event-{i}", h.now().as_nanos())
}

fn unstamp(payload: &[u8]) -> u64 {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("payload carries the producer timestamp")
}

/// Rounds each transport measurement averages over: every round gets a
/// fresh FIFO (a fresh placement draw) / SSE stream and a rotated
/// consumer set, so rack geometry is sampled instead of drawn once.
const ROUNDS: usize = 4;

/// Mean per-event latency over [`ROUNDS`] × `events` publishes to
/// `subscribers` kernel subscriptions on distinct consumer nodes.
async fn pcsi_mean(
    h: &SimHandle,
    cloud: &Cloud,
    subscribers: usize,
    events: u32,
    pace: Duration,
    tag: &str,
) -> f64 {
    let nodes = cloud.fabric.topology().node_ids();
    let producer = cloud.kernel.client(nodes[0], tag);
    let hist = Rc::new(Histogram::new());
    for round in 0..ROUNDS {
        let fifo = producer
            .create(CreateOptions::fifo())
            .await
            .expect("fifo creation");
        let tail = fifo.attenuate(Rights::READ).expect("attenuate to READ");
        // Consumers never share a node with the producer or the FIFO's
        // home (placement primary) — every delivery crosses the fabric,
        // matching the SSE side where consumers never sit on the hub.
        let home = cloud.store.placement().primary(fifo.id());
        let pool: Vec<_> = nodes
            .iter()
            .copied()
            .filter(|n| *n != home && *n != nodes[0])
            .collect();
        let mut consumers = Vec::new();
        for i in 0..subscribers {
            let node = pool[(i + round) % pool.len()];
            let client = cloud.kernel.client(node, tag);
            let sub = client.subscribe(&tail, 32).await.expect("subscribe");
            let hist = Rc::clone(&hist);
            let h2 = h.clone();
            consumers.push(h.spawn(async move {
                while let Some(ev) = sub.next().await {
                    let t0 = unstamp(&ev.payload);
                    hist.record_duration(Duration::from_nanos(h2.now().as_nanos() - t0));
                }
            }));
        }
        for i in 0..events {
            let payload = Bytes::from(stamp(h, i));
            append_retrying(h, &producer, &fifo, payload).await;
            h.sleep(pace).await;
        }
        producer.delete(&fifo).await.expect("delete");
        for c in consumers {
            c.await;
        }
    }
    hist.mean()
}

/// Appends with retry on backpressure/transient transfer faults — the
/// same loop a real producer runs (the bench fabric injects no faults,
/// so in practice this never spins).
async fn append_retrying(
    h: &SimHandle,
    producer: &pcsi_cloud::KernelClient,
    fifo: &pcsi_core::Reference,
    payload: Bytes,
) {
    loop {
        match producer.append(fifo, payload.clone()).await {
            Ok(_) => return,
            Err(PcsiError::Overloaded(_) | PcsiError::Fault(_)) => {
                h.sleep(Duration::from_micros(50)).await;
            }
            Err(e) => panic!("append failed terminally: {e}"),
        }
    }
}

fn creds() -> Credentials {
    Credentials::new("AK1", b"k".to_vec())
}

/// Mean per-event latency over [`ROUNDS`] × `events` publishes to
/// `subscribers` SSE connections on distinct consumer nodes. The hub
/// rotates across nodes round-by-round, mirroring the placement draws
/// the FIFO side samples.
async fn sse_mean(
    h: &SimHandle,
    cloud: &Cloud,
    subscribers: usize,
    events: u32,
    pace: Duration,
    stream: &str,
) -> f64 {
    let nodes = cloud.fabric.topology().node_ids();
    let hist = Rc::new(Histogram::new());
    for round in 0..ROUNDS {
        let mut keys = HashMap::new();
        keys.insert("AK1".to_owned(), creds());
        let hub_node = nodes[1 + (round % (nodes.len() - 1))];
        let hub = SseHub::deploy(cloud.fabric.clone(), cloud.billing.clone(), hub_node, keys);
        // Mirror the PCSI side: consumers never sit on the hub or the
        // producer, so every delivery crosses the fabric.
        let pool: Vec<_> = nodes
            .iter()
            .copied()
            .filter(|n| *n != hub_node && *n != nodes[0])
            .collect();
        let stream = format!("{stream}-{round}");
        let mut consumers = Vec::new();
        for i in 0..subscribers {
            let node = pool[(i + round) % pool.len()];
            let sub = SseSubscriber::connect(&hub, node, creds(), &stream)
                .await
                .expect("sse connect");
            let hist = Rc::clone(&hist);
            let h2 = h.clone();
            consumers.push(h.spawn(async move {
                for _ in 0..events {
                    let ev = sub.next().await.expect("stream open until disconnect");
                    let t0 = unstamp(&ev.data);
                    hist.record_duration(Duration::from_nanos(h2.now().as_nanos() - t0));
                }
                sub.disconnect().await;
            }));
        }
        let publisher = SsePublisher::new(&hub, nodes[0], creds());
        for i in 0..events {
            let payload = stamp(h, i);
            publisher
                .publish(&stream, payload.as_bytes())
                .await
                .expect("sse publish");
            h.sleep(pace).await;
        }
        for c in consumers {
            c.await;
        }
    }
    hist.mean()
}

/// Outcome of the metrics-delta streaming scenario.
#[derive(Debug, Clone)]
pub struct MetricsDeltaResult {
    /// Snapshot ticks streamed.
    pub ticks: u32,
    /// Mean wire bytes per published delta frame.
    pub mean_delta_bytes: f64,
    /// Mean bytes of the full snapshot at each tick — what naive
    /// whole-file streaming would have shipped.
    pub mean_full_bytes: f64,
    /// True when the consumer's reconstruction matched the producer's
    /// final published snapshot byte-for-byte.
    pub reconstructed: bool,
}

impl MetricsDeltaResult {
    /// Whole-snapshot bytes over delta bytes — the wire saving.
    pub fn compression(&self) -> f64 {
        self.mean_full_bytes / self.mean_delta_bytes.max(1.0)
    }
}

/// Streams the deployment's own metrics registry as line-diffs through
/// a FIFO subscription; the consumer reconstructs every snapshot.
pub fn metrics_delta(seed: u64, ticks: u32) -> MetricsDeltaResult {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new()
            .deterministic_network()
            .metrics(true)
            .build(&h);
        let metrics = cloud.metrics.clone().expect("metrics enabled");
        let nodes = cloud.fabric.topology().node_ids();

        let producer = cloud.kernel.client(nodes[0], "e10-metrics");
        let fifo = producer
            .create(CreateOptions::fifo())
            .await
            .expect("fifo creation");
        let tail = fifo.attenuate(Rights::READ).expect("attenuate to READ");
        let consumer_client = cloud.kernel.client(nodes[3], "e10-metrics");
        let sub = consumer_client
            .subscribe(&tail, 32)
            .await
            .expect("subscribe");
        let consumer = h.spawn(async move {
            // The consumer holds only the reconstructed text, never the
            // registry: metrics-as-a-streamed-file.
            let mut state = String::new();
            while let Some(ev) = sub.next().await {
                let frame = std::str::from_utf8(&ev.payload)
                    .expect("delta frames are text")
                    .to_owned();
                state = pcsi_metrics::apply_delta(&state, &frame);
            }
            state
        });

        // A background workload moves counters between ticks, so each
        // delta carries real value churn (including the stream.* series
        // this very publication drives).
        let workload = cloud.kernel.client(nodes[2], "e10-load");
        let obj = workload
            .create(CreateOptions::regular().with_initial(vec![7u8; 256]))
            .await
            .expect("workload object");

        let mut prev = String::new();
        let mut delta_bytes = 0u64;
        let mut full_bytes = 0u64;
        for _ in 0..ticks {
            for _ in 0..4 {
                workload.read(&obj, 0, 256).await.expect("workload read");
            }
            let cur = metrics.render();
            let frame = pcsi_metrics::delta(&prev, &cur);
            delta_bytes += frame.len() as u64;
            full_bytes += cur.len() as u64;
            append_retrying(&h, &producer, &fifo, Bytes::from(frame)).await;
            prev = cur;
            h.sleep(Duration::from_millis(1)).await;
        }
        producer.delete(&fifo).await.expect("delete");
        let reconstructed = consumer.await == prev;
        MetricsDeltaResult {
            ticks,
            mean_delta_bytes: delta_bytes as f64 / f64::from(ticks.max(1)),
            mean_full_bytes: full_bytes as f64 / f64::from(ticks.max(1)),
            reconstructed,
        }
    })
}

/// Outcome of the token-streaming model-serving scenario.
#[derive(Debug, Clone)]
pub struct TokenServingResult {
    /// Tokens streamed per request.
    pub tokens: u32,
    /// Time to first token (ns), PCSI subscription.
    pub pcsi_ttft_ns: f64,
    /// Time to first token (ns), SSE.
    pub sse_ttft_ns: f64,
    /// Request start to last token consumed (ns), PCSI subscription.
    pub pcsi_total_ns: f64,
    /// Request start to last token consumed (ns), SSE.
    pub sse_total_ns: f64,
}

/// Streams one model response token-by-token over both transports on
/// the 2021 network. Token compute cadence is identical (1 ms/token),
/// so TTFT and total-time differences are pure delivery overhead.
pub fn token_serving(seed: u64, tokens: u32) -> TokenServingResult {
    const TOKEN_COMPUTE: Duration = Duration::from_millis(1);
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new()
            .network(NetworkGeneration::Dc2021)
            .deterministic_network()
            .build(&h);
        let nodes = cloud.fabric.topology().node_ids();

        // PCSI: the server streams tokens into a FIFO the client tails.
        let server = cloud.kernel.client(nodes[0], "e10-model");
        let fifo = server
            .create(CreateOptions::fifo())
            .await
            .expect("fifo creation");
        let tail = fifo.attenuate(Rights::READ).expect("attenuate to READ");
        // Keep the client off the FIFO's home so tokens cross the
        // fabric, as they do on the SSE side.
        let home = cloud.store.placement().primary(fifo.id());
        let client_node = if home == nodes[4] { nodes[5] } else { nodes[4] };
        let client = cloud.kernel.client(client_node, "e10-model");
        let sub = client.subscribe(&tail, 64).await.expect("subscribe");
        let t_start = h.now();
        let h2 = h.clone();
        let producer = h.spawn(async move {
            for i in 0..tokens {
                h2.sleep(TOKEN_COMPUTE).await;
                append_retrying(&h2, &server, &fifo, Bytes::from(format!("tok{i}"))).await;
            }
            server.delete(&fifo).await.expect("delete");
        });
        let mut pcsi_ttft_ns = 0.0;
        while let Some(ev) = sub.next().await {
            if ev.seq == 0 {
                pcsi_ttft_ns = (h.now().as_nanos() - t_start.as_nanos()) as f64;
            }
        }
        let pcsi_total_ns = (h.now().as_nanos() - t_start.as_nanos()) as f64;
        producer.await;

        // SSE: same compute cadence, delivery via the hub.
        let mut keys = HashMap::new();
        keys.insert("AK1".to_owned(), creds());
        let hub = SseHub::deploy(cloud.fabric.clone(), cloud.billing.clone(), nodes[1], keys);
        let sub = SseSubscriber::connect(&hub, nodes[4], creds(), "model")
            .await
            .expect("sse connect");
        let publisher = SsePublisher::new(&hub, nodes[0], creds());
        let t_start = h.now();
        let h2 = h.clone();
        let producer = h.spawn(async move {
            for i in 0..tokens {
                h2.sleep(TOKEN_COMPUTE).await;
                publisher
                    .publish("model", format!("tok{i}").as_bytes())
                    .await
                    .expect("sse publish");
            }
        });
        let mut sse_ttft_ns = 0.0;
        for i in 0..tokens {
            let _ev = sub.next().await.expect("stream open");
            if i == 0 {
                sse_ttft_ns = (h.now().as_nanos() - t_start.as_nanos()) as f64;
            }
        }
        let sse_total_ns = (h.now().as_nanos() - t_start.as_nanos()) as f64;
        producer.await;
        sub.disconnect().await;

        TokenServingResult {
            tokens,
            pcsi_ttft_ns,
            sse_ttft_ns,
            pcsi_total_ns,
            sse_total_ns,
        }
    })
}

/// The full E10 bundle the report and snapshot carry.
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// Per-generation latency points.
    pub points: Vec<StreamPoint>,
    /// Metrics-delta streaming scenario.
    pub delta: MetricsDeltaResult,
    /// Token-streaming model-serving scenario.
    pub tokens: TokenServingResult,
}

impl StreamingResult {
    /// The point for one generation.
    pub fn point(&self, generation: NetworkGeneration) -> &StreamPoint {
        self.points
            .iter()
            .find(|p| p.generation == generation)
            .expect("run() covers every generation")
    }
}

/// Runs every streaming measurement at the report's default sizes.
pub fn run_all(seed: u64) -> StreamingResult {
    StreamingResult {
        points: run(seed, 24),
        delta: metrics_delta(seed, 20),
        tokens: token_serving(seed, 32),
    }
}

/// The streaming claims, machine-checkable.
pub fn shape_holds(r: &StreamingResult) -> Result<(), String> {
    // The headline: on the fast network, PCSI push beats SSE per event.
    let fast = r.point(NetworkGeneration::FastEmerging);
    if fast.pcsi_event_ns >= fast.sse_event_ns {
        return Err(format!(
            "PCSI should beat SSE per-event on the fast network: {:.0}ns vs {:.0}ns",
            fast.pcsi_event_ns, fast.sse_event_ns
        ));
    }
    // And by a wide margin — the SSE floor is protocol CPU, orders above
    // a microsecond fabric.
    if fast.sse_tax() < 5.0 {
        return Err(format!(
            "fast-network SSE tax should be >=5x (got {:.1}x)",
            fast.sse_tax()
        ));
    }
    // Fan-out costs more than a single subscriber on both paths, but
    // stays the same order of magnitude (no 8x collapse).
    for p in &r.points {
        if p.pcsi_fanout_ns < 0.5 * p.pcsi_event_ns {
            return Err(format!(
                "{}: fan-out mean below half the 1-sub mean is implausible",
                key(p.generation)
            ));
        }
    }
    // The delta stream must reconstruct and must beat whole snapshots.
    if !r.delta.reconstructed {
        return Err("metrics-delta consumer failed to reconstruct the snapshot".into());
    }
    if r.delta.compression() < 2.0 {
        return Err(format!(
            "metrics deltas should be >=2x smaller than snapshots (got {:.1}x)",
            r.delta.compression()
        ));
    }
    // Token streaming: TTFT is roughly one token compute plus delivery;
    // PCSI's delivery edge shows up as TTFT no worse than SSE's.
    if r.tokens.pcsi_ttft_ns > r.tokens.sse_ttft_ns {
        return Err(format!(
            "PCSI TTFT should not exceed SSE TTFT: {:.0}ns vs {:.0}ns",
            r.tokens.pcsi_ttft_ns, r.tokens.sse_ttft_ns
        ));
    }
    if r.tokens.pcsi_total_ns > r.tokens.sse_total_ns {
        return Err(format!(
            "PCSI total stream time should not exceed SSE's: {:.0}ns vs {:.0}ns",
            r.tokens.pcsi_total_ns, r.tokens.sse_total_ns
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn streaming_shape() {
        let r = StreamingResult {
            points: run(DEFAULT_SEED, 12),
            delta: metrics_delta(DEFAULT_SEED, 10),
            tokens: token_serving(DEFAULT_SEED, 16),
        };
        shape_holds(&r).unwrap();
    }

    #[test]
    fn fanout_scales_with_subscribers_not_collapse() {
        let points = run(DEFAULT_SEED, 8);
        for p in &points {
            // Eight encode-once pushes cost more than one, but the mean
            // per-event latency stays within an order of magnitude.
            assert!(
                p.pcsi_fanout_ns < 10.0 * p.pcsi_event_ns,
                "{}: fan-out {:.0}ns vs single {:.0}ns",
                key(p.generation),
                p.pcsi_fanout_ns,
                p.pcsi_event_ns
            );
        }
    }

    #[test]
    fn delta_stream_reconstructs_and_compresses() {
        let d = metrics_delta(DEFAULT_SEED, 8);
        assert!(d.reconstructed);
        assert!(d.compression() > 1.0, "compression {:.2}", d.compression());
    }
}
