//! supporting — fault recovery on the client path.
//!
//! Runs the same linearizable register workload on a healthy fabric and
//! on a lossy one (5% of all messages silently dropped, with a
//! per-attempt deadline below the fabric's retransmit timeout) and
//! reports the client-observed outcome next to the recovery counters
//! the store surfaces. The claim under test is the store's failure
//! contract: a dropped message costs latency, never a client-visible
//! error — the deadline/retry/failover layer masks it.

use std::time::Duration;

use bytes::Bytes;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency};
use pcsi_net::{MessageFaults, NodeId};
use pcsi_sim::metrics::Histogram;
use pcsi_sim::Sim;
use pcsi_store::{RetryPolicy, RetryStats, StoreConfig};

/// One cell: the workload outcome at a given drop rate.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row label.
    pub label: &'static str,
    /// Fabric-wide message drop probability.
    pub drop: f64,
    /// Mean linearizable write latency (ns).
    pub write_ns: f64,
    /// Mean linearizable read latency (ns).
    pub read_ns: f64,
    /// Operation failures the client actually observed.
    pub client_errors: u64,
    /// Aggregate recovery counters from [`pcsi_store::ReplicatedStore`].
    pub retry: RetryStats,
}

/// Runs `rounds` write-then-read iterations at the given drop rate.
pub fn run_cell(seed: u64, label: &'static str, drop: f64, rounds: u32) -> Cell {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new()
            .store(StoreConfig {
                // Tight per-attempt deadline (below the fabric's 2 ms
                // retransmit timeout) so a lost message surfaces as a
                // fast client-side timeout instead of a slow transport
                // error, plus retry/failover budget to mask it.
                retry: RetryPolicy {
                    attempt_timeout: Some(Duration::from_micros(1500)),
                    op_deadline: Some(Duration::from_millis(50)),
                    attempts_per_target: 4,
                    failover: true,
                    base_backoff: Duration::from_micros(100),
                    max_backoff: Duration::from_millis(2),
                    jitter: 0.5,
                },
                ..StoreConfig::default()
            })
            .build(&h);
        if drop > 0.0 {
            cloud.fabric.set_message_faults(MessageFaults {
                drop,
                duplicate: 0.0,
                delay_spike: 0.0,
                spike: Duration::ZERO,
            });
        }
        let client = cloud.kernel.client(NodeId(0), "recovery");
        let obj = client
            .create(
                CreateOptions::regular()
                    .with_consistency(Consistency::Linearizable)
                    .with_initial(vec![0u8; 64]),
            )
            .await
            .expect("object creation");

        let writes = Histogram::new();
        let reads = Histogram::new();
        let mut client_errors = 0u64;
        for round in 0..rounds {
            let t0 = h.now();
            if client
                .write(&obj, 0, Bytes::from(vec![(round % 251) as u8; 64]))
                .await
                .is_err()
            {
                client_errors += 1;
            }
            writes.record_duration(h.now() - t0);
            let t1 = h.now();
            if client.read(&obj, 0, 64).await.is_err() {
                client_errors += 1;
            }
            reads.record_duration(h.now() - t1);
        }
        Cell {
            label,
            drop,
            write_ns: writes.mean(),
            read_ns: reads.mean(),
            client_errors,
            retry: cloud.store.retry_stats(),
        }
    })
}

/// Both cells: healthy baseline and the lossy fabric.
pub fn run(seed: u64, rounds: u32) -> Vec<Cell> {
    vec![
        run_cell(seed, "healthy fabric", 0.0, rounds),
        run_cell(seed, "5% message drops", 0.05, rounds),
    ]
}

/// The failure contract, machine-checkable.
pub fn shape_holds(cells: &[Cell]) -> Result<(), String> {
    let healthy = cells
        .iter()
        .find(|c| c.drop == 0.0)
        .ok_or("missing healthy cell")?;
    let lossy = cells
        .iter()
        .find(|c| c.drop > 0.0)
        .ok_or("missing lossy cell")?;
    if healthy.client_errors != 0 || lossy.client_errors != 0 {
        return Err(format!(
            "client-visible errors despite a live majority: healthy={} lossy={}",
            healthy.client_errors, lossy.client_errors
        ));
    }
    if healthy.retry.retries != 0 || healthy.retry.timeouts != 0 {
        return Err(format!(
            "recovery fired on a healthy fabric: {:?}",
            healthy.retry
        ));
    }
    if lossy.retry.retries == 0 || lossy.retry.timeouts == 0 {
        return Err(format!(
            "drops never exercised the recovery layer: {:?}",
            lossy.retry
        ));
    }
    if lossy.write_ns <= healthy.write_ns {
        return Err("masking drops must cost write latency, not nothing".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn recovery_shape_holds() {
        let cells = run(DEFAULT_SEED, 120);
        shape_holds(&cells).unwrap();
    }
}
