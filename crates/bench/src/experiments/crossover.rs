//! E9 — §2.1's motivation: "web service overheads will certainly become
//! prohibitive on future fast networks."
//!
//! For each Table-1 network generation, measure a 1 KB fetch through the
//! signed-REST interface and through PCSI-native, and split the latency
//! into the hardware floor (network RTTs at that generation) versus
//! interface overhead. As the fabric speeds up 1000×, the REST path
//! barely improves — protocol CPU dominates — while the PCSI path tracks
//! the hardware. That divergence is the paper's opening argument.

use std::collections::HashMap;

use pcsi_cloud::rest::RestGateway;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency};
use pcsi_net::{NetworkGeneration, NodeId};
use pcsi_proto::sign::Credentials;
use pcsi_sim::metrics::Histogram;
use pcsi_sim::Sim;
use pcsi_trace::Sampling;

use super::stages::{self, StageBreakdown};

/// One generation × interface measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Network generation.
    pub generation: NetworkGeneration,
    /// Interface label.
    pub interface: &'static str,
    /// Mean 1 KB fetch latency (ns).
    pub mean_ns: f64,
    /// The generation's cross-rack RTT (ns), the hardware floor unit.
    pub rtt_ns: f64,
}

impl Point {
    /// Latency as a multiple of the generation's RTT: ~small constant for
    /// an interface that tracks the hardware, exploding for one that
    /// does not.
    pub fn rtt_multiple(&self) -> f64 {
        self.mean_ns / self.rtt_ns
    }
}

/// Runs both interfaces at every generation.
pub fn run(seed: u64, ops: u32) -> Vec<Point> {
    let mut out = Vec::new();
    for generation in NetworkGeneration::ALL {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let (pcsi_ns, rest_ns) = sim.block_on(async move {
            let cloud = CloudBuilder::new()
                .network(generation)
                .deterministic_network()
                .build(&h);
            let payload = vec![9u8; 1024];

            let kc = cloud.kernel.client(NodeId(0), "e9");
            let obj = kc
                .create(
                    CreateOptions::regular()
                        .with_consistency(Consistency::Eventual)
                        .with_initial(payload.clone()),
                )
                .await
                .unwrap();
            let pcsi = Histogram::new();
            for _ in 0..ops {
                let t0 = h.now();
                kc.read(&obj, 0, 1024).await.unwrap();
                pcsi.record_duration(h.now() - t0);
            }

            let mut keys = HashMap::new();
            keys.insert("AK1".to_owned(), Credentials::new("AK1", b"k".to_vec()));
            let rest = RestGateway::deploy(
                cloud.fabric.clone(),
                cloud.store.clone(),
                cloud.billing.clone(),
                NodeId(1),
                NodeId(5),
                keys,
            );
            let rc = rest.client(NodeId(0), Credentials::new("AK1", b"k".to_vec()));
            rc.kv_put("t", "k", &payload).await.unwrap();
            let resth = Histogram::new();
            for _ in 0..ops {
                let t0 = h.now();
                rc.kv_get("t", "k").await.unwrap();
                resth.record_duration(h.now() - t0);
            }
            (pcsi.mean(), resth.mean())
        });
        let rtt_ns = generation.rtt().as_nanos() as f64;
        out.push(Point {
            generation,
            interface: "PCSI-native",
            mean_ns: pcsi_ns,
            rtt_ns,
        });
        out.push(Point {
            generation,
            interface: "signed REST",
            mean_ns: rest_ns,
            rtt_ns,
        });
    }
    out
}

/// One generation × interface trace-derived stage split.
#[derive(Debug, Clone)]
pub struct BreakdownPoint {
    /// Network generation.
    pub generation: NetworkGeneration,
    /// Interface label.
    pub interface: &'static str,
    /// Per-stage self-time totals of one warm 1 KB GET.
    pub stages: StageBreakdown,
}

/// Traces one warm 1 KB GET per interface at every generation and
/// splits its latency into protocol / network / storage self time.
///
/// This is the span-level version of [`run`]'s aggregate claim: the
/// protocol share of a signed-REST fetch is a minority when the wire is
/// slow (1 ms RTT) and dominates when the wire is fast (1 µs RTT).
pub fn breakdowns(seed: u64) -> Vec<BreakdownPoint> {
    let mut out = Vec::new();
    for generation in NetworkGeneration::ALL {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let (rest_stages, pcsi_stages) = sim.block_on(async move {
            let cloud = CloudBuilder::new()
                .network(generation)
                .deterministic_network()
                .tracing(Sampling::Always)
                .build(&h);
            let tracer = cloud.tracer.clone().expect("tracing enabled");
            let payload = vec![9u8; 1024];

            let kc = cloud.kernel.client(NodeId(0), "e9");
            let obj = kc
                .create(
                    CreateOptions::regular()
                        .with_consistency(Consistency::Eventual)
                        .with_initial(payload.clone()),
                )
                .await
                .unwrap();
            // One warm-up read, then the measured one.
            kc.read(&obj, 0, 1024).await.unwrap();
            kc.read(&obj, 0, 1024).await.unwrap();

            let mut keys = HashMap::new();
            keys.insert("AK1".to_owned(), Credentials::new("AK1", b"k".to_vec()));
            let rest = RestGateway::deploy(
                cloud.fabric.clone(),
                cloud.store.clone(),
                cloud.billing.clone(),
                NodeId(1),
                NodeId(5),
                keys,
            );
            rest.set_tracer(Some(tracer.clone()));
            let rc = rest.client(NodeId(0), Credentials::new("AK1", b"k".to_vec()));
            rc.kv_put("t", "k", &payload).await.unwrap();
            rc.kv_get("t", "k").await.unwrap();
            rc.kv_get("t", "k").await.unwrap();

            let spans = tracer.sink().snapshot();
            let rest_trace = stages::last_root(&spans, "rest.request").expect("a traced REST GET");
            let pcsi_trace =
                stages::last_root(&spans, "kernel.read").expect("a traced kernel read");
            (
                StageBreakdown::of(&spans, rest_trace),
                StageBreakdown::of(&spans, pcsi_trace),
            )
        });
        out.push(BreakdownPoint {
            generation,
            interface: "signed REST",
            stages: rest_stages,
        });
        out.push(BreakdownPoint {
            generation,
            interface: "PCSI-native",
            stages: pcsi_stages,
        });
    }
    out
}

/// The trace-level crossover, machine-checkable: REST's protocol share
/// is a minority at 1 ms RTT and dominant at 1 µs RTT.
pub fn breakdown_shape_holds(points: &[BreakdownPoint]) -> Result<(), String> {
    let share = |generation: NetworkGeneration| -> f64 {
        points
            .iter()
            .find(|p| p.generation == generation && p.interface == "signed REST")
            .map(|p| p.stages.share(stages::PROTOCOL))
            .unwrap_or(f64::NAN)
    };
    let slow = share(NetworkGeneration::Dc2005);
    if slow.is_nan() || slow >= 0.5 {
        return Err(format!(
            "protocol share should be a minority on the 2005 network (got {slow:.2})"
        ));
    }
    let fast = share(NetworkGeneration::FastEmerging);
    if fast.is_nan() || fast <= 0.5 {
        return Err(format!(
            "protocol share should dominate on the fast network (got {fast:.2})"
        ));
    }
    Ok(())
}

/// The killer-microseconds shape, machine-checkable.
pub fn shape_holds(points: &[Point]) -> Result<(), String> {
    let get = |generation: NetworkGeneration, iface: &str| -> f64 {
        points
            .iter()
            .find(|p| p.generation == generation && p.interface == iface)
            .map(|p| p.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let speedup = |iface: &str| -> f64 {
        get(NetworkGeneration::Dc2005, iface) / get(NetworkGeneration::FastEmerging, iface)
    };
    // PCSI rides the hardware improvement; REST mostly does not.
    let pcsi_gain = speedup("PCSI-native");
    let rest_gain = speedup("signed REST");
    if pcsi_gain < 2.0 * rest_gain {
        return Err(format!(
            "PCSI should gain far more from fast networks: {pcsi_gain:.1}x vs {rest_gain:.1}x"
        ));
    }
    // On the fast network the gap is an order of magnitude or more.
    let fast_ratio = get(NetworkGeneration::FastEmerging, "signed REST")
        / get(NetworkGeneration::FastEmerging, "PCSI-native");
    if fast_ratio < 10.0 {
        return Err(format!(
            "on the fast network REST should be >=10x PCSI (got {fast_ratio:.1}x)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn killer_microseconds_shape() {
        let points = run(DEFAULT_SEED, 50);
        shape_holds(&points).unwrap();
    }

    #[test]
    fn trace_breakdown_crossover() {
        let points = breakdowns(DEFAULT_SEED);
        breakdown_shape_holds(&points).unwrap();
        // The attribution is near-complete: unclassified self time is a
        // sliver of each REST request.
        for p in points.iter().filter(|p| p.interface == "signed REST") {
            assert!(
                p.stages.share(stages::OTHER) < 0.2,
                "{:?} unattributed share too large: {:?}",
                p.generation,
                p.stages
            );
        }
    }

    #[test]
    fn rtt_multiples_ordered_sanely() {
        let points = run(DEFAULT_SEED, 20);
        for p in &points {
            // Eventual reads go to the *closest* replica, so the mean can
            // sit well below one cross-rack RTT; it cannot be free.
            assert!(p.rtt_multiple() > 0.05, "{p:?}");
        }
    }
}
