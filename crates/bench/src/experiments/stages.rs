//! Trace-derived latency stage breakdowns, shared by E2 and E9.
//!
//! A request's spans are classified by name into `protocol` (CPU spent
//! on interface mechanics: framing, marshaling, signatures, routing),
//! `network` (wire time), and `storage` (media access and replica-side
//! work), and per-category *self time* — span duration minus time
//! covered by child spans — is summed over the trace. Self time is what
//! makes the split additive: every nanosecond of the root request is
//! attributed to exactly one category.

use pcsi_trace::{self_time_breakdown, Span, TraceId};

/// Interface-mechanics CPU: the cost the paper says should not exist.
pub const PROTOCOL: &str = "protocol";
/// Wire time: the hardware floor.
pub const NETWORK: &str = "network";
/// Media access and replica-side coordination.
pub const STORAGE: &str = "storage";
/// Anything unattributed (scheduling slack, span bookkeeping gaps).
pub const OTHER: &str = "other";

/// Maps a span name to its stage category.
///
/// `store.attempt` counts as network because its self time is the RPC
/// wire time: the replica-side processing it covers lives in `replica.*`
/// child spans. Likewise `rest.lb` self time is the balancer's CPU (its
/// forward hop is wrapped in a nested `rest.transport` span).
pub fn classify(name: &str) -> &'static str {
    match name {
        "rest.sign" | "rest.marshal" | "rest.http_parse" | "rest.auth" | "rest.route"
        | "rest.lb" | "nfs.op" | "nfs.auth" => PROTOCOL,
        "rest.transport" | "nfs.transport" | "store.attempt" | "store.backoff" => NETWORK,
        "store.cache" | "nfs.io" => STORAGE,
        n if n.starts_with("replica.") => STORAGE,
        _ => OTHER,
    }
}

/// Per-stage self-time totals for one trace.
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    /// The trace the totals were computed over.
    pub trace: TraceId,
    /// `(category, self-time ns)` in first-seen order.
    pub totals: Vec<(&'static str, u64)>,
}

impl StageBreakdown {
    /// Computes the breakdown of `trace` using [`classify`].
    pub fn of(spans: &[Span], trace: TraceId) -> StageBreakdown {
        StageBreakdown {
            trace,
            totals: self_time_breakdown(spans, trace, &classify),
        }
    }

    /// Self time attributed to `category`, in nanoseconds.
    pub fn ns(&self, category: &str) -> u64 {
        self.totals
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, t)| *t)
            .unwrap_or(0)
    }

    /// Total attributed time across all categories.
    pub fn total_ns(&self) -> u64 {
        self.totals.iter().map(|(_, t)| t).sum()
    }

    /// `category`'s share of the total, in `[0, 1]`.
    pub fn share(&self, category: &str) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.ns(category) as f64 / total as f64
    }
}

/// The trace of the most recently finished root span named `name` —
/// i.e. the last fully-measured request of that kind in the sink.
pub fn last_root(spans: &[Span], name: &str) -> Option<TraceId> {
    spans
        .iter()
        .rev()
        .find(|s| s.parent.is_none() && s.name == name)
        .map(|s| s.trace)
}
