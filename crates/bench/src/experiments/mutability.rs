//! E3 — Figure 1: the object-mutability transition matrix.
//!
//! Regenerates the figure as the full 4×4 matrix (the figure draws the
//! allowed arrows; the matrix is its adjacency form), and verifies the
//! semantic invariants the lattice exists for.

use pcsi_core::Mutability;

/// The rendered matrix: `(level labels, matrix[from][to])`.
pub fn matrix() -> ([&'static str; 4], [[bool; 4]; 4]) {
    let labels = [
        Mutability::ALL[0].as_str(),
        Mutability::ALL[1].as_str(),
        Mutability::ALL[2].as_str(),
        Mutability::ALL[3].as_str(),
    ];
    (labels, Mutability::transition_matrix())
}

/// The figure's arrows as `(from, to)` pairs (excluding self-loops).
pub fn arrows() -> Vec<(Mutability, Mutability)> {
    let mut out = Vec::new();
    for from in Mutability::ALL {
        for to in Mutability::ALL {
            if from != to && from.can_transition_to(to) {
                out.push((from, to));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_five_arrows() {
        // MUTABLE -> {FIXED_SIZE, APPEND_ONLY, IMMUTABLE},
        // FIXED_SIZE -> IMMUTABLE, APPEND_ONLY -> IMMUTABLE.
        let a = arrows();
        assert_eq!(a.len(), 5, "{a:?}");
        assert!(a.contains(&(Mutability::Mutable, Mutability::FixedSize)));
        assert!(a.contains(&(Mutability::Mutable, Mutability::AppendOnly)));
        assert!(a.contains(&(Mutability::Mutable, Mutability::Immutable)));
        assert!(a.contains(&(Mutability::FixedSize, Mutability::Immutable)));
        assert!(a.contains(&(Mutability::AppendOnly, Mutability::Immutable)));
    }

    #[test]
    fn matrix_diagonal_true() {
        let (_, m) = matrix();
        for (i, row) in m.iter().enumerate() {
            assert!(row[i], "self transition {i} must be allowed");
        }
    }
}
