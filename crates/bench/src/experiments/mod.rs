//! The per-table / per-figure experiment implementations.

pub mod capability;
pub mod consistency;
pub mod crossover;
pub mod efficiency;
pub mod flexibility;
pub mod hotpath;
pub mod mutability;
pub mod pipeline;
pub mod recovery;
pub mod rest_vs_nfs;
pub mod shard_scaling;
pub mod stages;
pub mod streaming;
pub mod table1;
pub mod ycsb;

/// The default seed every experiment uses unless told otherwise — keeps
/// the report and the benches byte-for-byte reproducible.
pub const DEFAULT_SEED: u64 = 0x5245_5354; // "REST"
