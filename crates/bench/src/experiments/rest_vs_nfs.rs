//! E2 — §2.1's in-text comparison: 1 KB fetch via NFS vs DynamoDB-style
//! REST (plus PCSI-native on the same replicated store).
//!
//! Paper: "fetching a 1KB object via the NFS protocol takes 1.5 ms and
//! costs 0.003 USD/M ... whereas fetching the same data from DynamoDB
//! takes 4.3 ms and costs 0.18 USD/M."
//!
//! Shape target: REST ≈ 3× NFS latency and tens-of-× NFS cost. Absolute
//! values differ (our simulated 2021 fabric is faster than the authors'
//! WAN-adjacent testbed); ratios are the claim.

use std::collections::HashMap;
use std::time::Duration;

use pcsi_cloud::nfs::NfsServer;
use pcsi_cloud::rest::RestGateway;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency};
use pcsi_metrics::{Histogram, Quantiles};
use pcsi_net::NodeId;
use pcsi_proto::sign::Credentials;
use pcsi_sim::Sim;
use pcsi_trace::Sampling;

use super::stages::{self, StageBreakdown};

/// Results for one interface.
#[derive(Debug, Clone)]
pub struct InterfaceResult {
    /// Interface label.
    pub label: &'static str,
    /// Mean fetch latency (ns).
    pub mean_ns: f64,
    /// p99 fetch latency (ns).
    pub p99_ns: f64,
    /// Full latency quantile snapshot (p50/p95/p99/p999 from the
    /// histogram the run recorded).
    pub latency: Quantiles,
    /// Metered compute cost per million fetches (USD).
    pub usd_per_million: f64,
}

/// The full E2 result set.
#[derive(Debug, Clone)]
pub struct Results {
    /// NFS-like stateful protocol.
    pub nfs: InterfaceResult,
    /// DynamoDB-like REST.
    pub rest: InterfaceResult,
    /// PCSI-native (references + binary data plane).
    pub pcsi: InterfaceResult,
}

impl Results {
    /// REST latency / NFS latency (paper: 4.3 / 1.5 ≈ 2.9).
    pub fn latency_ratio(&self) -> f64 {
        self.rest.mean_ns / self.nfs.mean_ns
    }

    /// REST cost / NFS cost (paper: 0.18 / 0.003 = 60).
    pub fn cost_ratio(&self) -> f64 {
        self.rest.usd_per_million / self.nfs.usd_per_million
    }
}

/// Runs `fetches` 1 KB GETs on each interface.
pub fn run(seed: u64, fetches: u32) -> Results {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new().metrics(true).build(&h);
        let billing = cloud.billing.clone();
        let mut keys = HashMap::new();
        keys.insert("AK1".to_owned(), Credentials::new("AK1", b"k".to_vec()));
        let rest = RestGateway::deploy(
            cloud.fabric.clone(),
            cloud.store.clone(),
            billing.clone(),
            NodeId(1),
            NodeId(5),
            keys,
        );
        rest.set_metrics(cloud.metrics.clone());
        let nfs = NfsServer::deploy(
            cloud.fabric.clone(),
            billing.clone(),
            NodeId(6),
            b"nfs-secret",
        );
        nfs.set_metrics(cloud.metrics.clone());
        let payload = vec![0x5Au8; 1024];
        let client_node = NodeId(0);

        // --- NFS ---
        let mount = nfs.mount(client_node, b"nfs-secret", "nfs").await.unwrap();
        let fh = mount.lookup("bench-1k", true).await.unwrap();
        mount.write(fh, 0, &payload).await.unwrap();
        let nfs_hist = Histogram::new();
        for _ in 0..fetches {
            let t0 = h.now();
            mount.read(fh, 0, 1024).await.unwrap();
            nfs_hist.record_duration(h.now() - t0);
        }

        // --- REST ---
        let rc = rest.client(client_node, Credentials::new("AK1", b"k".to_vec()));
        rc.kv_put("bench", "obj-1k", &payload).await.unwrap();
        let rest_hist = Histogram::new();
        let rest_reqs_before = billing.request_count("AK1");
        let rest_cost_before = billing.invoice("AK1").compute;
        for _ in 0..fetches {
            let t0 = h.now();
            rc.kv_get("bench", "obj-1k").await.unwrap();
            rest_hist.record_duration(h.now() - t0);
        }
        let rest_reqs = billing.request_count("AK1") - rest_reqs_before;
        // Compute-metered provider cost only: the flat API-metering fee
        // (0.20 USD/M, REST-only) is reported separately by the report
        // binary; the paper's 60x is about work per request.
        let rest_cost = billing.invoice("AK1").compute - rest_cost_before;

        // --- PCSI-native ---
        let kc = cloud.kernel.client(client_node, "pcsi");
        let obj = kc
            .create(
                CreateOptions::regular()
                    .with_consistency(Consistency::Eventual)
                    .with_initial(payload.clone()),
            )
            .await
            .unwrap();
        let pcsi_hist = Histogram::new();
        for _ in 0..fetches {
            let t0 = h.now();
            kc.read(&obj, 0, 1024).await.unwrap();
            pcsi_hist.record_duration(h.now() - t0);
        }

        // Cost accounting. NFS: per-op compute metered at the server.
        // PCSI: we meter the replica-side CPU analogously (binary decode +
        // handle work ~ the same 3 us class as NFS; charge it explicitly
        // so the comparison is apples-to-apples).
        let nfs_cost = billing.invoice("nfs").compute;
        let pcsi_per_op = Duration::from_micros(2); // Capability table hit + dispatch.
        let pcsi_cost = pcsi_per_op.as_secs_f64() * (0.048 / 3600.0) * f64::from(fetches);

        let per_m = |total: f64, n: f64| total / n * 1e6;
        let result = |label, hist: &Histogram, usd_per_million| {
            let q = hist.quantiles();
            InterfaceResult {
                label,
                mean_ns: q.mean as f64,
                p99_ns: q.p99 as f64,
                latency: q,
                usd_per_million,
            }
        };
        Results {
            nfs: result(
                "NFS-like stateful protocol",
                &nfs_hist,
                per_m(nfs_cost, f64::from(fetches + 2)),
            ),
            rest: result(
                "DynamoDB-like REST",
                &rest_hist,
                per_m(rest_cost, rest_reqs as f64),
            ),
            pcsi: result(
                "PCSI-native (reference + binary)",
                &pcsi_hist,
                per_m(pcsi_cost, f64::from(fetches)),
            ),
        }
    })
}

/// Trace-derived stage splits of one warm 1 KB GET per interface.
#[derive(Debug, Clone)]
pub struct StageResults {
    /// NFS-like stateful protocol.
    pub nfs: StageBreakdown,
    /// DynamoDB-like REST.
    pub rest: StageBreakdown,
    /// PCSI-native.
    pub pcsi: StageBreakdown,
}

/// Traces one warm fetch per interface on the default 2021 network and
/// splits it into protocol / network / storage self time — the
/// span-level explanation of [`Results`]' latency ratio: the REST path
/// carries ~60× the protocol CPU of the NFS path.
pub fn stage_breakdown(seed: u64) -> StageResults {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move {
        let cloud = CloudBuilder::new().tracing(Sampling::Always).build(&h);
        let tracer = cloud.tracer.clone().expect("tracing enabled");
        let billing = cloud.billing.clone();
        let mut keys = HashMap::new();
        keys.insert("AK1".to_owned(), Credentials::new("AK1", b"k".to_vec()));
        let rest = RestGateway::deploy(
            cloud.fabric.clone(),
            cloud.store.clone(),
            billing.clone(),
            NodeId(1),
            NodeId(5),
            keys,
        );
        rest.set_tracer(Some(tracer.clone()));
        let nfs = NfsServer::deploy(
            cloud.fabric.clone(),
            billing.clone(),
            NodeId(6),
            b"nfs-secret",
        );
        nfs.set_tracer(Some(tracer.clone()));
        let payload = vec![0x5Au8; 1024];
        let client_node = NodeId(0);

        let mount = nfs.mount(client_node, b"nfs-secret", "nfs").await.unwrap();
        let fh = mount.lookup("bench-1k", true).await.unwrap();
        mount.write(fh, 0, &payload).await.unwrap();
        mount.read(fh, 0, 1024).await.unwrap();

        let rc = rest.client(client_node, Credentials::new("AK1", b"k".to_vec()));
        rc.kv_put("bench", "obj-1k", &payload).await.unwrap();
        rc.kv_get("bench", "obj-1k").await.unwrap();
        rc.kv_get("bench", "obj-1k").await.unwrap();

        let kc = cloud.kernel.client(client_node, "pcsi");
        let obj = kc
            .create(
                CreateOptions::regular()
                    .with_consistency(Consistency::Eventual)
                    .with_initial(payload.clone()),
            )
            .await
            .unwrap();
        kc.read(&obj, 0, 1024).await.unwrap();
        kc.read(&obj, 0, 1024).await.unwrap();

        let spans = tracer.sink().snapshot();
        let pick = |name: &str| stages::last_root(&spans, name).expect("traced request");
        StageResults {
            nfs: StageBreakdown::of(&spans, pick("nfs.request")),
            rest: StageBreakdown::of(&spans, pick("rest.request")),
            pcsi: StageBreakdown::of(&spans, pick("kernel.read")),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn stage_breakdown_explains_the_gap() {
        let s = stage_breakdown(DEFAULT_SEED);
        // The interfaces differ in protocol CPU, not in wire or media:
        // REST burns an order of magnitude more than NFS per fetch.
        let rest_protocol = s.rest.ns(stages::PROTOCOL);
        let nfs_protocol = s.nfs.ns(stages::PROTOCOL);
        assert!(
            rest_protocol > 10 * nfs_protocol,
            "REST protocol {rest_protocol} ns vs NFS {nfs_protocol} ns"
        );
        // PCSI-native's protocol overhead is below even NFS's.
        assert!(s.pcsi.ns(stages::PROTOCOL) <= nfs_protocol);
    }

    #[test]
    fn ratios_match_paper_shape() {
        let r = run(DEFAULT_SEED, 200);
        let lat = r.latency_ratio();
        let cost = r.cost_ratio();
        assert!((2.0..5.0).contains(&lat), "latency ratio {lat:.2}");
        assert!((20.0..200.0).contains(&cost), "cost ratio {cost:.1}");
        // PCSI-native beats both on the *replicated* store.
        assert!(r.pcsi.mean_ns < r.rest.mean_ns / 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(7, 50);
        let b = run(7, 50);
        assert_eq!(a.rest.mean_ns, b.rest.mean_ns);
        assert_eq!(a.nfs.p99_ns, b.nfs.p99_ns);
    }
}
