//! Hot-path events/sec microbenchmarks (the perf-trajectory suite).
//!
//! Everything else in this crate measures *virtual* time — latencies on
//! the simulated clock, which the scheduler and codec rewrites must not
//! change at all. This module measures the opposite axis: how much
//! *host* wall-clock the simulator burns to push a fixed, deterministic
//! amount of simulated work through the executor, the fabric, and the
//! wire codec. Each experiment's event count is derived from the
//! deterministic run itself (poll counts, fabric messages, completed
//! ops), so two trees running the same seed process byte-identical
//! schedules and the events/sec ratio reduces to a pure wall-clock
//! ratio — which is exactly what a perf PR needs to prove.
//!
//! | experiment    | hot path exercised                                |
//! |---------------|---------------------------------------------------|
//! | `wire_codec`  | request/response encode + decode, no simulator    |
//! | `timer_churn` | executor timer registration / firing              |
//! | `rpc_echo`    | fabric delivery (timers + jitter + counters)      |
//! | `driver_sweep`| full stack: YCSB-style open loop + chaos scenarios|

use std::rc::Rc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use pcsi_chaos::{run_scenario, ScenarioConfig};
use pcsi_cloud::workload::{boxed, drive_open_loop, RateShape, ZipfKeys};
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency, Mutability, ObjectId};
use pcsi_net::{Fabric, LatencyModel, NetworkGeneration, NodeId, Topology, Transport};
use pcsi_sim::Sim;
use pcsi_store::engine::Mutation;
use pcsi_store::version::Tag;
use pcsi_store::wire::{self, Request, Response};

use super::table1;

/// One experiment's outcome: a deterministic event count over a
/// measured wall-clock interval.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Experiment name (stable; keys the snapshot JSON).
    pub name: &'static str,
    /// Host wall-clock the run took.
    pub wall: Duration,
    /// Deterministic events processed (same for every run of the seed).
    pub events: u64,
}

impl ExpResult {
    /// Bundles a measurement.
    pub fn new(name: &'static str, wall: Duration, events: u64) -> Self {
        ExpResult { name, wall, events }
    }

    /// Wall-clock in fractional milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }

    /// Events per host second.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }
}

/// The full suite's outcome, ready for [`crate::snapshot::render`].
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Seed that drove every experiment.
    pub seed: u64,
    /// Per-experiment measurements, in run order.
    pub experiments: Vec<ExpResult>,
    /// Table-1 latencies `(label, simulated ns)` — carried in the
    /// snapshot so a perf PR also shows it did not move modeled time.
    pub table1_ns: Vec<(String, f64)>,
    /// Pooled-buffer hits over the suite (allocation proxy).
    pub pool_hits: u64,
    /// Pooled-buffer misses over the suite (allocation proxy).
    pub pool_misses: u64,
}

impl SuiteResult {
    /// The headline number: the end-to-end `driver_sweep` events/sec.
    pub fn headline_events_per_sec(&self) -> f64 {
        self.experiments
            .iter()
            .find(|e| e.name == "driver_sweep")
            .map(ExpResult::events_per_sec)
            .unwrap_or(0.0)
    }
}

/// Runs every experiment and collects the snapshot inputs.
pub fn run_suite(seed: u64) -> SuiteResult {
    let experiments = vec![
        wire_codec(seed),
        timer_churn(seed),
        rpc_echo(seed),
        driver_sweep(seed),
    ];
    let table1_ns = table1::run(seed)
        .into_iter()
        .map(|r| (r.label, r.ours_ns))
        .collect();
    let (pool_hits, pool_misses) = bytes::pool_stats();
    SuiteResult {
        seed,
        experiments,
        table1_ns,
        pool_hits,
        pool_misses,
    }
}

/// Codec-only: encode and decode a payload-bearing request and
/// response pair, round and round. One iteration = 4 events.
pub fn wire_codec(seed: u64) -> ExpResult {
    const ITERS: u64 = 100_000;
    let payload = Bytes::from(vec![0xA5u8; 1024]);
    let req = Request::Coordinate {
        id: ObjectId::from_parts(7, seed),
        mutation: Mutation::PutFull {
            data: payload.clone(),
            mutability: Mutability::Mutable,
        },
        sync_replicas: 2,
        req_id: 42,
        expires_ns: 0,
    };
    let resp = Response::Data {
        tag: Tag { seq: 9, writer: 1 },
        mutability: Mutability::Mutable,
        stable_len: payload.len() as u64,
        data: payload,
    };
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let req_frame = wire::encode_request(&req);
        let decoded_req = wire::decode_request(&req_frame).expect("request roundtrip");
        std::hint::black_box(decoded_req);
        let resp_frame = wire::encode_response(&resp);
        let decoded_resp = wire::decode_response(&resp_frame).expect("response roundtrip");
        std::hint::black_box(decoded_resp);
    }
    ExpResult::new("wire_codec", t0.elapsed(), ITERS * 4)
}

/// Executor-only: many tasks each sleeping through many jittered
/// timers. Events = task polls (each sleep registers and fires one
/// timer).
pub fn timer_churn(seed: u64) -> ExpResult {
    const TASKS: u64 = 256;
    const ROUNDS: u64 = 800;
    let t0 = Instant::now();
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on({
        let h = h.clone();
        async move {
            let mut joins = Vec::new();
            for w in 0..TASKS {
                let h2 = h.clone();
                let rng = h.rng().stream_indexed("bench-timer", w);
                joins.push(h.spawn(async move {
                    for _ in 0..ROUNDS {
                        h2.sleep(Duration::from_nanos(rng.gen_range(50..5_000)))
                            .await;
                    }
                }));
            }
            for j in joins {
                j.await;
            }
        }
    });
    ExpResult::new("timer_churn", t0.elapsed(), sim.poll_count())
}

/// Fabric-only: back-to-back RPC echoes across racks. Every call pays
/// the full delivery pipeline (fault draws, jitter draw, endpoint
/// overheads, egress serialization) twice. Events = messages + polls.
pub fn rpc_echo(seed: u64) -> ExpResult {
    const CALLS: u64 = 20_000;
    let t0 = Instant::now();
    let mut sim = Sim::new(seed);
    let fabric = Fabric::new(
        sim.handle(),
        Topology::uniform(2, 2),
        LatencyModel::new(NetworkGeneration::Dc2021),
    );
    fabric.bind(
        NodeId(3),
        "echo",
        Rc::new(|payload, _ctx| Box::pin(async move { Ok(payload) })),
    );
    let messages = sim.block_on({
        let fabric = fabric.clone();
        async move {
            let payload = Bytes::from(vec![0x5Au8; 256]);
            for _ in 0..CALLS {
                fabric
                    .call(
                        NodeId(0),
                        NodeId(3),
                        "echo",
                        Transport::Rdma,
                        payload.clone(),
                    )
                    .await
                    .expect("echo on a healthy fabric");
            }
            fabric.message_count()
        }
    });
    ExpResult::new("rpc_echo", t0.elapsed(), messages + sim.poll_count())
}

/// The headline end-to-end driver: a YCSB-style zipf-keyed open-loop
/// mix over the full cloud stack, followed by a sweep of default
/// (mixed-fault) chaos scenarios. Events = fabric messages + executor
/// polls from the open-loop run, plus completed chaos ops.
pub fn driver_sweep(seed: u64) -> ExpResult {
    const KEYS: usize = 64;
    const VALUE: usize = 256;
    const CHAOS_RUNS: u64 = 8;
    let t0 = Instant::now();

    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let mut events = sim.block_on({
        let h = h.clone();
        async move {
            let cloud = CloudBuilder::new().build(&h);
            let c = cloud.kernel.client(NodeId(0), "bench");
            let mut refs = Vec::with_capacity(KEYS);
            for k in 0..KEYS {
                let opts = match k % 4 {
                    0 => CreateOptions::regular()
                        .with_consistency(Consistency::Linearizable)
                        .with_initial(vec![1u8; VALUE]),
                    1 => CreateOptions::immutable(vec![2u8; VALUE]),
                    _ => CreateOptions::regular().with_initial(vec![3u8; VALUE]),
                };
                refs.push(c.create(opts).await.expect("create on a healthy cluster"));
            }
            // Shared, not cloned per request: the per-op closure runs at
            // 4k rps and a Vec clone there is pure driver overhead.
            let refs = Rc::new(refs);
            let rng = h.rng().stream("bench-driver");
            let keys = ZipfKeys::new(h.rng().stream("bench-zipf"), KEYS as u64, 0.99);
            let stats = drive_open_loop(
                &h,
                &rng,
                RateShape::Steady { rps: 4_000.0 },
                Duration::from_secs(10),
                {
                    let c = c.clone();
                    move |i| {
                        let c = c.clone();
                        let keys = keys.clone();
                        let refs = Rc::clone(&refs);
                        boxed(async move {
                            let k = keys.next_key() as usize;
                            let r = &refs[k];
                            // Immutable keys only read; the rest go 50/50.
                            if k % 4 == 1 || i % 2 == 0 {
                                c.read(r, 0, 64)
                                    .await
                                    .map(|_| ())
                                    .map_err(|e| e.to_string())
                            } else {
                                // Pool-backed so steady-state writes stop
                                // allocating value buffers.
                                let mut value = bytes::BytesMut::with_capacity(64);
                                value.extend_from_slice(&[i as u8; 64]);
                                c.write(r, 0, value.freeze())
                                    .await
                                    .map(|_| ())
                                    .map_err(|e| e.to_string())
                            }
                        })
                    }
                },
            )
            .await;
            cloud.fabric.message_count() + stats.issued.get()
        }
    });
    events += sim.poll_count();

    for i in 0..CHAOS_RUNS {
        let report = run_scenario(seed.wrapping_add(0xC0FFEE + i), &ScenarioConfig::default());
        assert!(report.ok(), "chaos sweep violation at seed offset {i}");
        events += report.ops.len() as u64;
    }
    ExpResult::new("driver_sweep", t0.elapsed(), events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The suite's event counts must be seed-deterministic: the whole
    /// snapshot design (baseline vs current comparing pure wall-clock)
    /// rests on both trees processing identical schedules.
    #[test]
    fn event_counts_are_deterministic() {
        let a = timer_churn(11);
        let b = timer_churn(11);
        assert_eq!(a.events, b.events);
        let a = rpc_echo(11);
        let b = rpc_echo(11);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn events_per_sec_is_sane() {
        let r = ExpResult::new("x", Duration::from_millis(500), 1_000);
        assert!((r.events_per_sec() - 2_000.0).abs() < 1e-6);
        assert!((r.wall_ms() - 500.0).abs() < 1e-9);
    }
}
