//! Horizontal scaling of the sharded store (`BENCH_<pr>.json`'s
//! `shard_scaling` block).
//!
//! One deterministic run, three measured windows on the virtual clock:
//!
//! 1. **before** — a closed-loop write-heavy workload saturates a
//!    3-node placement ring (every replica set lands on the same three
//!    NVMe gates, so aggregate throughput is pinned by their IO time),
//! 2. **during** — the workload keeps running while the other nine
//!    storage nodes join (pins stack, so each object migrates once, to
//!    its final owners) and a [`Pacer`]-throttled drain moves the data —
//!    the window whose p99 proves data movement stays background noise
//!    rather than a stall,
//! 3. **after** — the same workload on the full 12-node ring.
//!
//! Consistent hashing spreads the replica sets across all twelve IO
//! gates, so `after/before` approaches the 4× node ratio; the snapshot
//! asserts ≥ 3× and a bounded migration-window p99.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::{Consistency, Mutability, ObjectId};
use pcsi_net::{Fabric, LatencyModel, NetworkGeneration, NodeId, Topology};
use pcsi_sim::util::Pacer;
use pcsi_sim::{Sim, SimHandle};
use pcsi_store::{ReplicatedStore, StoreConfig};

/// Storage nodes in the initial placement ring.
pub const RING_BEFORE: usize = 3;
/// Storage nodes after every join has drained.
pub const RING_AFTER: usize = 12;

const WORKERS: usize = 64;
const VALUE_BYTES: usize = 4096;
const PHASE: Duration = Duration::from_millis(20);
const PACE: Duration = Duration::from_micros(150);

/// The scaling experiment's outcome (all time on the virtual clock).
#[derive(Debug, Clone)]
pub struct ShardScalingResult {
    /// Ring size of the `before` window.
    pub nodes_before: usize,
    /// Ring size once every join drained.
    pub nodes_after: usize,
    /// Aggregate ops per virtual second on the small ring.
    pub tput_before: f64,
    /// Aggregate ops per virtual second on the full ring.
    pub tput_after: f64,
    /// p99 operation latency (µs) on the small ring.
    pub p99_before_us: f64,
    /// p99 operation latency (µs) while shards migrated.
    pub p99_migration_us: f64,
    /// p99 operation latency (µs) on the full ring.
    pub p99_after_us: f64,
    /// Objects migrated across all nine joins.
    pub objects_moved: usize,
}

impl ShardScalingResult {
    /// Aggregate throughput gain from scaling the ring out.
    pub fn ratio(&self) -> f64 {
        if self.tput_before > 0.0 {
            self.tput_after / self.tput_before
        } else {
            0.0
        }
    }
}

/// One measurement window's raw counters.
struct Window {
    ops: u64,
    secs: f64,
    p99_us: f64,
}

/// Shared open/closed switchboard between the driver and the workers.
struct Bench {
    store: ReplicatedStore,
    /// Latencies (ns) of ops completed in the current window.
    window: RefCell<Vec<u64>>,
    /// Workers only record while this is set.
    recording: Cell<bool>,
    stop: Cell<bool>,
}

fn p99_us(lat_ns: &mut [u64]) -> f64 {
    if lat_ns.is_empty() {
        return 0.0;
    }
    lat_ns.sort_unstable();
    let idx = (lat_ns.len() as f64 * 0.99) as usize;
    lat_ns[idx.min(lat_ns.len() - 1)] as f64 / 1e3
}

/// Runs the whole scale-out story and returns the measured windows.
pub fn run(seed: u64) -> ShardScalingResult {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    sim.block_on(async move { drive(h).await })
}

async fn drive(h: SimHandle) -> ShardScalingResult {
    let topo = Topology::uniform(4, 3);
    let fabric = Fabric::new(
        h.clone(),
        topo,
        LatencyModel::deterministic(NetworkGeneration::Dc2021),
    );
    let nodes = fabric.topology().node_ids();
    assert_eq!(nodes.len(), RING_AFTER);
    let ring: Vec<NodeId> = nodes[..RING_BEFORE].to_vec();
    let store = ReplicatedStore::launch(
        fabric.clone(),
        nodes.clone(),
        StoreConfig {
            anti_entropy: None,
            cache_bytes: 0,
            ring_nodes: Some(ring),
            ..StoreConfig::default()
        },
    );

    // One private object per worker: contention-free writes, so the
    // measured ceiling is the storage gates, not tag races.
    let mut objects = Vec::with_capacity(WORKERS);
    for w in 0..WORKERS {
        let id = ObjectId::from_parts(0x5CA1E, w as u64);
        store
            .client(nodes[w % nodes.len()])
            .put(
                id,
                Bytes::from(vec![0u8; VALUE_BYTES]),
                Mutability::Mutable,
                Consistency::Linearizable,
            )
            .await
            .expect("seed put on a healthy cluster");
        objects.push(id);
    }

    let bench = Rc::new(Bench {
        store: store.clone(),
        window: RefCell::new(Vec::new()),
        recording: Cell::new(false),
        stop: Cell::new(false),
    });

    // Closed-loop workers: as soon as one write completes, issue the
    // next. 3 writes per read keeps the load IO-gate-bound end to end.
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let bench = bench.clone();
        let h2 = h.clone();
        let client = bench.store.client(nodes[w % nodes.len()]);
        let id = objects[w];
        let rng = h.rng().stream_indexed("shard-scaling-worker", w as u64);
        workers.push(h.spawn(async move {
            let mut i = 0u64;
            while !bench.stop.get() {
                let t0 = h2.now();
                let result = if i % 4 == 3 {
                    client
                        .read_all(id, Consistency::Linearizable)
                        .await
                        .map(|_| ())
                } else {
                    let fill = (i % 251) as u8;
                    client
                        .write_at(
                            id,
                            0,
                            Bytes::from(vec![fill; VALUE_BYTES]),
                            Consistency::Linearizable,
                        )
                        .await
                        .map(|_| ())
                };
                if result.is_ok() && bench.recording.get() {
                    let dt = h2.now().as_nanos() - t0.as_nanos();
                    bench.window.borrow_mut().push(dt);
                }
                i += 1;
                // A tiny jittered yield decorrelates the workers'
                // arrival phases without moving the throughput needle.
                h2.sleep(Duration::from_nanos(rng.gen_range(50..500))).await;
            }
        }));
    }

    let measure = |bench: Rc<Bench>, h: SimHandle| async move {
        bench.window.borrow_mut().clear();
        bench.recording.set(true);
        let t0 = h.now();
        h.sleep(PHASE).await;
        bench.recording.set(false);
        let secs = (h.now().as_nanos() - t0.as_nanos()) as f64 / 1e9;
        let mut lat = std::mem::take(&mut *bench.window.borrow_mut());
        Window {
            ops: lat.len() as u64,
            secs,
            p99_us: p99_us(&mut lat),
        }
    };

    // Warm-up, then the three windows.
    h.sleep(Duration::from_millis(5)).await;
    let before = measure(bench.clone(), h.clone()).await;

    bench.window.borrow_mut().clear();
    bench.recording.set(true);
    let t0 = h.now();
    let pacer = Pacer::new(h.clone(), PACE);
    // Admit all nine joins up front: pins stack (an object already
    // mid-move keeps its pinned owners, only the target retargets), so
    // one drain moves each object straight to its 12-node-ring owners
    // instead of cascading it through nine intermediate rings.
    for &joiner in &nodes[RING_BEFORE..] {
        store.begin_join(joiner);
    }
    let mut moved = 0usize;
    while !store.placement().pending_moves().is_empty() {
        match store.drain_moves(Some(&pacer)).await {
            Ok(n) => moved += n,
            // Retryable stall (never expected on a healthy fabric).
            Err(_) => h.sleep(Duration::from_millis(1)).await,
        }
    }
    bench.recording.set(false);
    let migration_secs = (h.now().as_nanos() - t0.as_nanos()) as f64 / 1e9;
    let mut lat = std::mem::take(&mut *bench.window.borrow_mut());
    let during = Window {
        ops: lat.len() as u64,
        secs: migration_secs,
        p99_us: p99_us(&mut lat),
    };
    assert_eq!(store.placement().storage_nodes().len(), RING_AFTER);

    let after = measure(bench.clone(), h.clone()).await;

    bench.stop.set(true);
    for w in workers {
        w.await;
    }
    let _ = during.ops;
    let _ = during.secs;

    ShardScalingResult {
        nodes_before: RING_BEFORE,
        nodes_after: RING_AFTER,
        tput_before: before.ops as f64 / before.secs,
        tput_after: after.ops as f64 / after.secs,
        p99_before_us: before.p99_us,
        p99_migration_us: during.p99_us,
        p99_after_us: after.p99_us,
        objects_moved: moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: scaling the ring 3 → 12 nodes must lift
    /// aggregate throughput ≥ 3×, and the migration window's p99 must
    /// stay bounded — background data movement, not a stall.
    #[test]
    fn scale_out_triples_throughput_with_bounded_migration_p99() {
        let r = run(0x5CA1E);
        assert!(r.objects_moved > 0, "no shards migrated");
        assert!(
            r.ratio() >= 3.0,
            "scaling 3→12 nodes only gained {:.2}x ({:.0} -> {:.0} ops/s)",
            r.ratio(),
            r.tput_before,
            r.tput_after
        );
        assert!(
            r.p99_migration_us <= 10_000.0,
            "migration-window p99 {}us exceeds the 10ms bound",
            r.p99_migration_us
        );
        assert!(
            r.p99_migration_us <= 25.0 * r.p99_before_us.max(1.0),
            "migration-window p99 {}us is unbounded relative to baseline {}us",
            r.p99_migration_us,
            r.p99_before_us
        );
    }

    /// Same seed, same virtual-clock numbers: the experiment is part of
    /// the deterministic suite.
    #[test]
    fn results_are_deterministic() {
        let a = run(11);
        let b = run(11);
        assert_eq!(a.tput_before.to_bits(), b.tput_before.to_bits());
        assert_eq!(a.tput_after.to_bits(), b.tput_after.to_bits());
        assert_eq!(a.p99_migration_us.to_bits(), b.p99_migration_us.to_bits());
        assert_eq!(a.objects_moved, b.objects_moved);
    }
}
