//! Criterion benches for the computation-side experiments (E4, E5, E6).
//!
//! Virtual-time measurements (see `benches/interfaces.rs` for the
//! convention): per-request latency of the Figure-2 pipeline under each
//! placement strategy, per-variant inference latency, and per-request
//! latency under the two provisioning modes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use pcsi_cloud::pipelines::{ModelServing, Strategy};
use pcsi_cloud::CloudBuilder;
use pcsi_net::NodeId;
use pcsi_sim::Sim;

const SEED: u64 = 0x5245_5354;
const WEIGHTS: usize = 64 << 20;
const UPLOAD: usize = 8 << 20;

/// E4: one warm pipeline request per strategy.
fn pipeline_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/pipeline-request");
    g.sample_size(10);
    for strategy in Strategy::ALL {
        g.bench_function(strategy.label(), |b| {
            b.iter_custom(|iters| {
                let mut sim = Sim::new(SEED);
                let h = sim.handle();
                sim.block_on(async move {
                    let cloud = CloudBuilder::new().deterministic_network().build(&h);
                    let app = ModelServing::deploy(&cloud, NodeId(0), WEIGHTS)
                        .await
                        .unwrap();
                    let report = app.run(strategy, 2, iters, UPLOAD, "gpu").await.unwrap();
                    Duration::from_nanos((report.latency.mean() * report.requests as f64) as u64)
                })
            });
        });
    }
    g.finish();
}

/// E6: the same pipeline stage on each accelerator variant.
fn inference_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6/infer-variant");
    g.sample_size(10);
    for variant in ["cpu", "gpu", "tpu"] {
        g.bench_function(variant, |b| {
            b.iter_custom(|iters| {
                let mut sim = Sim::new(SEED);
                let h = sim.handle();
                sim.block_on(async move {
                    let cloud = CloudBuilder::new().deterministic_network().build(&h);
                    let mut app = ModelServing::deploy(&cloud, NodeId(0), WEIGHTS)
                        .await
                        .unwrap();
                    app.add_infer_variant(pcsi_cloud::pipelines::tpu_variant(40.0));
                    let report = app
                        .run(Strategy::Colocated, 2, iters, UPLOAD, variant)
                        .await
                        .unwrap();
                    Duration::from_nanos((report.latency.mean() * report.requests as f64) as u64)
                })
            });
        });
    }
    g.finish();
}

/// E5: per-invocation latency under the two provisioning modes at a
/// steady medium load (the cost/efficiency side lives in the report).
fn provisioning_modes(c: &mut Criterion) {
    use bytes::Bytes;
    use pcsi_cloud::workload::{boxed, drive_open_loop, RateShape};
    use pcsi_core::api::{CreateOptions, InvokeRequest};
    use pcsi_core::{CloudInterface, Consistency, Mutability, ObjectKind};
    use pcsi_faas::function::{FunctionImage, WorkModel};
    use pcsi_faas::scheduler::PlacementPolicy;

    let mut g = c.benchmark_group("e5/request-under-load");
    g.sample_size(10);
    for (label, policy, keep_alive) in [
        (
            "scavenged",
            PlacementPolicy::Scavenge,
            Duration::from_secs(3),
        ),
        (
            "dedicated",
            PlacementPolicy::LoadBalance,
            Duration::from_secs(100_000),
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut sim = Sim::new(SEED);
                let h = sim.handle();
                sim.block_on(async move {
                    let cloud = CloudBuilder::new()
                        .placement(policy)
                        .keep_alive(keep_alive)
                        .deterministic_network()
                        .build(&h);
                    cloud.kernel.register_body(
                        "svc",
                        std::rc::Rc::new(|ctx| {
                            Box::pin(async move {
                                ctx.compute(Duration::from_millis(10)).await;
                                Ok(Bytes::new())
                            })
                        }),
                    );
                    let client = cloud.kernel.client(NodeId(0), "a");
                    let image = FunctionImage::simple(
                        "svc",
                        WorkModel::fixed(Duration::from_millis(10)),
                        2,
                    );
                    let f = client
                        .create(CreateOptions {
                            kind: ObjectKind::Function,
                            mutability: Mutability::Mutable,
                            consistency: Consistency::Linearizable,
                            initial: image.encode(),
                            fifo_capacity: None,
                        })
                        .await
                        .unwrap();
                    let rng = h.rng().stream("bench-driver");
                    let run_for = Duration::from_secs_f64((iters as f64 / 100.0).clamp(1.0, 30.0));
                    let stats =
                        drive_open_loop(&h, &rng, RateShape::Steady { rps: 100.0 }, run_for, {
                            let client = client.clone();
                            let f = f.clone();
                            move |_| {
                                let client = client.clone();
                                let f = f.clone();
                                boxed(async move {
                                    client
                                        .invoke(&f, InvokeRequest::default())
                                        .await
                                        .map(|_| ())
                                        .map_err(|e| e.to_string())
                                })
                            }
                        })
                        .await;
                    Duration::from_nanos(stats.latency.mean() * iters)
                })
            });
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = pipeline_strategies, inference_variants, provisioning_modes
}
criterion_main!(benches);
