//! Criterion benches for the interface comparisons (E2, E8, E9).
//!
//! These report **virtual time**: each `iter_custom` call runs one
//! deterministic simulation performing `iters` operations and returns the
//! summed simulated latency, so criterion's statistics are statistics of
//! the modeled system, not of the host.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use pcsi_cloud::nfs::NfsServer;
use pcsi_cloud::rest::RestGateway;
use pcsi_cloud::CloudBuilder;
use pcsi_core::api::CreateOptions;
use pcsi_core::{CloudInterface, Consistency};
use pcsi_net::{NetworkGeneration, NodeId};
use pcsi_proto::sign::Credentials;
use pcsi_sim::Sim;

const SEED: u64 = 0x5245_5354;

/// E2: 1 KB fetch through each interface (2021 network).
fn fetch_1k(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2/fetch-1k");
    g.sample_size(10);

    g.bench_function("nfs-stateful", |b| {
        b.iter_custom(|iters| {
            let mut sim = Sim::new(SEED);
            let h = sim.handle();
            sim.block_on(async move {
                let cloud = CloudBuilder::new().deterministic_network().build(&h);
                let nfs =
                    NfsServer::deploy(cloud.fabric.clone(), cloud.billing.clone(), NodeId(6), b"s");
                let m = nfs.mount(NodeId(0), b"s", "a").await.unwrap();
                let fh = m.lookup("f", true).await.unwrap();
                m.write(fh, 0, &vec![1u8; 1024]).await.unwrap();
                let t0 = h.now();
                for _ in 0..iters {
                    m.read(fh, 0, 1024).await.unwrap();
                }
                h.now() - t0
            })
        });
    });

    g.bench_function("rest-signed", |b| {
        b.iter_custom(|iters| {
            let mut sim = Sim::new(SEED);
            let h = sim.handle();
            sim.block_on(async move {
                let cloud = CloudBuilder::new().deterministic_network().build(&h);
                let mut keys = HashMap::new();
                keys.insert("AK".to_owned(), Credentials::new("AK", b"k".to_vec()));
                let rest = RestGateway::deploy(
                    cloud.fabric.clone(),
                    cloud.store.clone(),
                    cloud.billing.clone(),
                    NodeId(1),
                    NodeId(5),
                    keys,
                );
                let rc = rest.client(NodeId(0), Credentials::new("AK", b"k".to_vec()));
                rc.kv_put("t", "k", &vec![1u8; 1024]).await.unwrap();
                let t0 = h.now();
                for _ in 0..iters {
                    rc.kv_get("t", "k").await.unwrap();
                }
                h.now() - t0
            })
        });
    });

    g.bench_function("pcsi-native", |b| {
        b.iter_custom(|iters| {
            let mut sim = Sim::new(SEED);
            let h = sim.handle();
            sim.block_on(async move {
                let cloud = CloudBuilder::new().deterministic_network().build(&h);
                let kc = cloud.kernel.client(NodeId(0), "a");
                let obj = kc
                    .create(
                        CreateOptions::regular()
                            .with_consistency(Consistency::Eventual)
                            .with_initial(vec![1u8; 1024]),
                    )
                    .await
                    .unwrap();
                let t0 = h.now();
                for _ in 0..iters {
                    kc.read(&obj, 0, 1024).await.unwrap();
                }
                h.now() - t0
            })
        });
    });
    g.finish();
}

/// E9: the PCSI-native fetch across network generations — watch the
/// number track the hardware (the REST equivalent barely moves; see the
/// report for the side-by-side).
fn crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/pcsi-fetch-by-network");
    g.sample_size(10);
    for generation in NetworkGeneration::ALL {
        g.bench_function(format!("{generation:?}"), |b| {
            b.iter_custom(|iters| {
                let mut sim = Sim::new(SEED);
                let h = sim.handle();
                sim.block_on(async move {
                    let cloud = CloudBuilder::new()
                        .network(generation)
                        .deterministic_network()
                        .build(&h);
                    let kc = cloud.kernel.client(NodeId(0), "a");
                    let obj = kc
                        .create(
                            CreateOptions::regular()
                                .with_consistency(Consistency::Eventual)
                                .with_initial(vec![1u8; 1024]),
                        )
                        .await
                        .unwrap();
                    let t0 = h.now();
                    for _ in 0..iters {
                        kc.read(&obj, 0, 1024).await.unwrap();
                    }
                    h.now() - t0
                })
            });
        });
    }
    g.finish();
}

/// E8: consistency-menu operation costs (write path).
fn consistency_menu(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7/write-1k");
    g.sample_size(10);
    for consistency in Consistency::ALL {
        g.bench_function(consistency.as_str(), |b| {
            b.iter_custom(|iters| {
                let mut sim = Sim::new(SEED);
                let h = sim.handle();
                sim.block_on(async move {
                    let cloud = CloudBuilder::new().deterministic_network().build(&h);
                    let kc = cloud.kernel.client(NodeId(0), "a");
                    let obj = kc
                        .create(
                            CreateOptions::regular()
                                .with_consistency(consistency)
                                .with_initial(vec![0u8; 1024]),
                        )
                        .await
                        .unwrap();
                    let t0 = h.now();
                    for i in 0..iters {
                        kc.write(&obj, 0, bytes::Bytes::from(vec![i as u8; 1024]))
                            .await
                            .unwrap();
                    }
                    h.now() - t0
                })
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e7/read-1k");
    g.sample_size(10);
    for consistency in Consistency::ALL {
        g.bench_function(consistency.as_str(), |b| {
            b.iter_custom(|iters| {
                let mut sim = Sim::new(SEED);
                let h = sim.handle();
                sim.block_on(async move {
                    let cloud = CloudBuilder::new().deterministic_network().build(&h);
                    let kc = cloud.kernel.client(NodeId(0), "a");
                    let obj = kc
                        .create(
                            CreateOptions::regular()
                                .with_consistency(consistency)
                                .with_initial(vec![0u8; 1024]),
                        )
                        .await
                        .unwrap();
                    let t0 = h.now();
                    for _ in 0..iters {
                        kc.read(&obj, 0, 1024).await.unwrap();
                    }
                    h.now() - t0
                })
            });
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fetch_1k, crossover, consistency_menu
}
criterion_main!(benches);
