//! Criterion benches for the substrate itself (supporting, wall-clock).
//!
//! These keep the simulator honest: the executor, channels, histogram and
//! storage-engine hot paths must be cheap enough that large experiments
//! (millions of simulated events) run in seconds of host time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use bytes::Bytes;
use pcsi_core::{Mutability, ObjectId};
use pcsi_sim::metrics::Histogram;
use pcsi_sim::Sim;
use pcsi_store::engine::{MediaTier, Mutation, StorageEngine};
use pcsi_store::version::Tag;

fn executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/executor");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("spawn-join-10k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            sim.block_on(async move {
                let mut joins = Vec::with_capacity(10_000);
                for i in 0..10_000u64 {
                    joins.push(h.spawn(async move { i }));
                }
                let mut acc = 0u64;
                for j in joins {
                    acc = acc.wrapping_add(j.await);
                }
                acc
            })
        });
    });
    g.bench_function("timer-wheel-10k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            sim.block_on(async move {
                let mut joins = Vec::with_capacity(10_000);
                for i in 0..10_000u64 {
                    let h2 = h.clone();
                    joins.push(h.spawn(async move {
                        h2.sleep(Duration::from_nanos(i % 977)).await;
                    }));
                }
                for j in joins {
                    j.await;
                }
            })
        });
    });
    g.finish();
}

fn metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/metrics");
    g.throughput(Throughput::Elements(1));
    g.bench_function("histogram-record", |b| {
        let h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(x % 10_000_000));
        });
    });
    g.bench_function("histogram-p99", |b| {
        let h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i * 37 % 5_000_000);
        }
        b.iter(|| h.quantile(black_box(0.99)));
    });
    g.finish();
}

fn storage_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/engine");
    let id = ObjectId::from_parts(1, 1);
    g.bench_function("put-1k", |b| {
        let mut e = StorageEngine::new(MediaTier::Dram);
        let mut seq = 0u64;
        let data = Bytes::from(vec![7u8; 1024]);
        b.iter(|| {
            seq += 1;
            e.apply(
                id,
                Tag { seq, writer: 0 },
                &Mutation::PutFull {
                    data: data.clone(),
                    mutability: Mutability::Mutable,
                },
            )
            .unwrap();
        });
    });
    g.bench_function("read-1k", |b| {
        let mut e = StorageEngine::new(MediaTier::Dram);
        e.apply(
            id,
            Tag { seq: 1, writer: 0 },
            &Mutation::PutFull {
                data: Bytes::from(vec![7u8; 1024]),
                mutability: Mutability::Mutable,
            },
        )
        .unwrap();
        b.iter(|| e.read(black_box(id), 0, 1024).unwrap());
    });
    g.finish();
}

criterion_group!(benches, executor, metrics, storage_engine);
criterion_main!(benches);
