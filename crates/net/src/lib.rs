#![warn(missing_docs)]
//! # pcsi-net — the simulated datacenter
//!
//! A warehouse-scale computer reduced to the pieces the paper's arguments
//! depend on:
//!
//! * a rack-structured [`topology::Topology`] of [`node::NodeSpec`]s with
//!   heterogeneous resources (CPU cores, GPUs, TPUs, memory),
//! * three [`latency::NetworkGeneration`]s calibrated to Table 1 —
//!   2005 datacenter (1 ms RTT), 2021 datacenter (200 µs RTT), and the
//!   emerging fast network (1 µs RTT),
//! * per-node NIC egress queues so bandwidth contention is modeled, not
//!   assumed away ([`fabric::Fabric`]),
//! * two transports: TCP-like (connection handshake + per-message socket
//!   overhead, Table 1's 5 µs row) and RDMA-like (no socket overhead),
//! * an RPC layer with per-node service registration, and
//! * fault injection: node crashes and network partitions, used by the
//!   storage quorum tests.
//!
//! All time passes on the `pcsi-sim` virtual clock; nothing here touches
//! wall-clock time.

pub mod fabric;
pub mod latency;
pub mod node;
pub mod topology;

pub use fabric::{Fabric, MessageFaults, NetError, Transport};
pub use latency::{LatencyModel, NetworkGeneration};
pub use node::{NodeId, NodeSpec, ResourceKind};
pub use topology::Topology;
