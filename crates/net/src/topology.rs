//! Rack-structured cluster topology.
//!
//! The fabric needs only the hop class between two nodes (same node, same
//! rack, cross rack) — a two-tier leaf/spine abstraction that matches how
//! the paper reasons about locality ("schedule the first CPU function on a
//! physical server that also contains a GPU", §4.1).

use crate::node::{NodeId, NodeSpec};

/// How far apart two endpoints are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HopClass {
    /// Same machine: loopback / shared memory / `cudaMemcpy` distance.
    Local,
    /// Same rack: one ToR switch.
    SameRack,
    /// Different racks: leaf–spine–leaf.
    CrossRack,
}

/// An immutable cluster layout.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
}

impl Topology {
    /// Builds a topology from explicit node specs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "topology needs at least one node");
        Topology { nodes }
    }

    /// A uniform cluster: `racks` racks of `per_rack` compute nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcsi_net::Topology;
    ///
    /// let t = Topology::uniform(4, 8);
    /// assert_eq!(t.len(), 32);
    /// ```
    pub fn uniform(racks: u32, per_rack: u32) -> Self {
        let mut nodes = Vec::new();
        for r in 0..racks {
            for _ in 0..per_rack {
                nodes.push(NodeSpec::compute(r));
            }
        }
        Topology::new(nodes)
    }

    /// A mixed cluster: compute racks plus one GPU rack and one TPU rack,
    /// matching the heterogeneous pools of §4.2/§4.3.
    pub fn heterogeneous(compute_racks: u32, per_rack: u32) -> Self {
        let mut nodes = Vec::new();
        for r in 0..compute_racks {
            for _ in 0..per_rack {
                nodes.push(NodeSpec::compute(r));
            }
        }
        let gpu_rack = compute_racks;
        let tpu_rack = compute_racks + 1;
        for _ in 0..per_rack {
            nodes.push(NodeSpec::gpu(gpu_rack));
        }
        for _ in 0..per_rack {
            nodes.push(NodeSpec::tpu(tpu_rack));
        }
        Topology::new(nodes)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (construction rejects empty topologies).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The spec of a node.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn spec(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0 as usize]
    }

    /// Iterates `(NodeId, &NodeSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeSpec)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u32), s))
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Hop class between two nodes.
    pub fn hop_class(&self, a: NodeId, b: NodeId) -> HopClass {
        if a == b {
            HopClass::Local
        } else if self.spec(a).rack == self.spec(b).rack {
            HopClass::SameRack
        } else {
            HopClass::CrossRack
        }
    }

    /// Nodes whose spec satisfies `pred`.
    pub fn nodes_where(&self, pred: impl Fn(&NodeSpec) -> bool) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, s)| pred(s))
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of distinct racks.
    pub fn rack_count(&self) -> u32 {
        self.nodes.iter().map(|s| s.rack).max().unwrap_or(0) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout() {
        let t = Topology::uniform(3, 4);
        assert_eq!(t.len(), 12);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.spec(NodeId(0)).rack, 0);
        assert_eq!(t.spec(NodeId(11)).rack, 2);
    }

    #[test]
    fn hop_classes() {
        let t = Topology::uniform(2, 2);
        assert_eq!(t.hop_class(NodeId(0), NodeId(0)), HopClass::Local);
        assert_eq!(t.hop_class(NodeId(0), NodeId(1)), HopClass::SameRack);
        assert_eq!(t.hop_class(NodeId(0), NodeId(2)), HopClass::CrossRack);
    }

    #[test]
    fn heterogeneous_pools() {
        let t = Topology::heterogeneous(2, 3);
        assert_eq!(t.len(), 2 * 3 + 3 + 3);
        let gpus = t.nodes_where(|s| s.capacity.gpu > 0);
        let tpus = t.nodes_where(|s| s.capacity.tpu > 0);
        assert_eq!(gpus.len(), 3);
        assert_eq!(tpus.len(), 3);
        // Accelerator racks are distinct racks.
        let gpu_rack = t.spec(gpus[0]).rack;
        let tpu_rack = t.spec(tpus[0]).rack;
        assert_ne!(gpu_rack, tpu_rack);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let _ = Topology::new(vec![]);
    }
}
