//! Nodes and their physical resources.
//!
//! PCSI functions are "narrow and resource homogeneous" (§3.1) so that
//! heterogeneous hardware — CPUs, GPUs, TPU-style accelerators — can be
//! pooled and specialized. The node model carries exactly the resource
//! vector the scheduler bin-packs against.

use std::fmt;

/// Index of a node within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Classes of schedulable resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// General-purpose CPU cores.
    Cpu,
    /// GPU devices.
    Gpu,
    /// TPU-style matrix accelerators (§4.3's "latest accelerator").
    Tpu,
    /// Memory, in GiB.
    MemGib,
}

impl ResourceKind {
    /// All resource kinds.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::Gpu,
        ResourceKind::Tpu,
        ResourceKind::MemGib,
    ];
}

/// A resource vector: capacities or demands per [`ResourceKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// CPU cores.
    pub cpu: u32,
    /// GPU devices.
    pub gpu: u32,
    /// TPU devices.
    pub tpu: u32,
    /// Memory in GiB.
    pub mem_gib: u32,
}

impl Resources {
    /// A CPU-and-memory-only vector.
    pub fn cpu(cores: u32, mem_gib: u32) -> Self {
        Resources {
            cpu: cores,
            mem_gib,
            ..Default::default()
        }
    }

    /// True if `demand` fits inside `self`.
    pub fn fits(&self, demand: &Resources) -> bool {
        self.cpu >= demand.cpu
            && self.gpu >= demand.gpu
            && self.tpu >= demand.tpu
            && self.mem_gib >= demand.mem_gib
    }

    /// Subtracts a demand.
    ///
    /// # Panics
    ///
    /// Panics if the demand does not fit (callers check with
    /// [`Resources::fits`] first; over-allocation is a scheduler bug).
    pub fn take(&mut self, demand: &Resources) {
        assert!(
            self.fits(demand),
            "resource over-allocation: {self:?} - {demand:?}"
        );
        self.cpu -= demand.cpu;
        self.gpu -= demand.gpu;
        self.tpu -= demand.tpu;
        self.mem_gib -= demand.mem_gib;
    }

    /// Returns a demand.
    pub fn give(&mut self, demand: &Resources) {
        self.cpu += demand.cpu;
        self.gpu += demand.gpu;
        self.tpu += demand.tpu;
        self.mem_gib += demand.mem_gib;
    }

    /// Fraction of `capacity` currently used by `self` (the max across
    /// dimensions present in the capacity), for utilization metrics.
    pub fn utilization_of(&self, capacity: &Resources) -> f64 {
        let mut max = 0.0f64;
        for (used, cap) in [
            (self.cpu, capacity.cpu),
            (self.gpu, capacity.gpu),
            (self.tpu, capacity.tpu),
            (self.mem_gib, capacity.mem_gib),
        ] {
            if cap > 0 {
                max = max.max(f64::from(used) / f64::from(cap));
            }
        }
        max
    }

    /// True if every dimension is zero.
    pub fn is_zero(&self) -> bool {
        *self == Resources::default()
    }
}

/// Static description of one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Which rack the node lives in.
    pub rack: u32,
    /// Installed resource capacities.
    pub capacity: Resources,
}

impl NodeSpec {
    /// A standard compute node: 32 cores, 128 GiB.
    pub fn compute(rack: u32) -> Self {
        NodeSpec {
            rack,
            capacity: Resources::cpu(32, 128),
        }
    }

    /// A GPU node: 16 cores, 4 GPUs, 256 GiB.
    pub fn gpu(rack: u32) -> Self {
        NodeSpec {
            rack,
            capacity: Resources {
                cpu: 16,
                gpu: 4,
                tpu: 0,
                mem_gib: 256,
            },
        }
    }

    /// A TPU-pod node: 8 cores, 4 TPUs, 128 GiB (§4.3's specialized
    /// hardware platform).
    pub fn tpu(rack: u32) -> Self {
        NodeSpec {
            rack,
            capacity: Resources {
                cpu: 8,
                gpu: 0,
                tpu: 4,
                mem_gib: 128,
            },
        }
    }

    /// True if the node has any accelerator.
    pub fn has_accelerator(&self) -> bool {
        self.capacity.gpu > 0 || self.capacity.tpu > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_take_give_roundtrip() {
        let mut cap = Resources::cpu(8, 32);
        let d = Resources::cpu(3, 10);
        assert!(cap.fits(&d));
        cap.take(&d);
        assert_eq!(cap, Resources::cpu(5, 22));
        cap.give(&d);
        assert_eq!(cap, Resources::cpu(8, 32));
    }

    #[test]
    #[should_panic(expected = "over-allocation")]
    fn take_rejects_overcommit() {
        let mut cap = Resources::cpu(1, 1);
        cap.take(&Resources::cpu(2, 0));
    }

    #[test]
    fn gpu_demand_does_not_fit_cpu_node() {
        let node = NodeSpec::compute(0);
        let gpu_demand = Resources {
            gpu: 1,
            ..Default::default()
        };
        assert!(!node.capacity.fits(&gpu_demand));
        assert!(NodeSpec::gpu(0).capacity.fits(&gpu_demand));
    }

    #[test]
    fn utilization_is_max_across_dims() {
        let cap = Resources {
            cpu: 10,
            gpu: 2,
            tpu: 0,
            mem_gib: 100,
        };
        let used = Resources {
            cpu: 5,
            gpu: 2,
            tpu: 0,
            mem_gib: 10,
        };
        assert!((used.utilization_of(&cap) - 1.0).abs() < 1e-12);
        let light = Resources::cpu(1, 1);
        assert!((light.utilization_of(&cap) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn accelerator_detection() {
        assert!(!NodeSpec::compute(0).has_accelerator());
        assert!(NodeSpec::gpu(0).has_accelerator());
        assert!(NodeSpec::tpu(0).has_accelerator());
    }

    #[test]
    fn zero_detection() {
        assert!(Resources::default().is_zero());
        assert!(!Resources::cpu(1, 0).is_zero());
    }
}
