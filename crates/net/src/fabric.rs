//! The message fabric: delivery, queueing, transports, RPC, faults.
//!
//! [`Fabric`] is the one component every distributed piece of the system
//! talks through. It charges each message
//!
//! 1. **transport overhead** — the Table-1 "socket overhead" (5 µs) per
//!    endpoint for TCP-like messages; RDMA-like messages skip it,
//! 2. **egress serialization** — a per-node NIC queue at the generation's
//!    line rate, so concurrent senders on one node contend realistically,
//! 3. **propagation** — the hop-class one-way delay with jitter.
//!
//! Fault injection (node crashes, partitions) lives here too, because the
//! network is where faults are observed.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_sim::executor::LocalBoxFuture;
use pcsi_sim::metrics::Counter;
use pcsi_sim::{SimHandle, SimTime};

use crate::latency::LatencyModel;
use crate::node::NodeId;
use crate::topology::Topology;

/// Table 1: "Socket overhead — 5,000 ns", charged per TCP-like endpoint.
pub const SOCKET_OVERHEAD: Duration = Duration::from_nanos(5_000);

/// Per-message overhead of the RDMA-like transport (doorbell + completion).
pub const RDMA_OVERHEAD: Duration = Duration::from_nanos(300);

/// Message transports with different per-message costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Kernel TCP sockets: per-endpoint socket overhead.
    Tcp,
    /// Kernel-bypass, RDMA-like: near-zero per-message overhead. The
    /// "emerging fast network" only pays off with this transport — the
    /// paper's point that web-service overheads will dominate otherwise.
    Rdma,
}

impl Transport {
    /// Per-endpoint processing overhead.
    pub fn endpoint_overhead(self) -> Duration {
        match self {
            Transport::Tcp => SOCKET_OVERHEAD,
            Transport::Rdma => RDMA_OVERHEAD,
        }
    }
}

/// Network-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination node is crashed.
    NodeDown(NodeId),
    /// A partition separates the endpoints.
    Partitioned(NodeId, NodeId),
    /// No service with that name is bound on the destination.
    NoService(String),
    /// The peer closed the connection.
    Closed,
    /// Application-level failure surfaced through the RPC layer.
    Remote(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::Partitioned(a, b) => write!(f, "network partition between {a} and {b}"),
            NetError::NoService(s) => write!(f, "no service {s:?} bound"),
            NetError::Closed => f.write_str("connection closed"),
            NetError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Context passed to RPC handlers.
#[derive(Debug, Clone, Copy)]
pub struct CallCtx {
    /// The caller's node.
    pub from: NodeId,
    /// The node the handler runs on.
    pub to: NodeId,
}

/// An RPC handler bound to a `(node, service)` pair.
pub type RpcHandler = Rc<dyn Fn(Bytes, CallCtx) -> LocalBoxFuture<Result<Bytes, NetError>>>;

struct State {
    services: HashMap<(NodeId, String), RpcHandler>,
    down: HashSet<NodeId>,
    /// Symmetric set of blocked node pairs (stored with a <= b).
    blocked: HashSet<(NodeId, NodeId)>,
    egress_busy_until: Vec<SimTime>,
}

/// The shared message fabric. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<FabricInner>,
}

struct FabricInner {
    handle: SimHandle,
    topology: Topology,
    latency: LatencyModel,
    state: RefCell<State>,
    messages: Counter,
    bytes: Counter,
}

impl Fabric {
    /// Creates a fabric over `topology` with the given latency model.
    pub fn new(handle: SimHandle, topology: Topology, latency: LatencyModel) -> Self {
        let n = topology.len();
        Fabric {
            inner: Rc::new(FabricInner {
                handle,
                topology,
                latency,
                state: RefCell::new(State {
                    services: HashMap::new(),
                    down: HashSet::new(),
                    blocked: HashSet::new(),
                    egress_busy_until: vec![SimTime::ZERO; n],
                }),
                messages: Counter::new(),
                bytes: Counter::new(),
            }),
        }
    }

    /// The cluster layout.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.inner.latency
    }

    /// The simulation handle (for components built on the fabric).
    pub fn handle(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// Total messages delivered so far.
    pub fn message_count(&self) -> u64 {
        self.inner.messages.get()
    }

    /// Total payload bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Binds `handler` as `service` on `node`, replacing any previous
    /// binding.
    pub fn bind(&self, node: NodeId, service: &str, handler: RpcHandler) {
        self.inner
            .state
            .borrow_mut()
            .services
            .insert((node, service.to_owned()), handler);
    }

    /// Marks a node crashed (`true`) or recovered (`false`).
    pub fn set_node_down(&self, node: NodeId, down: bool) {
        let mut s = self.inner.state.borrow_mut();
        if down {
            s.down.insert(node);
        } else {
            s.down.remove(&node);
        }
    }

    /// Installs a partition separating every node in `a` from every node
    /// in `b` (both directions).
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        let mut s = self.inner.state.borrow_mut();
        for &x in a {
            for &y in b {
                s.blocked.insert(ordered(x, y));
            }
        }
    }

    /// Removes all partitions (crashed nodes stay crashed).
    pub fn heal_partitions(&self) {
        self.inner.state.borrow_mut().blocked.clear();
    }

    fn check_reachable(&self, from: NodeId, to: NodeId) -> Result<(), NetError> {
        let s = self.inner.state.borrow();
        if s.down.contains(&to) {
            return Err(NetError::NodeDown(to));
        }
        if s.down.contains(&from) {
            return Err(NetError::NodeDown(from));
        }
        if s.blocked.contains(&ordered(from, to)) {
            return Err(NetError::Partitioned(from, to));
        }
        Ok(())
    }

    /// Delivers one message worth of delay: transport overhead, egress
    /// queueing, propagation. Local messages skip the NIC entirely.
    async fn deliver(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        transport: Transport,
    ) -> Result<(), NetError> {
        self.check_reachable(from, to)?;
        let h = &self.inner.handle;
        self.inner.messages.incr();
        self.inner.bytes.add(bytes as u64);

        let hop = self.inner.topology.hop_class(from, to);
        if hop == crate::topology::HopClass::Local {
            // Same machine: no NIC, no propagation; charge endpoint
            // overhead once (loopback still crosses the socket layer).
            h.sleep(transport.endpoint_overhead()).await;
            return Ok(());
        }

        // Sender-side endpoint overhead.
        h.sleep(transport.endpoint_overhead()).await;

        // Egress NIC queue: serialize after everything already queued.
        let ser = self.inner.latency.serialization(bytes);
        let tx_done = {
            let mut s = self.inner.state.borrow_mut();
            let busy = s.egress_busy_until[from.0 as usize].max(h.now());
            let done = busy + ser;
            s.egress_busy_until[from.0 as usize] = done;
            done
        };
        h.sleep_until(tx_done).await;

        // Propagation with jitter (serialization already charged above).
        let prop = self
            .inner
            .latency
            .one_way(hop, 0, &h.rng().stream("net-jitter"));
        h.sleep(prop).await;

        // Receiver may have died while the message was in flight.
        self.check_reachable(from, to)?;

        // Receiver-side endpoint overhead.
        h.sleep(transport.endpoint_overhead()).await;
        Ok(())
    }

    /// Moves `bytes` from `from` to `to`, returning the transfer time.
    ///
    /// Used for bulk data movement (object replication, intermediate
    /// results); the paper's §4.1 data-movement argument is measured with
    /// this call.
    pub async fn transfer(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        transport: Transport,
    ) -> Result<Duration, NetError> {
        let start = self.inner.handle.now();
        self.deliver(from, to, bytes, transport).await?;
        Ok(self.inner.handle.now() - start)
    }

    /// Performs an RPC: request delivery, handler execution, response
    /// delivery.
    pub async fn call(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
        transport: Transport,
        payload: Bytes,
    ) -> Result<Bytes, NetError> {
        let req_len = payload.len();
        self.deliver(from, to, req_len, transport).await?;

        let handler = {
            let s = self.inner.state.borrow();
            s.services
                .get(&(to, service.to_owned()))
                .cloned()
                .ok_or_else(|| NetError::NoService(service.to_owned()))?
        };
        let response = handler(payload, CallCtx { from, to }).await?;

        let resp_len = response.len();
        self.deliver(to, from, resp_len, transport).await?;
        Ok(response)
    }

    /// Opens a connection (TCP handshake: 1.5 RTT); subsequent round trips
    /// on the connection skip the handshake, modeling connection reuse.
    pub async fn connect(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
    ) -> Result<Connection, NetError> {
        self.check_reachable(from, to)?;
        let hop = self.inner.topology.hop_class(from, to);
        let one_way = self.inner.latency.base_one_way(hop);
        // SYN, SYN-ACK, ACK piggybacked on first data: 1.5 RTT ≈ 3 one-way.
        self.inner.handle.sleep(one_way * 3).await;
        Ok(Connection {
            fabric: self.clone(),
            from,
            to,
            service: service.to_owned(),
            open: std::cell::Cell::new(true),
        })
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// An established TCP-like connection to a service.
pub struct Connection {
    fabric: Fabric,
    from: NodeId,
    to: NodeId,
    service: String,
    open: std::cell::Cell<bool>,
}

impl Connection {
    /// The remote node.
    pub fn peer(&self) -> NodeId {
        self.to
    }

    /// Sends a request and awaits the response on this connection.
    pub async fn roundtrip(&self, payload: Bytes) -> Result<Bytes, NetError> {
        if !self.open.get() {
            return Err(NetError::Closed);
        }
        self.fabric
            .call(self.from, self.to, &self.service, Transport::Tcp, payload)
            .await
    }

    /// Closes the connection; further round trips fail with
    /// [`NetError::Closed`].
    pub fn close(&self) {
        self.open.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::NetworkGeneration;
    use pcsi_sim::Sim;

    fn echo_handler() -> RpcHandler {
        Rc::new(|payload, _ctx| Box::pin(async move { Ok(payload) }))
    }

    fn build(sim: &Sim, generation: NetworkGeneration) -> Fabric {
        Fabric::new(
            sim.handle(),
            Topology::uniform(2, 2),
            LatencyModel::deterministic(generation),
        )
    }

    #[test]
    fn rpc_roundtrip_echoes() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let out = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric
                    .call(
                        NodeId(0),
                        NodeId(2),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"hi"),
                    )
                    .await
            }
        });
        assert_eq!(out.unwrap(), Bytes::from_static(b"hi"));
        assert_eq!(fabric.message_count(), 2);
    }

    #[test]
    fn cross_rack_rpc_costs_about_one_rtt_plus_sockets() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let h = sim.handle();
        let elapsed = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(
                        NodeId(0),
                        NodeId(2),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"x"),
                    )
                    .await
                    .unwrap();
                h.now() - t0
            }
        });
        // RTT 200us + 4 socket overheads (2 per direction) = 220us.
        let expect = Duration::from_micros(220);
        let err =
            (elapsed.as_nanos() as f64 - expect.as_nanos() as f64).abs() / expect.as_nanos() as f64;
        assert!(err < 0.02, "elapsed {elapsed:?} expected ~{expect:?}");
    }

    #[test]
    fn rdma_is_cheaper_than_tcp() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::FastEmerging);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let h = sim.handle();
        let (tcp, rdma) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap();
                let tcp = h.now() - t0;
                let t1 = h.now();
                fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Rdma, Bytes::new())
                    .await
                    .unwrap();
                (tcp, h.now() - t1)
            }
        });
        // On the fast network the socket overhead dominates: TCP pays
        // 4 x 5us = 20us, RDMA pays ~1.2us + RTT.
        assert!(tcp > rdma * 5, "tcp {tcp:?} rdma {rdma:?}");
    }

    #[test]
    fn local_delivery_skips_the_network() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2005);
        fabric.bind(NodeId(0), "echo", echo_handler());
        let h = sim.handle();
        let elapsed = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(
                        NodeId(0),
                        NodeId(0),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"x"),
                    )
                    .await
                    .unwrap();
                h.now() - t0
            }
        });
        // Two endpoint overheads only, far below the 1ms RTT.
        assert!(elapsed < Duration::from_micros(15), "elapsed {elapsed:?}");
    }

    #[test]
    fn egress_queue_serializes_bulk_transfers() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        let h = sim.handle();
        // Two 10 MB transfers from the same node must take ~2x one.
        let mb = 10 * 1024 * 1024;
        let (one, two) = sim.block_on({
            let fabric = fabric.clone();
            let h = h.clone();
            async move {
                let t0 = h.now();
                fabric
                    .transfer(NodeId(0), NodeId(2), mb, Transport::Rdma)
                    .await
                    .unwrap();
                let one = h.now() - t0;
                let t1 = h.now();
                let f2 = fabric.clone();
                let a = h.spawn({
                    let f = f2.clone();
                    async move { f.transfer(NodeId(0), NodeId(2), mb, Transport::Rdma).await }
                });
                let b = h.spawn({
                    let f = f2.clone();
                    async move { f.transfer(NodeId(0), NodeId(3), mb, Transport::Rdma).await }
                });
                a.await.unwrap();
                b.await.unwrap();
                (one, h.now() - t1)
            }
        });
        let ratio = two.as_secs_f64() / one.as_secs_f64();
        assert!((1.8..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn downed_node_unreachable_until_recovery() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(1), "echo", echo_handler());
        let out = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric.set_node_down(NodeId(1), true);
                let err = fabric
                    .call(NodeId(0), NodeId(1), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap_err();
                fabric.set_node_down(NodeId(1), false);
                let ok = fabric
                    .call(NodeId(0), NodeId(1), "echo", Transport::Tcp, Bytes::new())
                    .await;
                (err, ok.is_ok())
            }
        });
        assert_eq!(out.0, NetError::NodeDown(NodeId(1)));
        assert!(out.1);
    }

    #[test]
    fn partition_blocks_both_directions_and_heals() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(0), "echo", echo_handler());
        fabric.bind(NodeId(3), "echo", echo_handler());
        let results = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric.partition(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
                let a = fabric
                    .call(NodeId(0), NodeId(3), "echo", Transport::Tcp, Bytes::new())
                    .await;
                let b = fabric
                    .call(NodeId(3), NodeId(0), "echo", Transport::Tcp, Bytes::new())
                    .await;
                // Same side still works.
                let c = fabric
                    .call(NodeId(1), NodeId(0), "echo", Transport::Tcp, Bytes::new())
                    .await;
                fabric.heal_partitions();
                let d = fabric
                    .call(NodeId(0), NodeId(3), "echo", Transport::Tcp, Bytes::new())
                    .await;
                (a.is_err(), b.is_err(), c.is_ok(), d.is_ok())
            }
        });
        assert_eq!(results, (true, true, true, true));
    }

    #[test]
    fn missing_service_reported() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        let err = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric
                    .call(NodeId(0), NodeId(1), "ghost", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap_err()
            }
        });
        assert_eq!(err, NetError::NoService("ghost".into()));
    }

    #[test]
    fn connection_reuse_and_close() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "svc", echo_handler());
        let (first, closed) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let conn = fabric.connect(NodeId(0), NodeId(2), "svc").await.unwrap();
                let first = conn.roundtrip(Bytes::from_static(b"a")).await;
                conn.close();
                let closed = conn.roundtrip(Bytes::from_static(b"b")).await;
                (first, closed)
            }
        });
        assert!(first.is_ok());
        assert_eq!(closed.unwrap_err(), NetError::Closed);
    }
}
