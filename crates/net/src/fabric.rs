//! The message fabric: delivery, queueing, transports, RPC, faults.
//!
//! [`Fabric`] is the one component every distributed piece of the system
//! talks through. It charges each message
//!
//! 1. **transport overhead** — the Table-1 "socket overhead" (5 µs) per
//!    endpoint for TCP-like messages; RDMA-like messages skip it,
//! 2. **egress serialization** — a per-node NIC queue at the generation's
//!    line rate, so concurrent senders on one node contend realistically,
//! 3. **propagation** — the hop-class one-way delay with jitter.
//!
//! Fault injection (node crashes, partitions) lives here too, because the
//! network is where faults are observed.

use fxhash::{FxHashMap, FxHashSet};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use pcsi_metrics::{Counter, Histogram, Metrics};
use pcsi_sim::executor::LocalBoxFuture;
use pcsi_sim::{SimHandle, SimTime};

use crate::latency::LatencyModel;
use crate::node::NodeId;
use crate::topology::Topology;

/// Table 1: "Socket overhead — 5,000 ns", charged per TCP-like endpoint.
pub const SOCKET_OVERHEAD: Duration = Duration::from_nanos(5_000);

/// Per-message overhead of the RDMA-like transport (doorbell + completion).
pub const RDMA_OVERHEAD: Duration = Duration::from_nanos(300);

/// How long a sender waits before declaring a silently-lost message dead.
/// Dropped messages surface as [`NetError::Dropped`] after this timeout,
/// so callers observe loss as latency, the way a real RTO behaves.
pub const RETRANSMIT_TIMEOUT: Duration = Duration::from_millis(2);

/// Seeded message-level fault probabilities for a link (or the whole
/// fabric). Layered *under* the crash/partition API: crashes and
/// partitions are absolute, these are per-message coin flips drawn from
/// the deterministic `"net-faults"` RNG stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFaults {
    /// Probability a message is silently lost. The sender burns
    /// [`RETRANSMIT_TIMEOUT`] and then observes [`NetError::Dropped`].
    pub drop: f64,
    /// Probability an RPC request is delivered (and executed) twice.
    /// Models at-least-once delivery; handlers must be idempotent.
    pub duplicate: f64,
    /// Probability a message is hit by a queueing delay spike.
    pub delay_spike: f64,
    /// Extra one-way delay charged by a single spike.
    pub spike: Duration,
}

impl MessageFaults {
    /// No faults at all; the default.
    pub const NONE: MessageFaults = MessageFaults {
        drop: 0.0,
        duplicate: 0.0,
        delay_spike: 0.0,
        spike: Duration::ZERO,
    };

    /// True when any probability is non-zero (i.e. RNG draws are needed).
    pub fn active(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.delay_spike > 0.0
    }
}

impl Default for MessageFaults {
    fn default() -> Self {
        MessageFaults::NONE
    }
}

/// Message transports with different per-message costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Kernel TCP sockets: per-endpoint socket overhead.
    Tcp,
    /// Kernel-bypass, RDMA-like: near-zero per-message overhead. The
    /// "emerging fast network" only pays off with this transport — the
    /// paper's point that web-service overheads will dominate otherwise.
    Rdma,
}

impl Transport {
    /// Per-endpoint processing overhead.
    pub fn endpoint_overhead(self) -> Duration {
        match self {
            Transport::Tcp => SOCKET_OVERHEAD,
            Transport::Rdma => RDMA_OVERHEAD,
        }
    }
}

/// Network-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination node is crashed.
    NodeDown(NodeId),
    /// A partition separates the endpoints.
    Partitioned(NodeId, NodeId),
    /// No service with that name is bound on the destination.
    NoService(String),
    /// The peer closed the connection.
    Closed,
    /// The message was silently lost; the sender gave up after the
    /// retransmission timeout.
    Dropped(NodeId, NodeId),
    /// Application-level failure surfaced through the RPC layer.
    Remote(String),
    /// The caller's deadline elapsed before the call completed. The call
    /// itself keeps running detached, so the outcome is ambiguous.
    DeadlineExceeded,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::Partitioned(a, b) => write!(f, "network partition between {a} and {b}"),
            NetError::NoService(s) => write!(f, "no service {s:?} bound"),
            NetError::Closed => f.write_str("connection closed"),
            NetError::Dropped(a, b) => write!(f, "message from {a} to {b} dropped"),
            NetError::Remote(m) => write!(f, "remote error: {m}"),
            NetError::DeadlineExceeded => f.write_str("call deadline exceeded"),
        }
    }
}

impl std::error::Error for NetError {}

/// Context passed to RPC handlers.
#[derive(Debug, Clone, Copy)]
pub struct CallCtx {
    /// The caller's node.
    pub from: NodeId,
    /// The node the handler runs on.
    pub to: NodeId,
    /// Trace context propagated by [`Fabric::call_traced`]; `None` for
    /// untraced calls. Handlers parent their spans under it.
    pub trace: Option<pcsi_trace::TraceContext>,
}

/// An RPC handler bound to a `(node, service)` pair.
pub type RpcHandler = Rc<dyn Fn(Bytes, CallCtx) -> LocalBoxFuture<Result<Bytes, NetError>>>;

struct State {
    /// Handlers by node, then service name, so the per-call lookup is
    /// two borrowed-key probes — no `(NodeId, String)` tuple (and no
    /// `String` allocation) per RPC.
    services: FxHashMap<NodeId, FxHashMap<String, RpcHandler>>,
    down: FxHashSet<NodeId>,
    /// Symmetric set of blocked node pairs (stored with a <= b).
    blocked: FxHashSet<(NodeId, NodeId)>,
    egress_busy_until: Vec<SimTime>,
    /// Fault probabilities applied to every non-local link without a
    /// per-link override.
    default_faults: MessageFaults,
    /// Per-link overrides (symmetric, stored with a <= b).
    link_faults: FxHashMap<(NodeId, NodeId), MessageFaults>,
    /// Cached: true iff any configured fault is active. When false,
    /// `deliver` makes zero fault-RNG draws, so enabling the machinery
    /// costs nothing for fault-free runs.
    faults_armed: bool,
}

impl State {
    fn rearm_faults(&mut self) {
        self.faults_armed =
            self.default_faults.active() || self.link_faults.values().any(MessageFaults::active);
    }
}

/// The shared message fabric. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<FabricInner>,
}

struct FabricInner {
    handle: SimHandle,
    topology: Topology,
    latency: LatencyModel,
    state: RefCell<State>,
    /// Cached handles to the deterministic fault/jitter streams. A
    /// stream handle shares state with every other handle to the same
    /// name, and stream seeds are a pure function of `(seed, name)`,
    /// so grabbing them eagerly here draws the exact sequences the
    /// per-message lookups used to — without a map probe per message.
    faults_rng: pcsi_sim::DetRng,
    jitter_rng: pcsi_sim::DetRng,
    messages: Counter,
    bytes: Counter,
    dropped: Counter,
    duplicated: Counter,
    delayed: Counter,
    /// Per-message payload-size histogram; recorded only when a metrics
    /// registry is installed (the counters above are always-on cells).
    msg_bytes: RefCell<Option<Histogram>>,
}

impl Fabric {
    /// Creates a fabric over `topology` with the given latency model.
    pub fn new(handle: SimHandle, topology: Topology, latency: LatencyModel) -> Self {
        let n = topology.len();
        let faults_rng = handle.rng().stream("net-faults");
        let jitter_rng = handle.rng().stream("net-jitter");
        Fabric {
            inner: Rc::new(FabricInner {
                handle,
                topology,
                latency,
                state: RefCell::new(State {
                    services: FxHashMap::default(),
                    down: FxHashSet::default(),
                    blocked: FxHashSet::default(),
                    egress_busy_until: vec![SimTime::ZERO; n],
                    default_faults: MessageFaults::NONE,
                    link_faults: FxHashMap::default(),
                    faults_armed: false,
                }),
                messages: Counter::new(),
                bytes: Counter::new(),
                dropped: Counter::new(),
                duplicated: Counter::new(),
                delayed: Counter::new(),
                msg_bytes: RefCell::new(None),
                faults_rng,
                jitter_rng,
            }),
        }
    }

    /// The cluster layout.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.inner.latency
    }

    /// The simulation handle (for components built on the fabric).
    pub fn handle(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// Publishes the fabric's telemetry on `metrics`: the always-on
    /// message/byte/fault counters become registered series (same cells
    /// the accessors read), and a per-message payload-size histogram
    /// starts recording. Pass `None` to stop histogram recording; the
    /// counters keep counting either way.
    pub fn set_metrics(&self, metrics: Option<&Metrics>) {
        match metrics {
            Some(m) => {
                m.bind_counter("fabric.messages", &[], &self.inner.messages);
                m.bind_counter("fabric.bytes", &[], &self.inner.bytes);
                m.bind_counter("fabric.dropped", &[], &self.inner.dropped);
                m.bind_counter("fabric.duplicated", &[], &self.inner.duplicated);
                m.bind_counter("fabric.delayed", &[], &self.inner.delayed);
                *self.inner.msg_bytes.borrow_mut() = Some(m.histogram("fabric.message_bytes", &[]));
            }
            None => *self.inner.msg_bytes.borrow_mut() = None,
        }
    }

    /// Total messages delivered so far.
    pub fn message_count(&self) -> u64 {
        self.inner.messages.get()
    }

    /// Total payload bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Binds `handler` as `service` on `node`, replacing any previous
    /// binding.
    pub fn bind(&self, node: NodeId, service: &str, handler: RpcHandler) {
        self.inner
            .state
            .borrow_mut()
            .services
            .entry(node)
            .or_default()
            .insert(service.to_owned(), handler);
    }

    /// Removes a service binding; later calls to it fail with
    /// [`NetError::NoService`]. Needed for ephemeral per-subscription
    /// endpoints (streaming) so closed subscriptions don't leak
    /// handlers. Unbinding a name that was never bound is a no-op.
    pub fn unbind(&self, node: NodeId, service: &str) {
        let mut s = self.inner.state.borrow_mut();
        if let Some(services) = s.services.get_mut(&node) {
            services.remove(service);
        }
    }

    /// Marks a node crashed (`true`) or recovered (`false`).
    pub fn set_node_down(&self, node: NodeId, down: bool) {
        let mut s = self.inner.state.borrow_mut();
        if down {
            s.down.insert(node);
        } else {
            s.down.remove(&node);
        }
    }

    /// Installs a partition separating every node in `a` from every node
    /// in `b` (both directions).
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        let mut s = self.inner.state.borrow_mut();
        for &x in a {
            for &y in b {
                s.blocked.insert(ordered(x, y));
            }
        }
    }

    /// Removes all partitions (crashed nodes stay crashed).
    pub fn heal_partitions(&self) {
        self.inner.state.borrow_mut().blocked.clear();
    }

    /// Sets the fault probabilities applied to every non-local link
    /// that has no per-link override.
    pub fn set_message_faults(&self, faults: MessageFaults) {
        let mut s = self.inner.state.borrow_mut();
        s.default_faults = faults;
        s.rearm_faults();
    }

    /// Sets fault probabilities for the (symmetric) link `a <-> b`,
    /// overriding the fabric-wide default for that link.
    pub fn set_link_faults(&self, a: NodeId, b: NodeId, faults: MessageFaults) {
        let mut s = self.inner.state.borrow_mut();
        s.link_faults.insert(ordered(a, b), faults);
        s.rearm_faults();
    }

    /// Clears all message faults, fabric-wide and per-link.
    pub fn clear_message_faults(&self) {
        let mut s = self.inner.state.borrow_mut();
        s.default_faults = MessageFaults::NONE;
        s.link_faults.clear();
        s.faults_armed = false;
    }

    /// Messages silently lost by fault injection so far.
    pub fn messages_dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// RPC requests duplicated by fault injection so far.
    pub fn messages_duplicated(&self) -> u64 {
        self.inner.duplicated.get()
    }

    /// Messages hit by an injected delay spike so far.
    pub fn messages_delayed(&self) -> u64 {
        self.inner.delayed.get()
    }

    /// The fault probabilities in force on the link `from -> to`, or
    /// `NONE` when no fault is armed anywhere (the common case; no RNG
    /// draws happen then).
    fn faults_for(&self, from: NodeId, to: NodeId) -> MessageFaults {
        let s = self.inner.state.borrow();
        if !s.faults_armed || from == to {
            return MessageFaults::NONE;
        }
        s.link_faults
            .get(&ordered(from, to))
            .copied()
            .unwrap_or(s.default_faults)
    }

    fn check_reachable(&self, from: NodeId, to: NodeId) -> Result<(), NetError> {
        let s = self.inner.state.borrow();
        if s.down.contains(&to) {
            return Err(NetError::NodeDown(to));
        }
        if s.down.contains(&from) {
            return Err(NetError::NodeDown(from));
        }
        if s.blocked.contains(&ordered(from, to)) {
            return Err(NetError::Partitioned(from, to));
        }
        Ok(())
    }

    /// Delivers one message worth of delay: transport overhead, egress
    /// queueing, propagation. Local messages skip the NIC entirely.
    async fn deliver(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        transport: Transport,
    ) -> Result<(), NetError> {
        self.check_reachable(from, to)?;
        let h = &self.inner.handle;
        self.inner.messages.incr();
        self.inner.bytes.add(bytes as u64);
        if let Some(h) = self.inner.msg_bytes.borrow().as_ref() {
            h.record(bytes as u64);
        }

        let hop = self.inner.topology.hop_class(from, to);
        if hop == crate::topology::HopClass::Local {
            // Same machine: no NIC, no propagation; charge endpoint
            // overhead once (loopback still crosses the socket layer).
            // Loopback never loses messages, so faults are skipped too.
            h.sleep(transport.endpoint_overhead()).await;
            return Ok(());
        }

        // Seeded message faults: drop (sender burns the RTO and errors)
        // and delay spike (extra one-way latency). The draws come from
        // the deterministic "net-faults" stream; when no fault is armed
        // no draw happens at all, so fault-free runs are byte-identical
        // to runs on a fabric without the machinery.
        let faults = self.faults_for(from, to);
        if faults.active() {
            let rng = &self.inner.faults_rng;
            if faults.drop > 0.0 && rng.bool(faults.drop) {
                self.inner.dropped.incr();
                h.sleep(transport.endpoint_overhead() + RETRANSMIT_TIMEOUT)
                    .await;
                return Err(NetError::Dropped(from, to));
            }
            if faults.delay_spike > 0.0 && rng.bool(faults.delay_spike) {
                self.inner.delayed.incr();
                h.sleep(faults.spike).await;
            }
        }

        // Sender-side endpoint overhead.
        h.sleep(transport.endpoint_overhead()).await;

        // Egress NIC queue: serialize after everything already queued.
        let ser = self.inner.latency.serialization(bytes);
        let tx_done = {
            let mut s = self.inner.state.borrow_mut();
            let busy = s.egress_busy_until[from.0 as usize].max(h.now());
            let done = busy + ser;
            s.egress_busy_until[from.0 as usize] = done;
            done
        };
        h.sleep_until(tx_done).await;

        // Propagation with jitter (serialization already charged above).
        let prop = self.inner.latency.one_way(hop, 0, &self.inner.jitter_rng);
        h.sleep(prop).await;

        // Receiver may have died while the message was in flight.
        self.check_reachable(from, to)?;

        // Receiver-side endpoint overhead.
        h.sleep(transport.endpoint_overhead()).await;
        Ok(())
    }

    /// Moves `bytes` from `from` to `to`, returning the transfer time.
    ///
    /// Used for bulk data movement (object replication, intermediate
    /// results); the paper's §4.1 data-movement argument is measured with
    /// this call.
    pub async fn transfer(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        transport: Transport,
    ) -> Result<Duration, NetError> {
        let start = self.inner.handle.now();
        self.deliver(from, to, bytes, transport).await?;
        Ok(self.inner.handle.now() - start)
    }

    /// Performs an RPC: request delivery, handler execution, response
    /// delivery.
    pub async fn call(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
        transport: Transport,
        payload: Bytes,
    ) -> Result<Bytes, NetError> {
        self.call_traced(from, to, service, transport, payload, None)
            .await
    }

    /// Like [`Fabric::call`], but carries a trace context to the
    /// handler (surfaced as [`CallCtx::trace`]). The context's
    /// [`pcsi_trace::TraceContext::WIRE_LEN`] bytes ride the request and
    /// are charged to virtual time like any other payload bytes, so a
    /// traced message is honestly a little bigger than an untraced one.
    pub async fn call_traced(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
        transport: Transport,
        payload: Bytes,
        trace: Option<pcsi_trace::TraceContext>,
    ) -> Result<Bytes, NetError> {
        let req_len = payload.len()
            + trace
                .map(|_| pcsi_trace::TraceContext::WIRE_LEN)
                .unwrap_or(0);

        // Seeded duplicate injection: with probability `duplicate` the
        // request is delivered twice and the handler runs twice, the
        // second response discarded — at-least-once delivery. The coin
        // is flipped before the first delivery so the draw sequence does
        // not depend on handler behavior.
        let faults = self.faults_for(from, to);
        let duplicate = faults.duplicate > 0.0 && self.inner.faults_rng.bool(faults.duplicate);

        self.deliver(from, to, req_len, transport).await?;

        let handler = {
            let s = self.inner.state.borrow();
            s.services
                .get(&to)
                .and_then(|svcs| svcs.get(service))
                .cloned()
                .ok_or_else(|| NetError::NoService(service.to_owned()))?
        };

        if duplicate {
            self.inner.duplicated.incr();
            let fabric = self.clone();
            // The duplicate shares the request frame: `Bytes::clone` is
            // a refcount bump on the same backing buffer, and both
            // deliveries charge the full wire length (`req_len`
            // includes trace-context bytes the payload alone lacks).
            let dup_payload = payload.clone();
            let dup_handler = Rc::clone(&handler);
            self.inner.handle.spawn_detached(async move {
                // The duplicate takes its own trip through the fabric
                // (and may itself be dropped or delayed) before the
                // handler re-executes; its response goes nowhere.
                if fabric.deliver(from, to, req_len, transport).await.is_ok() {
                    let _ = dup_handler(dup_payload, CallCtx { from, to, trace }).await;
                }
            });
        }

        let response = handler(payload, CallCtx { from, to, trace }).await?;

        let resp_len = response.len();
        self.deliver(to, from, resp_len, transport).await?;
        Ok(response)
    }

    /// Like [`Fabric::call`], but gives up after `deadline` with
    /// [`NetError::DeadlineExceeded`].
    ///
    /// The abandoned call keeps running detached: the handler may still
    /// execute and its effects may still land. Callers must treat a
    /// deadline error as *ambiguous* and retry only idempotent requests.
    pub async fn call_with_deadline(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
        transport: Transport,
        payload: Bytes,
        deadline: Duration,
    ) -> Result<Bytes, NetError> {
        let fabric = self.clone();
        let service = service.to_owned();
        let raced = pcsi_sim::util::deadline(&self.inner.handle, deadline, async move {
            fabric.call(from, to, &service, transport, payload).await
        })
        .await;
        raced.unwrap_or(Err(NetError::DeadlineExceeded))
    }

    /// [`Fabric::call_traced`] raced against a deadline; the same
    /// ambiguity caveats as [`Fabric::call_with_deadline`] apply.
    #[allow(clippy::too_many_arguments)]
    pub async fn call_with_deadline_traced(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
        transport: Transport,
        payload: Bytes,
        deadline: Duration,
        trace: Option<pcsi_trace::TraceContext>,
    ) -> Result<Bytes, NetError> {
        let fabric = self.clone();
        let service = service.to_owned();
        let raced = pcsi_sim::util::deadline(&self.inner.handle, deadline, async move {
            fabric
                .call_traced(from, to, &service, transport, payload, trace)
                .await
        })
        .await;
        raced.unwrap_or(Err(NetError::DeadlineExceeded))
    }

    /// Opens a connection (TCP handshake: 1.5 RTT); subsequent round trips
    /// on the connection skip the handshake, modeling connection reuse.
    pub async fn connect(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
    ) -> Result<Connection, NetError> {
        self.check_reachable(from, to)?;
        let hop = self.inner.topology.hop_class(from, to);
        let one_way = self.inner.latency.base_one_way(hop);
        // SYN, SYN-ACK, ACK piggybacked on first data: 1.5 RTT ≈ 3 one-way.
        self.inner.handle.sleep(one_way * 3).await;
        Ok(Connection {
            fabric: self.clone(),
            from,
            to,
            service: service.to_owned(),
            open: std::cell::Cell::new(true),
        })
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// An established TCP-like connection to a service.
pub struct Connection {
    fabric: Fabric,
    from: NodeId,
    to: NodeId,
    service: String,
    open: std::cell::Cell<bool>,
}

impl Connection {
    /// The remote node.
    pub fn peer(&self) -> NodeId {
        self.to
    }

    /// Sends a request and awaits the response on this connection.
    pub async fn roundtrip(&self, payload: Bytes) -> Result<Bytes, NetError> {
        if !self.open.get() {
            return Err(NetError::Closed);
        }
        self.fabric
            .call(self.from, self.to, &self.service, Transport::Tcp, payload)
            .await
    }

    /// Closes the connection; further round trips fail with
    /// [`NetError::Closed`].
    pub fn close(&self) {
        self.open.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::NetworkGeneration;
    use pcsi_sim::Sim;

    fn echo_handler() -> RpcHandler {
        Rc::new(|payload, _ctx| Box::pin(async move { Ok(payload) }))
    }

    fn build(sim: &Sim, generation: NetworkGeneration) -> Fabric {
        Fabric::new(
            sim.handle(),
            Topology::uniform(2, 2),
            LatencyModel::deterministic(generation),
        )
    }

    #[test]
    fn rpc_roundtrip_echoes() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let out = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric
                    .call(
                        NodeId(0),
                        NodeId(2),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"hi"),
                    )
                    .await
            }
        });
        assert_eq!(out.unwrap(), Bytes::from_static(b"hi"));
        assert_eq!(fabric.message_count(), 2);
    }

    #[test]
    fn unbind_removes_the_service() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "ephemeral", echo_handler());
        // Unbinding an unknown name is a no-op.
        fabric.unbind(NodeId(3), "ephemeral");
        fabric.unbind(NodeId(2), "never-bound");
        let (first, second) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let first = fabric
                    .call(
                        NodeId(0),
                        NodeId(2),
                        "ephemeral",
                        Transport::Tcp,
                        Bytes::from_static(b"a"),
                    )
                    .await;
                fabric.unbind(NodeId(2), "ephemeral");
                let second = fabric
                    .call(
                        NodeId(0),
                        NodeId(2),
                        "ephemeral",
                        Transport::Tcp,
                        Bytes::from_static(b"b"),
                    )
                    .await;
                (first, second)
            }
        });
        assert_eq!(first.unwrap(), Bytes::from_static(b"a"));
        assert_eq!(second.unwrap_err(), NetError::NoService("ephemeral".into()));
    }

    #[test]
    fn cross_rack_rpc_costs_about_one_rtt_plus_sockets() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let h = sim.handle();
        let elapsed = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(
                        NodeId(0),
                        NodeId(2),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"x"),
                    )
                    .await
                    .unwrap();
                h.now() - t0
            }
        });
        // RTT 200us + 4 socket overheads (2 per direction) = 220us.
        let expect = Duration::from_micros(220);
        let err =
            (elapsed.as_nanos() as f64 - expect.as_nanos() as f64).abs() / expect.as_nanos() as f64;
        assert!(err < 0.02, "elapsed {elapsed:?} expected ~{expect:?}");
    }

    #[test]
    fn rdma_is_cheaper_than_tcp() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::FastEmerging);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let h = sim.handle();
        let (tcp, rdma) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap();
                let tcp = h.now() - t0;
                let t1 = h.now();
                fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Rdma, Bytes::new())
                    .await
                    .unwrap();
                (tcp, h.now() - t1)
            }
        });
        // On the fast network the socket overhead dominates: TCP pays
        // 4 x 5us = 20us, RDMA pays ~1.2us + RTT.
        assert!(tcp > rdma * 5, "tcp {tcp:?} rdma {rdma:?}");
    }

    #[test]
    fn local_delivery_skips_the_network() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2005);
        fabric.bind(NodeId(0), "echo", echo_handler());
        let h = sim.handle();
        let elapsed = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(
                        NodeId(0),
                        NodeId(0),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"x"),
                    )
                    .await
                    .unwrap();
                h.now() - t0
            }
        });
        // Two endpoint overheads only, far below the 1ms RTT.
        assert!(elapsed < Duration::from_micros(15), "elapsed {elapsed:?}");
    }

    #[test]
    fn egress_queue_serializes_bulk_transfers() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        let h = sim.handle();
        // Two 10 MB transfers from the same node must take ~2x one.
        let mb = 10 * 1024 * 1024;
        let (one, two) = sim.block_on({
            let fabric = fabric.clone();
            let h = h.clone();
            async move {
                let t0 = h.now();
                fabric
                    .transfer(NodeId(0), NodeId(2), mb, Transport::Rdma)
                    .await
                    .unwrap();
                let one = h.now() - t0;
                let t1 = h.now();
                let f2 = fabric.clone();
                let a = h.spawn({
                    let f = f2.clone();
                    async move { f.transfer(NodeId(0), NodeId(2), mb, Transport::Rdma).await }
                });
                let b = h.spawn({
                    let f = f2.clone();
                    async move { f.transfer(NodeId(0), NodeId(3), mb, Transport::Rdma).await }
                });
                a.await.unwrap();
                b.await.unwrap();
                (one, h.now() - t1)
            }
        });
        let ratio = two.as_secs_f64() / one.as_secs_f64();
        assert!((1.8..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn downed_node_unreachable_until_recovery() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(1), "echo", echo_handler());
        let out = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric.set_node_down(NodeId(1), true);
                let err = fabric
                    .call(NodeId(0), NodeId(1), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap_err();
                fabric.set_node_down(NodeId(1), false);
                let ok = fabric
                    .call(NodeId(0), NodeId(1), "echo", Transport::Tcp, Bytes::new())
                    .await;
                (err, ok.is_ok())
            }
        });
        assert_eq!(out.0, NetError::NodeDown(NodeId(1)));
        assert!(out.1);
    }

    #[test]
    fn partition_blocks_both_directions_and_heals() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(0), "echo", echo_handler());
        fabric.bind(NodeId(3), "echo", echo_handler());
        let results = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric.partition(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
                let a = fabric
                    .call(NodeId(0), NodeId(3), "echo", Transport::Tcp, Bytes::new())
                    .await;
                let b = fabric
                    .call(NodeId(3), NodeId(0), "echo", Transport::Tcp, Bytes::new())
                    .await;
                // Same side still works.
                let c = fabric
                    .call(NodeId(1), NodeId(0), "echo", Transport::Tcp, Bytes::new())
                    .await;
                fabric.heal_partitions();
                let d = fabric
                    .call(NodeId(0), NodeId(3), "echo", Transport::Tcp, Bytes::new())
                    .await;
                (a.is_err(), b.is_err(), c.is_ok(), d.is_ok())
            }
        });
        assert_eq!(results, (true, true, true, true));
    }

    #[test]
    fn certain_drop_surfaces_after_the_retransmit_timeout() {
        let mut sim = Sim::new(7);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let h = sim.handle();
        let (err, elapsed) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric.set_message_faults(MessageFaults {
                    drop: 1.0,
                    ..MessageFaults::NONE
                });
                let t0 = h.now();
                let err = fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap_err();
                (err, h.now() - t0)
            }
        });
        assert_eq!(err, NetError::Dropped(NodeId(0), NodeId(2)));
        assert!(elapsed >= RETRANSMIT_TIMEOUT, "elapsed {elapsed:?}");
        assert_eq!(fabric.messages_dropped(), 1);
    }

    #[test]
    fn certain_duplicate_executes_the_handler_twice() {
        let mut sim = Sim::new(7);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        let hits = Rc::new(std::cell::Cell::new(0u32));
        fabric.bind(NodeId(2), "count", {
            let hits = hits.clone();
            Rc::new(move |payload, _ctx| {
                let hits = hits.clone();
                Box::pin(async move {
                    hits.set(hits.get() + 1);
                    Ok(payload)
                })
            })
        });
        let h = sim.handle();
        sim.block_on({
            let fabric = fabric.clone();
            let h = h.clone();
            async move {
                fabric.set_message_faults(MessageFaults {
                    duplicate: 1.0,
                    ..MessageFaults::NONE
                });
                fabric
                    .call(NodeId(0), NodeId(2), "count", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap();
                // Let the detached duplicate finish its delivery.
                h.sleep(Duration::from_millis(5)).await;
            }
        });
        assert_eq!(hits.get(), 2);
        assert_eq!(fabric.messages_duplicated(), 1);
    }

    #[test]
    fn delay_spike_slows_the_message_down() {
        let mut sim = Sim::new(7);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let h = sim.handle();
        let (clean, spiked) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let t0 = h.now();
                fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap();
                let clean = h.now() - t0;
                fabric.set_message_faults(MessageFaults {
                    delay_spike: 1.0,
                    spike: Duration::from_millis(1),
                    ..MessageFaults::NONE
                });
                let t1 = h.now();
                fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap();
                (clean, h.now() - t1)
            }
        });
        // Both legs spike: at least 2 ms of extra latency.
        assert!(
            spiked >= clean + Duration::from_millis(2),
            "clean {clean:?} spiked {spiked:?}"
        );
        assert_eq!(fabric.messages_delayed(), 2);
    }

    #[test]
    fn per_link_faults_override_the_default_and_clear_restores() {
        let mut sim = Sim::new(7);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        fabric.bind(NodeId(3), "echo", echo_handler());
        let results = sim.block_on({
            let fabric = fabric.clone();
            async move {
                // Default drops everything, but link 0<->3 is clean.
                fabric.set_message_faults(MessageFaults {
                    drop: 1.0,
                    ..MessageFaults::NONE
                });
                fabric.set_link_faults(NodeId(0), NodeId(3), MessageFaults::NONE);
                let lossy = fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await;
                let clean = fabric
                    .call(NodeId(0), NodeId(3), "echo", Transport::Tcp, Bytes::new())
                    .await;
                fabric.clear_message_faults();
                let healed = fabric
                    .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                    .await;
                (lossy.is_err(), clean.is_ok(), healed.is_ok())
            }
        });
        assert_eq!(results, (true, true, true));
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            let fabric = build(&sim, NetworkGeneration::Dc2021);
            fabric.bind(NodeId(2), "echo", echo_handler());
            let h = sim.handle();
            let outcomes = sim.block_on({
                let fabric = fabric.clone();
                async move {
                    fabric.set_message_faults(MessageFaults {
                        drop: 0.3,
                        duplicate: 0.2,
                        delay_spike: 0.3,
                        spike: Duration::from_micros(300),
                    });
                    let mut outcomes = Vec::new();
                    for _ in 0..40 {
                        let r = fabric
                            .call(NodeId(0), NodeId(2), "echo", Transport::Tcp, Bytes::new())
                            .await;
                        outcomes.push(r.is_ok());
                    }
                    h.sleep(Duration::from_millis(5)).await;
                    outcomes
                }
            });
            (
                outcomes,
                fabric.messages_dropped(),
                fabric.messages_duplicated(),
                fabric.messages_delayed(),
                sim.poll_count(),
            )
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b);
        assert!(
            a.1 > 0 && a.2 > 0 && a.3 > 0,
            "faults actually fired: {a:?}"
        );
        let c = run(100);
        assert_ne!(a, c);
    }

    #[test]
    fn call_with_deadline_times_out_and_passes_through() {
        let mut sim = Sim::new(3);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "echo", echo_handler());
        let (fast, slow) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                // A generous deadline: the call completes normally.
                let fast = fabric
                    .call_with_deadline(
                        NodeId(0),
                        NodeId(2),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"hi"),
                        Duration::from_millis(10),
                    )
                    .await;
                // A deadline shorter than one endpoint overhead: times out.
                let slow = fabric
                    .call_with_deadline(
                        NodeId(0),
                        NodeId(2),
                        "echo",
                        Transport::Tcp,
                        Bytes::from_static(b"hi"),
                        Duration::from_nanos(100),
                    )
                    .await;
                (fast, slow)
            }
        });
        assert_eq!(fast.unwrap(), Bytes::from_static(b"hi"));
        assert_eq!(slow.unwrap_err(), NetError::DeadlineExceeded);
    }

    #[test]
    fn missing_service_reported() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        let err = sim.block_on({
            let fabric = fabric.clone();
            async move {
                fabric
                    .call(NodeId(0), NodeId(1), "ghost", Transport::Tcp, Bytes::new())
                    .await
                    .unwrap_err()
            }
        });
        assert_eq!(err, NetError::NoService("ghost".into()));
    }

    #[test]
    fn connection_reuse_and_close() {
        let mut sim = Sim::new(1);
        let fabric = build(&sim, NetworkGeneration::Dc2021);
        fabric.bind(NodeId(2), "svc", echo_handler());
        let (first, closed) = sim.block_on({
            let fabric = fabric.clone();
            async move {
                let conn = fabric.connect(NodeId(0), NodeId(2), "svc").await.unwrap();
                let first = conn.roundtrip(Bytes::from_static(b"a")).await;
                conn.close();
                let closed = conn.roundtrip(Bytes::from_static(b"b")).await;
                (first, closed)
            }
        });
        assert!(first.is_ok());
        assert_eq!(closed.unwrap_err(), NetError::Closed);
    }
}
