//! Latency and bandwidth models calibrated to Table 1.
//!
//! Table 1 gives round-trip times for three network generations; the model
//! splits an RTT into two one-way traversals and scales by hop class
//! (in-rack traffic skips the spine). Serialization delay is charged from
//! per-generation NIC bandwidth, and a small lognormal jitter keeps the
//! simulation from being artificially metronomic while staying
//! deterministic under a fixed seed.

use std::time::Duration;

use pcsi_sim::DetRng;

use crate::topology::HopClass;

/// The three network generations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkGeneration {
    /// 2005 datacenter network: 1,000,000 ns RTT, ~1 Gb/s.
    Dc2005,
    /// 2021 datacenter network: 200,000 ns RTT, ~25 Gb/s.
    Dc2021,
    /// Emerging fast network: 1,000 ns RTT, ~100 Gb/s (Table 1's
    /// "attack of the killer microseconds" row).
    FastEmerging,
}

impl NetworkGeneration {
    /// All generations, oldest first.
    pub const ALL: [NetworkGeneration; 3] = [
        NetworkGeneration::Dc2005,
        NetworkGeneration::Dc2021,
        NetworkGeneration::FastEmerging,
    ];

    /// The Table-1 cross-rack round-trip time.
    pub fn rtt(self) -> Duration {
        match self {
            NetworkGeneration::Dc2005 => Duration::from_nanos(1_000_000),
            NetworkGeneration::Dc2021 => Duration::from_nanos(200_000),
            NetworkGeneration::FastEmerging => Duration::from_nanos(1_000),
        }
    }

    /// NIC line rate in bytes per second.
    pub fn bandwidth_bps(self) -> u64 {
        match self {
            NetworkGeneration::Dc2005 => 1_000_000_000 / 8,
            NetworkGeneration::Dc2021 => 25_000_000_000 / 8,
            NetworkGeneration::FastEmerging => 100_000_000_000 / 8,
        }
    }

    /// Table-1 row label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkGeneration::Dc2005 => "2005 data center network RTT",
            NetworkGeneration::Dc2021 => "2021 data center network RTT",
            NetworkGeneration::FastEmerging => "Emerging fast network RTT",
        }
    }
}

/// Computes message delays for one generation.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    generation: NetworkGeneration,
    /// Relative jitter sigma (lognormal on the propagation component).
    jitter_sigma: f64,
}

impl LatencyModel {
    /// A model with the default 5% jitter.
    pub fn new(generation: NetworkGeneration) -> Self {
        LatencyModel {
            generation,
            jitter_sigma: 0.05,
        }
    }

    /// A jitter-free model (used by calibration tests that must hit the
    /// Table-1 numbers exactly).
    pub fn deterministic(generation: NetworkGeneration) -> Self {
        LatencyModel {
            generation,
            jitter_sigma: 0.0,
        }
    }

    /// The generation this model simulates.
    pub fn generation(&self) -> NetworkGeneration {
        self.generation
    }

    /// One-way propagation delay for a hop class, before jitter.
    ///
    /// Cross-rack is RTT/2 by definition; in-rack traffic skips the spine
    /// (0.4×); local delivery models a kernel loopback at 1% of the
    /// cross-rack time, floored at 200 ns.
    pub fn base_one_way(&self, hop: HopClass) -> Duration {
        let cross = self.generation.rtt() / 2;
        match hop {
            HopClass::CrossRack => cross,
            HopClass::SameRack => cross.mul_f64(0.4),
            HopClass::Local => cross.mul_f64(0.01).max(Duration::from_nanos(200)),
        }
    }

    /// Serialization (wire) time for a payload at line rate.
    pub fn serialization(&self, bytes: usize) -> Duration {
        let bps = self.generation.bandwidth_bps();
        Duration::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / bps)
    }

    /// One-way delay with jitter for a message of `bytes` over `hop`.
    pub fn one_way(&self, hop: HopClass, bytes: usize, rng: &DetRng) -> Duration {
        let base = self.base_one_way(hop);
        let jittered = if self.jitter_sigma > 0.0 {
            base.mul_f64(rng.lognormal(1.0, self.jitter_sigma))
        } else {
            base
        };
        jittered + self.serialization(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_matches_table1() {
        assert_eq!(NetworkGeneration::Dc2005.rtt(), Duration::from_millis(1));
        assert_eq!(NetworkGeneration::Dc2021.rtt(), Duration::from_micros(200));
        assert_eq!(
            NetworkGeneration::FastEmerging.rtt(),
            Duration::from_micros(1)
        );
    }

    #[test]
    fn cross_rack_one_way_is_half_rtt() {
        for generation in NetworkGeneration::ALL {
            let m = LatencyModel::deterministic(generation);
            assert_eq!(m.base_one_way(HopClass::CrossRack) * 2, generation.rtt());
        }
    }

    #[test]
    fn locality_ordering_holds() {
        let m = LatencyModel::deterministic(NetworkGeneration::Dc2021);
        assert!(m.base_one_way(HopClass::Local) < m.base_one_way(HopClass::SameRack));
        assert!(m.base_one_way(HopClass::SameRack) < m.base_one_way(HopClass::CrossRack));
    }

    #[test]
    fn serialization_scales_linearly() {
        let m = LatencyModel::deterministic(NetworkGeneration::Dc2021);
        let one_kib = m.serialization(1024);
        let one_mib = m.serialization(1024 * 1024);
        let ratio = one_mib.as_nanos() as f64 / one_kib.as_nanos() as f64;
        assert!((ratio - 1024.0).abs() < 16.0, "ratio {ratio}");
        // 1 KiB at 25 Gb/s is ~327 ns.
        assert!((300..360).contains(&(one_kib.as_nanos() as u64)));
    }

    #[test]
    fn jitter_perturbs_but_preserves_scale() {
        let m = LatencyModel::new(NetworkGeneration::Dc2021);
        let rng = DetRng::seeded(1);
        let base = m.base_one_way(HopClass::CrossRack);
        for _ in 0..100 {
            let d = m.one_way(HopClass::CrossRack, 0, &rng);
            let rel = d.as_secs_f64() / base.as_secs_f64();
            assert!((0.7..1.4).contains(&rel), "relative delay {rel}");
        }
    }

    #[test]
    fn deterministic_model_has_no_jitter() {
        let m = LatencyModel::deterministic(NetworkGeneration::Dc2005);
        let rng = DetRng::seeded(1);
        let a = m.one_way(HopClass::SameRack, 128, &rng);
        let b = m.one_way(HopClass::SameRack, 128, &rng);
        assert_eq!(a, b);
    }
}
