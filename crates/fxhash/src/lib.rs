//! Vendored offline subset of the FxHash API.
//!
//! A multiply-and-rotate hasher in the style of the one rustc uses for
//! its interning tables. Two properties matter for this workspace:
//!
//! * **Fast on small keys.** The simulator's hot maps are keyed by
//!   `u64`/`u128` ids, node ids, and short service-name strings; Fx
//!   hashes those in a handful of cycles where SipHash-1-3 burns
//!   dozens.
//! * **Deterministic.** `std::collections::HashMap`'s default
//!   `RandomState` seeds differently per map instance; Fx has no seed
//!   at all, so hashes — and therefore map iteration order — are
//!   identical across runs and across maps. The repository's
//!   determinism suite does not *rely* on iteration order anywhere
//!   (it already passes under per-instance random seeding), but a
//!   fixed hasher removes the hazard class outright.
//!
//! Not DoS-resistant; never use it for keys an adversary controls. In
//! a closed-world simulation every key is our own, so that trade is
//! free.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from rustc's `FxHasher` (a 64-bit golden-ratio-like
/// constant with good bit dispersion under multiplication).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Implements the classic Fx mix: for each word of input,
/// `hash = (hash rotl 5) ^ word, then hash *= K`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(chunk.try_into().unwrap())));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"service-name"), hash_of(&"service-name"));
        assert_eq!(hash_of(&(7u64, 9u32)), hash_of(&(7u64, 9u32)));
    }

    #[test]
    fn distinct_keys_disperse() {
        // Sanity, not a statistical test: nearby integers should not
        // collide and should differ in high bits (bucket selection
        // uses the top bits in hashbrown).
        let mut full = std::collections::HashSet::new();
        let mut high = std::collections::HashSet::new();
        for i in 0u64..1_000 {
            assert!(full.insert(hash_of(&i)), "collision at {i}");
            high.insert(hash_of(&i) >> 48);
        }
        // Sequential ints hash to multiples of K, whose top bits show
        // some lattice structure — hundreds of distinct values is
        // plenty; a broken mix would collapse to a handful.
        assert!(high.len() > 500, "high bits barely move: {}", high.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn byte_stream_matches_wordwise_tail_handling() {
        // 8-, 4-, and sub-4-byte tails all mix; unequal inputs that
        // share a prefix must diverge.
        let a = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13][..]);
        let b = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14][..]);
        assert_ne!(a, b);
    }
}
