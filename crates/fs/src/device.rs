//! Device interfaces to system services (§3.2).
//!
//! "While some objects may represent persistent data, others may
//! represent network connections or interfaces to system services." A
//! device object routes reads/writes to a registered service handler —
//! the PCSI analogue of `/dev` nodes and Plan 9 service files. The kernel
//! creates device objects (e.g. `clock`, `metrics`, `random`, `log`) in
//! function namespaces; functions use plain object I/O on them.

use fxhash::FxHashMap;
use std::rc::Rc;

use bytes::Bytes;
use pcsi_core::PcsiError;

/// A device service handler: input bytes in, output bytes out.
pub type DeviceHandler = Rc<dyn Fn(Bytes) -> Result<Bytes, PcsiError>>;

/// The registry mapping device class names to handlers.
#[derive(Clone, Default)]
pub struct DeviceRegistry {
    handlers: FxHashMap<String, DeviceHandler>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the handler for a device class.
    pub fn register(&mut self, class: &str, handler: DeviceHandler) {
        self.handlers.insert(class.to_owned(), handler);
    }

    /// True if a class is registered.
    pub fn has(&self, class: &str) -> bool {
        self.handlers.contains_key(class)
    }

    /// Registered class names, sorted.
    pub fn classes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.handlers.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Invokes the handler for `class`.
    pub fn dispatch(&self, class: &str, input: Bytes) -> Result<Bytes, PcsiError> {
        match self.handlers.get(class) {
            Some(h) => h(input),
            None => Err(PcsiError::NameNotFound(format!("device class {class:?}"))),
        }
    }
}

impl std::fmt::Debug for DeviceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceRegistry")
            .field("classes", &self.classes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_dispatch() {
        let mut reg = DeviceRegistry::new();
        reg.register(
            "upper",
            Rc::new(|input: Bytes| {
                Ok(Bytes::from(
                    String::from_utf8_lossy(&input).to_uppercase().into_bytes(),
                ))
            }),
        );
        assert!(reg.has("upper"));
        assert_eq!(
            reg.dispatch("upper", Bytes::from_static(b"abc")).unwrap(),
            Bytes::from_static(b"ABC")
        );
    }

    #[test]
    fn unknown_class_errors() {
        let reg = DeviceRegistry::new();
        assert!(matches!(
            reg.dispatch("ghost", Bytes::new()),
            Err(PcsiError::NameNotFound(_))
        ));
    }

    #[test]
    fn handler_errors_propagate() {
        let mut reg = DeviceRegistry::new();
        reg.register(
            "fails",
            Rc::new(|_| Err(PcsiError::Fault("device offline".into()))),
        );
        assert!(matches!(
            reg.dispatch("fails", Bytes::new()),
            Err(PcsiError::Fault(_))
        ));
    }

    #[test]
    fn classes_sorted_and_replace_works() {
        let mut reg = DeviceRegistry::new();
        reg.register("zeta", Rc::new(Ok));
        reg.register("alpha", Rc::new(Ok));
        assert_eq!(reg.classes(), vec!["alpha", "zeta"]);
        reg.register("zeta", Rc::new(|_| Ok(Bytes::from_static(b"v2"))));
        assert_eq!(
            reg.dispatch("zeta", Bytes::new()).unwrap(),
            Bytes::from_static(b"v2")
        );
    }
}
