//! Path validation and splitting.
//!
//! Paths in PCSI are always relative to a directory object the caller
//! holds; there is no global root and no upward traversal. Resolution is
//! performed step-by-step by the kernel (each step may fetch a directory
//! object over the network), so this module only handles the lexical
//! part.

use pcsi_core::PcsiError;

use crate::dir::Directory;

/// Splits a path into validated segments.
///
/// Rules: `/` separates segments; empty segments (leading, trailing or
/// doubled slashes) are ignored; `.` segments are dropped; `..` is
/// rejected (capability discipline: a namespace cannot reach above its
/// root); every remaining segment must be a valid entry name.
///
/// # Examples
///
/// ```
/// use pcsi_fs::path::split;
///
/// assert_eq!(split("a/b/c").unwrap(), vec!["a", "b", "c"]);
/// assert_eq!(split("./a//b/").unwrap(), vec!["a", "b"]);
/// assert!(split("a/../b").is_err());
/// assert_eq!(split("").unwrap(), Vec::<String>::new());
/// ```
pub fn split(path: &str) -> Result<Vec<String>, PcsiError> {
    let mut out = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => continue,
            ".." => {
                return Err(PcsiError::BadPayload(
                    "'..' traversal is not allowed in PCSI paths".into(),
                ))
            }
            name => {
                Directory::validate_name(name)?;
                out.push(name.to_owned());
            }
        }
    }
    Ok(out)
}

/// Joins segments back into a canonical path.
pub fn join(segments: &[String]) -> String {
    segments.join("/")
}

/// Splits a path into `(parent_segments, leaf)`; errors if the path has
/// no leaf (empty after normalization).
pub fn split_parent(path: &str) -> Result<(Vec<String>, String), PcsiError> {
    let mut segs = split(path)?;
    match segs.pop() {
        Some(leaf) => Ok((segs, leaf)),
        None => Err(PcsiError::BadPayload(format!(
            "path {path:?} has no leaf component"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(split("a/b").unwrap(), vec!["a", "b"]);
        assert_eq!(split("/a/b/").unwrap(), vec!["a", "b"]);
        assert_eq!(split("a///b").unwrap(), vec!["a", "b"]);
        assert_eq!(split("././a").unwrap(), vec!["a"]);
        assert!(split("..").is_err());
        assert!(split("ok/../nope").is_err());
    }

    #[test]
    fn empty_and_dot_paths_resolve_to_self() {
        assert!(split("").unwrap().is_empty());
        assert!(split(".").unwrap().is_empty());
        assert!(split("///").unwrap().is_empty());
    }

    #[test]
    fn parent_split() {
        let (parent, leaf) = split_parent("a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(leaf, "c");
        let (parent, leaf) = split_parent("solo").unwrap();
        assert!(parent.is_empty());
        assert_eq!(leaf, "solo");
        assert!(split_parent("").is_err());
        assert!(split_parent("./").is_err());
    }

    #[test]
    fn join_roundtrip() {
        let segs = split("x/y/z").unwrap();
        assert_eq!(join(&segs), "x/y/z");
    }
}
