//! Directory objects.
//!
//! A directory is a sorted name → entry map. Each entry records the target
//! object *and the rights the name conveys*: looking a name up yields a
//! reference attenuated to those rights, which is how namespaces delegate
//! capabilities (§3.2 — an object is accessible to whoever holds a
//! reference *or a namespace containing it*).
//!
//! Directories serialize to a compact byte format so they live in the
//! replicated store like any other object.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{Bytes, BytesMut};
use pcsi_core::{ObjectId, PcsiError, Rights};

/// One directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Target object.
    pub id: ObjectId,
    /// Rights conveyed by resolving this name.
    pub rights: Rights,
    /// Whiteout marker: in a union upper layer, hides a lower entry.
    pub whiteout: bool,
}

impl DirEntry {
    /// A normal entry.
    pub fn new(id: ObjectId, rights: Rights) -> Self {
        DirEntry {
            id,
            rights,
            whiteout: false,
        }
    }

    /// A whiteout entry (hides `name` in lower union layers).
    pub fn whiteout() -> Self {
        DirEntry {
            id: ObjectId::NIL,
            rights: Rights::NONE,
            whiteout: true,
        }
    }
}

/// A directory: deterministic, serializable name → entry map.
///
/// # Examples
///
/// ```
/// use pcsi_fs::{Directory, DirEntry};
/// use pcsi_core::{ObjectId, Rights};
///
/// let mut d = Directory::new();
/// d.link("weights", DirEntry::new(ObjectId::from_parts(1, 1), Rights::READ)).unwrap();
/// let bytes = d.encode();
/// let d2 = Directory::decode(&bytes).unwrap();
/// assert_eq!(d2.get("weights").unwrap().rights, Rights::READ);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Directory {
    entries: BTreeMap<String, DirEntry>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates an entry name: non-empty, no `/`, not `.` or `..`, and
    /// at most 255 bytes.
    pub fn validate_name(name: &str) -> Result<(), PcsiError> {
        if name.is_empty() || name == "." || name == ".." {
            return Err(PcsiError::BadPayload(format!(
                "invalid directory entry name {name:?}"
            )));
        }
        if name.contains('/') {
            return Err(PcsiError::BadPayload(format!(
                "entry name {name:?} contains '/'"
            )));
        }
        if name.len() > 255 {
            return Err(PcsiError::BadPayload("entry name too long".into()));
        }
        Ok(())
    }

    /// Adds an entry; fails if the name exists (use [`Directory::relink`]
    /// to replace).
    pub fn link(&mut self, name: &str, entry: DirEntry) -> Result<(), PcsiError> {
        Self::validate_name(name)?;
        if self.entries.contains_key(name) {
            return Err(PcsiError::AlreadyExists(name.to_owned()));
        }
        self.entries.insert(name.to_owned(), entry);
        Ok(())
    }

    /// Adds or replaces an entry.
    pub fn relink(&mut self, name: &str, entry: DirEntry) -> Result<(), PcsiError> {
        Self::validate_name(name)?;
        self.entries.insert(name.to_owned(), entry);
        Ok(())
    }

    /// Removes an entry.
    pub fn unlink(&mut self, name: &str) -> Result<DirEntry, PcsiError> {
        self.entries
            .remove(name)
            .ok_or_else(|| PcsiError::NameNotFound(name.to_owned()))
    }

    /// Looks an entry up.
    pub fn get(&self, name: &str) -> Option<&DirEntry> {
        self.entries.get(name)
    }

    /// Entry names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Iterates `(name, entry)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DirEntry)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of all non-whiteout targets (GC edge set).
    pub fn target_ids(&self) -> Vec<ObjectId> {
        self.entries
            .values()
            .filter(|e| !e.whiteout)
            .map(|e| e.id)
            .collect()
    }

    /// Serializes to bytes.
    ///
    /// Format per entry: `u16 name_len | name | u128 id | u8 rights |
    /// u8 flags`, preceded by a `u32` entry count.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.entries.len() * 32);
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, e) in &self.entries {
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(&e.id.as_u128().to_le_bytes());
            buf.extend_from_slice(&[e.rights.bits(), u8::from(e.whiteout)]);
        }
        buf.freeze()
    }

    /// Deserializes from bytes produced by [`Directory::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Directory, PcsiError> {
        fn bad(msg: &str) -> PcsiError {
            PcsiError::BadPayload(format!("directory decode: {msg}"))
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], PcsiError> {
            if bytes.len() - *pos < n {
                return Err(bad("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|_| bad("name not UTF-8"))?
                .to_owned();
            let id =
                ObjectId::from_u128(u128::from_le_bytes(take(&mut pos, 16)?.try_into().unwrap()));
            let meta = take(&mut pos, 2)?;
            entries.insert(
                name,
                DirEntry {
                    id,
                    rights: Rights::from_bits(meta[0]),
                    whiteout: meta[1] != 0,
                },
            );
        }
        if pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(Directory { entries })
    }
}

impl fmt::Display for Directory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dir[{} entries]", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(8, n)
    }

    #[test]
    fn link_get_unlink() {
        let mut d = Directory::new();
        d.link("a", DirEntry::new(oid(1), Rights::READ)).unwrap();
        assert_eq!(d.get("a").unwrap().id, oid(1));
        assert!(matches!(
            d.link("a", DirEntry::new(oid(2), Rights::READ)),
            Err(PcsiError::AlreadyExists(_))
        ));
        d.relink("a", DirEntry::new(oid(2), Rights::ALL)).unwrap();
        assert_eq!(d.get("a").unwrap().id, oid(2));
        d.unlink("a").unwrap();
        assert!(matches!(d.unlink("a"), Err(PcsiError::NameNotFound(_))));
        assert!(d.is_empty());
    }

    #[test]
    fn names_rejected() {
        let mut d = Directory::new();
        for bad in ["", ".", "..", "a/b"] {
            assert!(
                d.link(bad, DirEntry::new(oid(1), Rights::READ)).is_err(),
                "{bad:?} accepted"
            );
        }
        let long = "x".repeat(256);
        assert!(d.link(&long, DirEntry::new(oid(1), Rights::READ)).is_err());
        let ok = "x".repeat(255);
        assert!(d.link(&ok, DirEntry::new(oid(1), Rights::READ)).is_ok());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Directory::new();
        d.link("weights", DirEntry::new(oid(1), Rights::READ))
            .unwrap();
        d.link(
            "uploads",
            DirEntry::new(oid(2), Rights::READ | Rights::APPEND),
        )
        .unwrap();
        d.link("münchen", DirEntry::new(oid(3), Rights::ALL))
            .unwrap();
        d.relink("hidden", DirEntry::whiteout()).unwrap();
        let decoded = Directory::decode(&d.encode()).unwrap();
        assert_eq!(decoded, d);
        assert!(decoded.get("hidden").unwrap().whiteout);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut d = Directory::new();
        d.link("a", DirEntry::new(oid(1), Rights::READ)).unwrap();
        let wire = d.encode();
        for cut in 1..wire.len() {
            assert!(Directory::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = wire.to_vec();
        extra.push(0);
        assert!(Directory::decode(&extra).is_err());
        assert!(Directory::decode(&[]).is_err());
    }

    #[test]
    fn empty_roundtrip() {
        let d = Directory::new();
        assert_eq!(Directory::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn target_ids_skip_whiteouts() {
        let mut d = Directory::new();
        d.link("a", DirEntry::new(oid(1), Rights::READ)).unwrap();
        d.relink("gone", DirEntry::whiteout()).unwrap();
        assert_eq!(d.target_ids(), vec![oid(1)]);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut d = Directory::new();
        for name in ["zeta", "alpha", "mid"] {
            d.link(name, DirEntry::new(oid(1), Rights::READ)).unwrap();
        }
        assert_eq!(d.names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(d.len(), 3);
    }
}
