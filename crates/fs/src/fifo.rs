//! FIFO objects.
//!
//! A FIFO connects pipeline stages: producers append messages, consumers
//! pop them in order, waiting when the queue is empty (Figure 2 feeds its
//! post-processing function through one). The implementation is
//! waker-based and executor-agnostic; the kernel charges transport time
//! separately, so the queue itself is pure coordination.
//!
//! Waiters are registered in a keyed list that the *consumer* maintains:
//! a push wakes the front waiter by reference but leaves the entry in
//! place, and the waiter removes itself when it actually dequeues (or
//! when its future is dropped). This closes the lost-wakeup window of
//! the obvious "pop a waker and wake it" design — a `Pop` future that
//! is woken and then dropped without being polled hands the wakeup to
//! the next waiter instead of stranding a queued message.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use bytes::Bytes;
use pcsi_core::PcsiError;

struct FifoState {
    queue: VecDeque<Bytes>,
    /// Registered consumers in arrival order, keyed so a future can
    /// find and remove its own entry on dequeue or drop.
    waiters: VecDeque<(u64, Waker)>,
    next_waiter: u64,
    closed: bool,
    capacity: Option<usize>,
    total_pushed: u64,
}

impl FifoState {
    fn wake_front(&self) {
        if let Some((_, w)) = self.waiters.front() {
            w.wake_by_ref();
        }
    }

    fn remove_waiter(&mut self, key: u64) {
        if let Some(i) = self.waiters.iter().position(|(k, _)| *k == key) {
            self.waiters.remove(i);
        }
    }
}

/// A multi-producer, multi-consumer byte-message FIFO.
///
/// Clones share the queue.
///
/// # Examples
///
/// ```
/// use pcsi_fs::FifoQueue;
/// use bytes::Bytes;
///
/// let f = FifoQueue::unbounded();
/// f.push(Bytes::from_static(b"m1")).unwrap();
/// assert_eq!(f.try_pop().unwrap(), Bytes::from_static(b"m1"));
/// assert!(f.try_pop().is_none());
/// ```
#[derive(Clone)]
pub struct FifoQueue {
    state: Rc<RefCell<FifoState>>,
}

impl FifoQueue {
    /// A FIFO with no capacity bound.
    pub fn unbounded() -> Self {
        Self::with_capacity(None)
    }

    /// A FIFO rejecting pushes beyond `capacity` queued messages.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        FifoQueue {
            state: Rc::new(RefCell::new(FifoState {
                queue: VecDeque::new(),
                waiters: VecDeque::new(),
                next_waiter: 0,
                closed: false,
                capacity,
                total_pushed: 0,
            })),
        }
    }

    /// Enqueues a message, waking one waiting consumer.
    ///
    /// Fails with [`PcsiError::Overloaded`] when a bounded FIFO is full
    /// and with [`PcsiError::InvalidReference`] after close.
    pub fn push(&self, msg: Bytes) -> Result<(), PcsiError> {
        let mut s = self.state.borrow_mut();
        if s.closed {
            return Err(PcsiError::InvalidReference("fifo is closed".into()));
        }
        if let Some(cap) = s.capacity {
            if s.queue.len() >= cap {
                return Err(PcsiError::Overloaded(format!("fifo full ({cap} messages)")));
            }
        }
        s.queue.push_back(msg);
        s.total_pushed += 1;
        s.wake_front();
        Ok(())
    }

    /// Non-blocking push that hands the message back instead of
    /// constructing an error when a bounded FIFO is full — the shape a
    /// retry loop wants.
    ///
    /// Returns `Ok(None)` when queued, `Ok(Some(msg))` when the FIFO is
    /// at capacity, and `Err` when it is closed.
    pub fn try_push(&self, msg: Bytes) -> Result<Option<Bytes>, PcsiError> {
        let mut s = self.state.borrow_mut();
        if s.closed {
            return Err(PcsiError::InvalidReference("fifo is closed".into()));
        }
        if let Some(cap) = s.capacity {
            if s.queue.len() >= cap {
                return Ok(Some(msg));
            }
        }
        s.queue.push_back(msg);
        s.total_pushed += 1;
        s.wake_front();
        Ok(None)
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<Bytes> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Pops the next message, waiting while the queue is empty.
    ///
    /// Resolves to `Err` if the FIFO is closed while empty.
    pub fn pop(&self) -> Pop {
        Pop {
            state: Rc::clone(&self.state),
            registered: None,
        }
    }

    /// Closes the FIFO: pending and future pops of an empty queue fail,
    /// already-queued messages still drain.
    pub fn close(&self) {
        let mut s = self.state.borrow_mut();
        s.closed = true;
        for (_, w) in &s.waiters {
            w.wake_by_ref();
        }
    }

    /// True once [`FifoQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.borrow().closed
    }

    /// The capacity bound, or `None` for unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.state.borrow().capacity
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total messages ever pushed (metrics).
    pub fn total_pushed(&self) -> u64 {
        self.state.borrow().total_pushed
    }
}

/// Future returned by [`FifoQueue::pop`].
pub struct Pop {
    state: Rc<RefCell<FifoState>>,
    /// Key of this future's entry in the waiter list, once registered.
    registered: Option<u64>,
}

impl Future for Pop {
    type Output = Result<Bytes, PcsiError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let state = Rc::clone(&self.state);
        let mut s = state.borrow_mut();
        if let Some(msg) = s.queue.pop_front() {
            if let Some(key) = self.registered.take() {
                s.remove_waiter(key);
                // Another message may still be queued for the consumer
                // behind us; this dequeue consumed the wake.
                if !s.queue.is_empty() {
                    s.wake_front();
                }
            }
            return Poll::Ready(Ok(msg));
        }
        if s.closed {
            if let Some(key) = self.registered.take() {
                s.remove_waiter(key);
            }
            return Poll::Ready(Err(PcsiError::InvalidReference("fifo is closed".into())));
        }
        match self.registered {
            Some(key) => {
                // Refresh the stored waker in place (it may belong to a
                // different task wrapper after a spurious wake).
                if let Some(entry) = s.waiters.iter_mut().find(|(k, _)| *k == key) {
                    entry.1 = cx.waker().clone();
                }
            }
            None => {
                let key = s.next_waiter;
                s.next_waiter += 1;
                s.waiters.push_back((key, cx.waker().clone()));
                drop(s);
                self.registered = Some(key);
            }
        }
        Poll::Pending
    }
}

impl Drop for Pop {
    fn drop(&mut self) {
        if let Some(key) = self.registered.take() {
            let mut s = self.state.borrow_mut();
            s.remove_waiter(key);
            // If we were woken for a message we never collected, pass
            // the wakeup on instead of stranding the message.
            if !s.queue.is_empty() {
                s.wake_front();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let f = FifoQueue::unbounded();
        for i in 0..5u8 {
            f.push(Bytes::from(vec![i])).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(f.try_pop().unwrap()[0], i);
        }
        assert_eq!(f.total_pushed(), 5);
    }

    #[test]
    fn bounded_rejects_overflow() {
        let f = FifoQueue::bounded(2);
        f.push(Bytes::from_static(b"a")).unwrap();
        f.push(Bytes::from_static(b"b")).unwrap();
        assert!(matches!(
            f.push(Bytes::from_static(b"c")),
            Err(PcsiError::Overloaded(_))
        ));
        f.try_pop();
        assert!(f.push(Bytes::from_static(b"c")).is_ok());
    }

    #[test]
    fn try_push_returns_the_message_when_full() {
        let f = FifoQueue::bounded(1);
        assert!(f.try_push(Bytes::from_static(b"a")).unwrap().is_none());
        // Full: the message comes back untouched, no error allocated.
        let back = f.try_push(Bytes::from_static(b"b")).unwrap();
        assert_eq!(back, Some(Bytes::from_static(b"b")));
        assert_eq!(f.len(), 1);
        // Draining frees the slot.
        f.try_pop().unwrap();
        assert!(f.try_push(Bytes::from_static(b"b")).unwrap().is_none());
        // Closed beats full: an error, not a bounce.
        f.close();
        assert!(f.try_push(Bytes::from_static(b"c")).is_err());
    }

    #[test]
    fn close_drains_then_errors() {
        let f = FifoQueue::unbounded();
        f.push(Bytes::from_static(b"last")).unwrap();
        f.close();
        assert!(f.push(Bytes::from_static(b"x")).is_err());
        assert!(f.is_closed());
        assert_eq!(f.try_pop().unwrap(), Bytes::from_static(b"last"));
        assert!(f.try_pop().is_none());
    }

    /// Async behaviour is exercised with a trivial single-future executor
    /// to keep this crate free of a pcsi-sim dependency.
    fn poll_once<F: Future>(fut: &mut Pin<Box<F>>) -> Poll<F::Output> {
        use std::task::Wake;
        struct Noop;
        impl Wake for Noop {
            fn wake(self: std::sync::Arc<Self>) {}
        }
        let waker = std::task::Waker::from(std::sync::Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        fut.as_mut().poll(&mut cx)
    }

    /// A waker that records wakes, so tests can observe who got woken.
    fn counting_waker() -> (Waker, std::sync::Arc<std::sync::atomic::AtomicU32>) {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        use std::task::Wake;
        struct Count(Arc<AtomicU32>);
        impl Wake for Count {
            fn wake(self: Arc<Self>) {
                self.wake_by_ref();
            }
            fn wake_by_ref(self: &Arc<Self>) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let count = Arc::new(AtomicU32::new(0));
        let waker = Waker::from(Arc::new(Count(count.clone())));
        (waker, count)
    }

    #[test]
    fn pop_waits_until_push() {
        let f = FifoQueue::unbounded();
        let mut pop = Box::pin(f.pop());
        assert!(poll_once(&mut pop).is_pending());
        f.push(Bytes::from_static(b"late")).unwrap();
        match poll_once(&mut pop) {
            Poll::Ready(Ok(b)) => assert_eq!(b, Bytes::from_static(b"late")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pop_on_closed_empty_fails() {
        let f = FifoQueue::unbounded();
        let mut pop = Box::pin(f.pop());
        assert!(poll_once(&mut pop).is_pending());
        f.close();
        match poll_once(&mut pop) {
            Poll::Ready(Err(PcsiError::InvalidReference(_))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_wakes_every_pending_waiter() {
        let f = FifoQueue::unbounded();
        let (wa, ca) = counting_waker();
        let (wb, cb) = counting_waker();
        let mut pa = Box::pin(f.pop());
        let mut pb = Box::pin(f.pop());
        assert!(pa.as_mut().poll(&mut Context::from_waker(&wa)).is_pending());
        assert!(pb.as_mut().poll(&mut Context::from_waker(&wb)).is_pending());
        f.close();
        use std::sync::atomic::Ordering;
        assert!(ca.load(Ordering::Relaxed) >= 1, "first waiter not woken");
        assert!(cb.load(Ordering::Relaxed) >= 1, "second waiter not woken");
        // Both resolve to the closed error when re-polled.
        assert!(matches!(
            pa.as_mut().poll(&mut Context::from_waker(&wa)),
            Poll::Ready(Err(PcsiError::InvalidReference(_)))
        ));
        assert!(matches!(
            pb.as_mut().poll(&mut Context::from_waker(&wb)),
            Poll::Ready(Err(PcsiError::InvalidReference(_)))
        ));
    }

    #[test]
    fn multi_consumer_sees_every_message_in_order() {
        // Two concurrent consumers, interleaved with pushes: between
        // them they must observe every message exactly once, and each
        // consumer's own sequence must be in FIFO order.
        let f = FifoQueue::unbounded();
        let (wa, _) = counting_waker();
        let (wb, _) = counting_waker();
        let mut got = Vec::new();
        let mut pa = Box::pin(f.pop());
        let mut pb = Box::pin(f.pop());
        assert!(pa.as_mut().poll(&mut Context::from_waker(&wa)).is_pending());
        assert!(pb.as_mut().poll(&mut Context::from_waker(&wb)).is_pending());
        for i in 0..6u8 {
            f.push(Bytes::from(vec![i])).unwrap();
            // Alternate which consumer polls first; whoever resolves
            // replaces their future with a fresh pop.
            let (first, second): (&mut Pin<Box<Pop>>, _) = if i % 2 == 0 {
                (&mut pa, &mut pb)
            } else {
                (&mut pb, &mut pa)
            };
            match first
                .as_mut()
                .poll(&mut Context::from_waker(if i % 2 == 0 { &wa } else { &wb }))
            {
                Poll::Ready(Ok(b)) => {
                    got.push(b[0]);
                    *first = Box::pin(f.pop());
                    assert!(first
                        .as_mut()
                        .poll(&mut Context::from_waker(if i % 2 == 0 { &wa } else { &wb }))
                        .is_pending());
                }
                other => panic!("unexpected {other:?}"),
            }
            assert!(second
                .as_mut()
                .poll(&mut Context::from_waker(if i % 2 == 0 { &wb } else { &wa }))
                .is_pending());
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn woken_pop_dropped_without_poll_hands_the_message_on() {
        // The lost-wakeup regression: waiter A is woken by a push, then
        // its future is dropped before ever being polled. The queued
        // message must flow to waiter B, not sit stranded.
        let f = FifoQueue::unbounded();
        let (wa, ca) = counting_waker();
        let (wb, cb) = counting_waker();
        let mut pa = Box::pin(f.pop());
        let mut pb = Box::pin(f.pop());
        assert!(pa.as_mut().poll(&mut Context::from_waker(&wa)).is_pending());
        assert!(pb.as_mut().poll(&mut Context::from_waker(&wb)).is_pending());
        f.push(Bytes::from_static(b"msg")).unwrap();
        use std::sync::atomic::Ordering;
        assert_eq!(ca.load(Ordering::Relaxed), 1, "front waiter should wake");
        assert_eq!(
            cb.load(Ordering::Relaxed),
            0,
            "only the front waiter wakes per push"
        );
        // A is cancelled without being polled again.
        drop(pa);
        assert!(
            cb.load(Ordering::Relaxed) >= 1,
            "drop must hand the wakeup to B"
        );
        match pb.as_mut().poll(&mut Context::from_waker(&wb)) {
            Poll::Ready(Ok(b)) => assert_eq!(b, Bytes::from_static(b"msg")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clones_share_state() {
        let f = FifoQueue::unbounded();
        let g = f.clone();
        f.push(Bytes::from_static(b"shared")).unwrap();
        assert_eq!(g.try_pop().unwrap(), Bytes::from_static(b"shared"));
    }
}
