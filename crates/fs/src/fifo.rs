//! FIFO objects.
//!
//! A FIFO connects pipeline stages: producers append messages, consumers
//! pop them in order, waiting when the queue is empty (Figure 2 feeds its
//! post-processing function through one). The implementation is
//! waker-based and executor-agnostic; the kernel charges transport time
//! separately, so the queue itself is pure coordination.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use bytes::Bytes;
use pcsi_core::PcsiError;

struct FifoState {
    queue: VecDeque<Bytes>,
    waiters: VecDeque<Waker>,
    closed: bool,
    capacity: Option<usize>,
    total_pushed: u64,
}

/// A multi-producer, multi-consumer byte-message FIFO.
///
/// Clones share the queue.
///
/// # Examples
///
/// ```
/// use pcsi_fs::FifoQueue;
/// use bytes::Bytes;
///
/// let f = FifoQueue::unbounded();
/// f.push(Bytes::from_static(b"m1")).unwrap();
/// assert_eq!(f.try_pop().unwrap(), Bytes::from_static(b"m1"));
/// assert!(f.try_pop().is_none());
/// ```
#[derive(Clone)]
pub struct FifoQueue {
    state: Rc<RefCell<FifoState>>,
}

impl FifoQueue {
    /// A FIFO with no capacity bound.
    pub fn unbounded() -> Self {
        Self::with_capacity(None)
    }

    /// A FIFO rejecting pushes beyond `capacity` queued messages.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        FifoQueue {
            state: Rc::new(RefCell::new(FifoState {
                queue: VecDeque::new(),
                waiters: VecDeque::new(),
                closed: false,
                capacity,
                total_pushed: 0,
            })),
        }
    }

    /// Enqueues a message, waking one waiting consumer.
    ///
    /// Fails with [`PcsiError::Overloaded`] when a bounded FIFO is full
    /// and with [`PcsiError::InvalidReference`] after close.
    pub fn push(&self, msg: Bytes) -> Result<(), PcsiError> {
        let mut s = self.state.borrow_mut();
        if s.closed {
            return Err(PcsiError::InvalidReference("fifo is closed".into()));
        }
        if let Some(cap) = s.capacity {
            if s.queue.len() >= cap {
                return Err(PcsiError::Overloaded(format!("fifo full ({cap} messages)")));
            }
        }
        s.queue.push_back(msg);
        s.total_pushed += 1;
        if let Some(w) = s.waiters.pop_front() {
            w.wake();
        }
        Ok(())
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<Bytes> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Pops the next message, waiting while the queue is empty.
    ///
    /// Resolves to `Err` if the FIFO is closed while empty.
    pub fn pop(&self) -> Pop {
        Pop {
            state: Rc::clone(&self.state),
        }
    }

    /// Closes the FIFO: pending and future pops of an empty queue fail,
    /// already-queued messages still drain.
    pub fn close(&self) {
        let mut s = self.state.borrow_mut();
        s.closed = true;
        for w in s.waiters.drain(..) {
            w.wake();
        }
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total messages ever pushed (metrics).
    pub fn total_pushed(&self) -> u64 {
        self.state.borrow().total_pushed
    }
}

/// Future returned by [`FifoQueue::pop`].
pub struct Pop {
    state: Rc<RefCell<FifoState>>,
}

impl Future for Pop {
    type Output = Result<Bytes, PcsiError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if let Some(msg) = s.queue.pop_front() {
            return Poll::Ready(Ok(msg));
        }
        if s.closed {
            return Poll::Ready(Err(PcsiError::InvalidReference("fifo is closed".into())));
        }
        s.waiters.push_back(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let f = FifoQueue::unbounded();
        for i in 0..5u8 {
            f.push(Bytes::from(vec![i])).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(f.try_pop().unwrap()[0], i);
        }
        assert_eq!(f.total_pushed(), 5);
    }

    #[test]
    fn bounded_rejects_overflow() {
        let f = FifoQueue::bounded(2);
        f.push(Bytes::from_static(b"a")).unwrap();
        f.push(Bytes::from_static(b"b")).unwrap();
        assert!(matches!(
            f.push(Bytes::from_static(b"c")),
            Err(PcsiError::Overloaded(_))
        ));
        f.try_pop();
        assert!(f.push(Bytes::from_static(b"c")).is_ok());
    }

    #[test]
    fn close_drains_then_errors() {
        let f = FifoQueue::unbounded();
        f.push(Bytes::from_static(b"last")).unwrap();
        f.close();
        assert!(f.push(Bytes::from_static(b"x")).is_err());
        assert_eq!(f.try_pop().unwrap(), Bytes::from_static(b"last"));
        assert!(f.try_pop().is_none());
    }

    /// Async behaviour is exercised with a trivial single-future executor
    /// to keep this crate free of a pcsi-sim dependency.
    fn poll_once<F: Future>(fut: &mut Pin<Box<F>>) -> Poll<F::Output> {
        use std::task::Wake;
        struct Noop;
        impl Wake for Noop {
            fn wake(self: std::sync::Arc<Self>) {}
        }
        let waker = std::task::Waker::from(std::sync::Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        fut.as_mut().poll(&mut cx)
    }

    #[test]
    fn pop_waits_until_push() {
        let f = FifoQueue::unbounded();
        let mut pop = Box::pin(f.pop());
        assert!(poll_once(&mut pop).is_pending());
        f.push(Bytes::from_static(b"late")).unwrap();
        match poll_once(&mut pop) {
            Poll::Ready(Ok(b)) => assert_eq!(b, Bytes::from_static(b"late")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pop_on_closed_empty_fails() {
        let f = FifoQueue::unbounded();
        let mut pop = Box::pin(f.pop());
        assert!(poll_once(&mut pop).is_pending());
        f.close();
        match poll_once(&mut pop) {
            Poll::Ready(Err(PcsiError::InvalidReference(_))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clones_share_state() {
        let f = FifoQueue::unbounded();
        let g = f.clone();
        f.push(Bytes::from_static(b"shared")).unwrap();
        assert_eq!(g.try_pop().unwrap(), Bytes::from_static(b"shared"));
    }
}
