#![warn(missing_docs)]
//! # pcsi-fs — "everything is a file" (§3.2)
//!
//! The object-namespace layer of PCSI. This crate supplies the data
//! structures and algorithms the kernel composes with the replicated
//! store:
//!
//! * [`dir::Directory`] — name → (object, rights) maps with a compact
//!   byte serialization so directories are themselves ordinary stored
//!   objects,
//! * [`path`] — path validation and splitting (resolution is iterative in
//!   the kernel because each step may hit the network),
//! * [`union::UnionDir`] — union file systems with whiteouts, "allowing
//!   one namespace to be superimposed on top of another" (the Docker-layer
//!   pattern the paper cites),
//! * [`fifo::FifoQueue`] — FIFO objects connecting pipeline stages
//!   (Figure 2's post-processing hand-off),
//! * [`device::DeviceRegistry`] — device interfaces to system services.
//!
//! Design note: PCSI has **no global namespace**. Every function receives
//! a directory object as its root, so all paths here are relative and
//! `..` is rejected — upward traversal would reintroduce ambient
//! authority that the capability model deliberately removes.

pub mod device;
pub mod dir;
pub mod fifo;
pub mod path;
pub mod union;

pub use dir::{DirEntry, Directory};
pub use fifo::FifoQueue;
pub use union::UnionDir;
