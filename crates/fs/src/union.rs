//! Union file systems (§3.2).
//!
//! "File system layering has proven valuable in building cloud
//! applications ... PCSI will include support for union file systems,
//! allowing one namespace to be superimposed on top of another."
//!
//! A [`UnionDir`] stacks directory layers, topmost first. Lookup walks
//! layers top-down; a whiteout entry in a higher layer hides the name in
//! all lower layers. Listing merges all layers with the same precedence
//! rule. Writes (link/unlink) go to the top layer only — lower layers are
//! typically shared, read-only base images.

use pcsi_core::PcsiError;

use crate::dir::{DirEntry, Directory};

/// A stack of directory layers, index 0 on top.
#[derive(Debug, Clone, Default)]
pub struct UnionDir {
    layers: Vec<Directory>,
}

impl UnionDir {
    /// Creates a union from layers, topmost first.
    pub fn new(layers: Vec<Directory>) -> Self {
        UnionDir { layers }
    }

    /// A union with a single empty writable layer above `base`.
    pub fn over(base: Directory) -> Self {
        UnionDir {
            layers: vec![Directory::new(), base],
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The top (writable) layer.
    ///
    /// # Panics
    ///
    /// Panics if the union has no layers.
    pub fn top(&self) -> &Directory {
        self.layers.first().expect("union has no layers")
    }

    /// Resolves `name` through the layers.
    ///
    /// Returns `None` if absent or hidden by a whiteout.
    pub fn get(&self, name: &str) -> Option<&DirEntry> {
        for layer in &self.layers {
            if let Some(e) = layer.get(name) {
                return if e.whiteout { None } else { Some(e) };
            }
        }
        None
    }

    /// Merged listing: visible names in sorted order.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut hidden: Vec<&str> = Vec::new();
        let mut seen: Vec<&str> = Vec::new();
        for layer in &self.layers {
            for (name, e) in layer.iter() {
                if seen.contains(&name) || hidden.contains(&name) {
                    continue;
                }
                if e.whiteout {
                    hidden.push(name);
                } else {
                    seen.push(name);
                    out.push(name.to_owned());
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Links into the top layer (replacing any top-layer entry, including
    /// whiteouts — re-creating a deleted name works).
    pub fn link(&mut self, name: &str, entry: DirEntry) -> Result<(), PcsiError> {
        if self.get(name).is_some() {
            return Err(PcsiError::AlreadyExists(name.to_owned()));
        }
        self.layers
            .first_mut()
            .ok_or_else(|| PcsiError::BadPayload("union has no layers".into()))?
            .relink(name, entry)
    }

    /// Unlinks a visible name.
    ///
    /// If the name exists only in a lower layer, a whiteout is written to
    /// the top layer; if it exists in the top layer it is removed there
    /// (plus a whiteout if a lower layer would otherwise re-expose it).
    pub fn unlink(&mut self, name: &str) -> Result<(), PcsiError> {
        if self.get(name).is_none() {
            return Err(PcsiError::NameNotFound(name.to_owned()));
        }
        let in_lower = self.layers[1..]
            .iter()
            .any(|l| l.get(name).map(|e| !e.whiteout).unwrap_or(false));
        let top = self
            .layers
            .first_mut()
            .ok_or_else(|| PcsiError::BadPayload("union has no layers".into()))?;
        if in_lower {
            top.relink(name, DirEntry::whiteout())
        } else {
            top.unlink(name).map(|_| ())
        }
    }

    /// Consumes the union, returning the (possibly modified) top layer
    /// for persistence.
    pub fn into_top(mut self) -> Directory {
        if self.layers.is_empty() {
            Directory::new()
        } else {
            self.layers.swap_remove(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcsi_core::{ObjectId, Rights};

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_parts(9, n)
    }

    fn entry(n: u64) -> DirEntry {
        DirEntry::new(oid(n), Rights::READ)
    }

    fn base() -> Directory {
        let mut d = Directory::new();
        d.link("lib", entry(1)).unwrap();
        d.link("etc", entry(2)).unwrap();
        d
    }

    #[test]
    fn upper_layer_shadows_lower() {
        let mut top = Directory::new();
        top.link("lib", entry(10)).unwrap();
        let u = UnionDir::new(vec![top, base()]);
        assert_eq!(u.get("lib").unwrap().id, oid(10));
        assert_eq!(u.get("etc").unwrap().id, oid(2));
        assert!(u.get("missing").is_none());
    }

    #[test]
    fn whiteout_hides_lower_entry() {
        let mut u = UnionDir::over(base());
        u.unlink("lib").unwrap();
        assert!(u.get("lib").is_none());
        assert_eq!(u.names(), vec!["etc"]);
        // The base layer is untouched.
        assert_eq!(u.layers[1].get("lib").unwrap().id, oid(1));
        // Unlinking again reports not-found.
        assert!(matches!(u.unlink("lib"), Err(PcsiError::NameNotFound(_))));
    }

    #[test]
    fn recreate_after_whiteout() {
        let mut u = UnionDir::over(base());
        u.unlink("lib").unwrap();
        u.link("lib", entry(42)).unwrap();
        assert_eq!(u.get("lib").unwrap().id, oid(42));
        assert_eq!(u.names(), vec!["etc", "lib"]);
    }

    #[test]
    fn link_conflicts_with_visible_entry() {
        let mut u = UnionDir::over(base());
        assert!(matches!(
            u.link("etc", entry(9)),
            Err(PcsiError::AlreadyExists(_))
        ));
    }

    #[test]
    fn unlink_top_only_entry_removes_without_whiteout() {
        let mut u = UnionDir::over(base());
        u.link("scratch", entry(7)).unwrap();
        u.unlink("scratch").unwrap();
        assert!(u.get("scratch").is_none());
        // No whiteout needed: nothing below to hide.
        assert!(u.top().get("scratch").is_none());
    }

    #[test]
    fn merged_listing_dedups_across_layers() {
        let mut mid = Directory::new();
        mid.link("lib", entry(20)).unwrap();
        mid.link("bin", entry(21)).unwrap();
        let u = UnionDir::new(vec![Directory::new(), mid, base()]);
        assert_eq!(u.names(), vec!["bin", "etc", "lib"]);
        assert_eq!(u.get("lib").unwrap().id, oid(20)); // Middle wins over base.
    }

    #[test]
    fn three_layer_whiteout_in_middle() {
        let mut mid = Directory::new();
        mid.relink("lib", DirEntry::whiteout()).unwrap();
        let u = UnionDir::new(vec![Directory::new(), mid, base()]);
        assert!(u.get("lib").is_none());
        assert_eq!(u.names(), vec!["etc"]);
    }

    #[test]
    fn into_top_persists_mutations() {
        let mut u = UnionDir::over(base());
        u.unlink("lib").unwrap();
        u.link("new", entry(3)).unwrap();
        let top = u.into_top();
        assert!(top.get("lib").unwrap().whiteout);
        assert_eq!(top.get("new").unwrap().id, oid(3));
    }
}
