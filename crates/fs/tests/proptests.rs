//! Property-based tests for the file layer.

use proptest::prelude::*;

use pcsi_core::{ObjectId, Rights};
use pcsi_fs::{path, DirEntry, Directory, UnionDir};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,16}".prop_filter("not dot names", |s| s != "." && s != "..")
}

fn arb_entry() -> impl Strategy<Value = DirEntry> {
    (any::<u64>(), any::<u8>(), any::<bool>()).prop_map(|(n, bits, whiteout)| {
        if whiteout {
            DirEntry::whiteout()
        } else {
            DirEntry::new(
                ObjectId::from_parts(9, n % 1000 + 1),
                Rights::from_bits(bits),
            )
        }
    })
}

fn arb_dir() -> impl Strategy<Value = Directory> {
    proptest::collection::btree_map(arb_name(), arb_entry(), 0..12).prop_map(|m| {
        let mut d = Directory::new();
        for (name, e) in m {
            d.relink(&name, e).unwrap();
        }
        d
    })
}

proptest! {
    #[test]
    fn directory_encode_decode_roundtrip(d in arb_dir()) {
        let back = Directory::decode(&d.encode()).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn directory_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Directory::decode(&bytes);
    }

    #[test]
    fn link_then_unlink_is_identity(d in arb_dir(), name in arb_name(), e in arb_entry()) {
        prop_assume!(d.get(&name).is_none());
        let mut d2 = d.clone();
        d2.link(&name, e).unwrap();
        prop_assert_eq!(d2.get(&name), Some(&e));
        d2.unlink(&name).unwrap();
        prop_assert_eq!(d2, d);
    }

    /// Path split is idempotent under join: split(join(split(p))) ==
    /// split(p), and no output segment is ever empty, ".", or "..".
    #[test]
    fn path_split_normalizes(p in "[a-z0-9/._]{0,48}") {
        if let Ok(segs) = path::split(&p) {
            for s in &segs {
                prop_assert!(!s.is_empty() && s != "." && s != "..");
                prop_assert!(!s.contains('/'));
            }
            let rejoined = path::join(&segs);
            prop_assert_eq!(path::split(&rejoined).unwrap(), segs);
        }
    }

    /// Union lookup equals "first non-whiteout entry top-down".
    #[test]
    fn union_lookup_respects_layer_order(
        layers in proptest::collection::vec(arb_dir(), 1..4),
        name in arb_name(),
    ) {
        let u = UnionDir::new(layers.clone());
        let expected = layers.iter().find_map(|l| l.get(&name)).and_then(|e| {
            if e.whiteout { None } else { Some(*e) }
        });
        prop_assert_eq!(u.get(&name).copied(), expected);
    }

    /// Union listing: every visible name resolves, and no hidden name
    /// appears.
    #[test]
    fn union_listing_is_consistent(layers in proptest::collection::vec(arb_dir(), 1..4)) {
        let u = UnionDir::new(layers);
        for name in u.names() {
            prop_assert!(u.get(&name).is_some(), "listed {name} does not resolve");
        }
    }

    /// Unlink through a union hides the name without touching lower
    /// layers, and relinking resurrects it.
    #[test]
    fn union_unlink_then_link(base in arb_dir(), name in arb_name()) {
        let mut u = UnionDir::over(base.clone());
        let was_visible = u.get(&name).is_some();
        if was_visible {
            u.unlink(&name).unwrap();
            prop_assert!(u.get(&name).is_none());
        }
        let e = DirEntry::new(ObjectId::from_parts(8, 1), Rights::READ);
        u.link(&name, e).unwrap();
        prop_assert_eq!(u.get(&name), Some(&e));
        // The base layer never changed.
        prop_assert_eq!(u.into_top().get(&name).is_some(), true);
        prop_assert_eq!(base.get(&name).map(|x| x.whiteout), base.get(&name).map(|x| x.whiteout));
    }
}
