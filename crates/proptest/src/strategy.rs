//! The [`Strategy`] trait and core combinators.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// `sample` returns `None` when the sampled value was rejected (e.g. by
/// `prop_filter`); the runner then retries with a fresh seed.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` if this attempt was rejected.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `pred` is false. `reason` is only
    /// informational (upstream reports it in statistics).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason.into(),
            pred,
        }
    }

    /// Type-erases this strategy behind a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into composite values, nested at most
    /// `depth` levels. `_desired_size` and `_expected_branch_size` are
    /// accepted for upstream signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let level = branch(cur).boxed();
            cur = Union::new(vec![leaf.clone(), level]).boxed();
        }
        cur
    }
}

/// A type-erased, cheaply-cloneable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        // A few local retries keep lightly-selective filters from
        // bubbling rejections up to the runner.
        for _ in 0..16 {
            if let Some(v) = self.inner.sample(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// Uniform choice among several strategies (the `prop_oneof!` macro).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Strategy producing any value of `T` (its full range; floats include
/// non-finite values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // All bit patterns, so NaN and infinities occur (rarely), as
        // upstream's `any::<f64>()` allows.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bias towards ASCII; occasionally emit wider code points.
        if rng.unit_f64() < 0.9 {
            (0x20 + (rng.next_u64() % 0x5F) as u32 as u8) as char
        } else {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % width;
                Some(((self.start as u128).wrapping_add(r)) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as $u).wrapping_sub(self.start as $u);
                let r = rng.next_u64() as $u % width;
                Some((self.start as $u).wrapping_add(r) as $t)
            }
        }
    )*};
}

range_strategy_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
