//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let n = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            rng.usize_in(self.size.start, self.size.end)
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.elem.sample(rng)?);
        }
        Some(out)
    }
}

/// Generates a `Vec` whose elements come from `elem` and whose length is
/// drawn uniformly from `size`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

/// Strategy for `BTreeMap<K, V>` with a target size drawn from `size`.
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<BTreeMap<K::Value, V::Value>> {
        let n = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            rng.usize_in(self.size.start, self.size.end)
        };
        let mut out = BTreeMap::new();
        // Key collisions shrink the map below its target; bounded extra
        // attempts get close without risking non-termination on tiny key
        // spaces.
        let mut attempts = n * 4 + 8;
        while out.len() < n && attempts > 0 {
            attempts -= 1;
            let k = self.keys.sample(rng)?;
            let v = self.values.sample(rng)?;
            out.insert(k, v);
        }
        Some(out)
    }
}

/// Generates a `BTreeMap` from key and value strategies with a size
/// drawn uniformly from `size` (possibly smaller on key collisions).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(any::<u8>(), 3..7);
        for seed in 0..50 {
            let v = strat.sample(&mut TestRng::new(seed)).unwrap();
            assert!((3..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn empty_range_start_is_used() {
        let strat = vec(any::<u8>(), 0..1);
        let v = strat.sample(&mut TestRng::new(1)).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn btree_map_hits_target_size_with_wide_keyspace() {
        let strat = btree_map(any::<u64>(), any::<bool>(), 5..6);
        for seed in 0..20 {
            let m = strat.sample(&mut TestRng::new(seed)).unwrap();
            assert_eq!(m.len(), 5);
        }
    }
}
