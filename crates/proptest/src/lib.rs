//! Vendored, dependency-free subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the slice of the proptest API its test suites use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, [`Just`], [`any`], range and tuple strategies,
//! string strategies from a small regex subset (`"[a-z]{1,8}"`-style
//! patterns), `collection::{vec, btree_map}`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert*!` and `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and case number instead of a minimized input), and generation is
//! seeded deterministically from the test name so failures reproduce
//! across runs.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// The glob-import module: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        $vis fn $name() {
            let strat = ($($strat,)+);
            $crate::test_runner::run(stringify!($name), &strat, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::proptest!($($rest)*);
    };
}

/// Chooses uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case (not a failure) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
