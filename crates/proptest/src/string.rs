//! String strategies from a small regex subset.
//!
//! Upstream proptest treats `&str` as a regex over generated strings.
//! The workspace's tests only use patterns of concatenated atoms —
//! literal characters, `.`, and character classes like `[a-zA-Z0-9_.-]`
//! — each with an optional `{n}` / `{m,n}` / `*` / `+` / `?` repetition,
//! so that is exactly what this parser supports. Unsupported syntax
//! panics at sampling time with the offending pattern.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum CharSet {
    /// `.`: any character except `\n` / `\r`.
    Any,
    /// A literal character.
    Lit(char),
    /// `[...]`: inclusive ranges plus standalone characters.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::Any,
            '\\' => CharSet::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
                        Some(ch) => ch,
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    };
                    // `a-z` is a range unless the '-' is last in the class.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(|&ch| ch != ']') {
                            chars.next();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                            continue;
                        }
                    }
                    ranges.push((lo, lo));
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                CharSet::Class(ranges)
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            other => CharSet::Lit(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut first = String::new();
                let mut second: Option<String> = None;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => second = Some(String::new()),
                        Some(d) if d.is_ascii_digit() => match &mut second {
                            Some(s) => s.push(d),
                            None => first.push(d),
                        },
                        other => panic!("bad repetition {other:?} in pattern {pattern:?}"),
                    }
                }
                let lo: usize = first.parse().expect("repetition lower bound");
                let hi = match second {
                    Some(s) if s.is_empty() => lo + 16,
                    Some(s) => s.parse().expect("repetition upper bound"),
                    None => lo,
                };
                (lo, hi)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// Characters `.` may produce beyond printable ASCII, to exercise
/// multi-byte UTF-8 paths. Excludes `\n`/`\r` like regex `.`.
const WIDE_POOL: &[char] = &['£', 'é', 'ß', '中', '日', '🎉', '\t', '\u{7f}', '"', '\\'];

fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Lit(c) => *c,
        CharSet::Any => {
            if rng.unit_f64() < 0.85 {
                (0x20 + (rng.next_u64() % 0x5F) as u8) as char
            } else {
                WIDE_POOL[rng.usize_in(0, WIDE_POOL.len())]
            }
        }
        CharSet::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| u64::from(hi) - u64::from(lo) + 1)
                .sum();
            let mut pick = rng.next_u64() % total;
            for &(lo, hi) in ranges {
                let span = u64::from(hi) - u64::from(lo) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).expect("class char");
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.usize_in(atom.min, atom.max + 1)
            };
            for _ in 0..count {
                out.push(sample_char(&atom.set, rng));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &'static str, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        pattern.sample(&mut rng).unwrap()
    }

    #[test]
    fn class_with_ranges_and_literals() {
        for seed in 0..50 {
            let s = gen("[a-zA-Z0-9_.-]{1,16}", seed);
            assert!((1..=16).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn leading_literal_then_class() {
        for seed in 0..50 {
            let s = gen("/[a-z0-9/]{1,24}", seed);
            assert!(s.starts_with('/'), "{s:?}");
            assert!((2..=25).contains(&s.chars().count()), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_range_class() {
        for seed in 0..50 {
            let s = gen("[ -~]{0,32}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn dot_excludes_newlines() {
        for seed in 0..200 {
            let s = gen(".{0,24}", seed);
            assert!(!s.contains('\n') && !s.contains('\r'), "{s:?}");
            assert!(s.chars().count() <= 24, "{s:?}");
        }
    }

    #[test]
    fn exact_repetition() {
        let s = gen("[a-f]{8}", 3);
        assert_eq!(s.chars().count(), 8);
    }
}
