//! Case generation and execution for the `proptest!` macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::strategy::Strategy;

/// The RNG handed to strategies while sampling a case.
///
/// Seeded deterministically from the test name and case number, so a
/// failing case reproduces on every run.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for one sampling attempt.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "empty range {low}..{high}");
        low + (self.next_u64() % (high - low) as u64) as usize
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

/// Why a test-case closure did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` did not hold; the case is discarded and resampled.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (discarded case) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `body` against `cases` sampled inputs; panics on the first
/// failing case with its case number (inputs reproduce from the test
/// name, so no explicit seed needs reporting).
pub fn run<S, F>(name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let base = fnv1a(name.as_bytes());
    let mut rejects: u64 = 0;
    let mut case: u32 = 0;
    while case < cases {
        let seed = splitmix64(base ^ u64::from(case) ^ (rejects << 32));
        let mut rng = TestRng::new(seed);
        let value = match strategy.sample(&mut rng) {
            Some(v) => v,
            None => {
                rejects += 1;
                assert!(
                    rejects < 4096,
                    "{name}: too many rejected samples ({rejects}); \
                     strategy filters are too strict"
                );
                continue;
            }
        };
        match body(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < 4096,
                    "{name}: too many rejected cases ({rejects}); \
                     prop_assume! conditions are too strict"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {case}:\n{msg}")
            }
        }
    }
}
