//! Property-based tests for the metrics histogram and renderer.

use proptest::prelude::*;

use pcsi_metrics::{fingerprint, Histogram, Metrics};

proptest! {
    /// Every reported quantile falls inside its bucket's error bound:
    /// the true order statistic at rank ⌈q·n⌉ lies in the half-open
    /// bucket range the reported value names.
    #[test]
    fn quantile_falls_within_its_bucket(
        mut values in proptest::collection::vec(0u64..1u64 << 48, 1..300),
        qs in proptest::collection::vec(0.0f64..1.0001, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in qs {
            let rank = ((q.clamp(0.0, 1.0) * values.len() as f64).ceil() as usize)
                .clamp(1, values.len());
            let truth = values[rank - 1];
            let reported = h.quantile(q);
            let (lo, hi) = Histogram::bucket_bounds(reported);
            prop_assert_eq!(reported, lo, "reported value must be a bucket lower edge");
            prop_assert!(
                lo <= truth && (truth < hi || hi == u64::MAX),
                "q={}: truth {} outside reported bucket [{}, {})", q, truth, lo, hi
            );
        }
    }

    /// min ≤ p50 ≤ p95 ≤ p99 ≤ p999 ≤ max on arbitrary data, and the
    /// sample count is preserved exactly.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.quantiles();
        prop_assert!(s.min <= s.p50);
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999);
        prop_assert!(s.p999 <= s.max);
        prop_assert_eq!(s.count, values.len() as u64);
    }

    /// Rendering is a pure function of recorded state: the same series
    /// and values render byte-identically (and fingerprint-identically)
    /// regardless of registration order.
    #[test]
    fn render_is_order_independent(
        counts in proptest::collection::vec((0usize..6, 0u64..1000), 1..30),
        flip in any::<bool>(),
    ) {
        const NAMES: [&str; 6] = ["a.one", "b.two", "c.three", "d.four", "e.five", "f.six"];
        let build = |reversed: bool| {
            let m = Metrics::new();
            let iter: Vec<(usize, u64)> = if reversed {
                counts.iter().rev().copied().collect()
            } else {
                counts.clone()
            };
            for (i, n) in iter {
                m.counter(NAMES[i], &[("case", "p")]).add(n);
            }
            m.render()
        };
        let a = build(false);
        let b = build(flip);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(a, b);
    }
}
